"""Time units for the simulated and analyzed world.

All timing quantities in the library are **integer nanoseconds**.  Using a
single integer base unit keeps the discrete-event queue exact (no float
rounding, so simulations are bit-for-bit reproducible) and makes analytic
results directly comparable to simulated traces.

Helpers are provided to construct durations at the granularities that occur
in automotive systems (microseconds for bus bit times, milliseconds for task
periods, seconds for test horizons) and to render them for reports.
"""

from __future__ import annotations

NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000


def ns(value: float) -> int:
    """Duration of ``value`` nanoseconds as an integer tick count."""
    return round(value)


def us(value: float) -> int:
    """Duration of ``value`` microseconds in nanoseconds."""
    return round(value * US)


def ms(value: float) -> int:
    """Duration of ``value`` milliseconds in nanoseconds."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Duration of ``value`` seconds in nanoseconds."""
    return round(value * S)


def to_us(ticks: int) -> float:
    """Convert integer nanoseconds to (float) microseconds."""
    return ticks / US


def to_ms(ticks: int) -> float:
    """Convert integer nanoseconds to (float) milliseconds."""
    return ticks / MS


def to_s(ticks: int) -> float:
    """Convert integer nanoseconds to (float) seconds."""
    return ticks / S


def fmt_time(ticks: int) -> str:
    """Human-readable rendering of a duration, picking a sensible unit.

    >>> fmt_time(1_500_000)
    '1.500ms'
    >>> fmt_time(250)
    '250ns'
    """
    if ticks == 0:
        return "0"
    magnitude = abs(ticks)
    if magnitude >= S:
        return f"{ticks / S:.3f}s"
    if magnitude >= MS:
        return f"{ticks / MS:.3f}ms"
    if magnitude >= US:
        return f"{ticks / US:.3f}us"
    return f"{ticks}ns"


def bit_time(bitrate_bps: int) -> int:
    """Nominal duration of one bit on a bus of ``bitrate_bps`` bits/second.

    CAN at 500 kbit/s gives 2000 ns; FlexRay at 10 Mbit/s gives 100 ns.
    """
    if bitrate_bps <= 0:
        raise ValueError(f"bitrate must be positive, got {bitrate_bps}")
    return S // bitrate_bps
