"""Cost-efficient platform sizing from vertical assumptions.

Section 3: "Such vertical assumptions can also be used to guide the
search for cost-efficient hardware structures supporting the joint
resource constraints."  Given the suppliers' CPU claims and a catalogue
of ECU types (capacity x cost), :func:`size_platform` picks a hardware
structure that covers every claim — first-fit-decreasing packing onto
opened ECUs, opening the cheapest sufficient type on demand, then a
downsizing pass that swaps each ECU for the cheapest type still covering
its final load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.contracts.vertical import CPU, VerticalAssumption
from repro.errors import AnalysisError


@dataclass(frozen=True)
class EcuType:
    """A purchasable ECU variant.

    ``cpu_capacity`` is normalized utilization supply (1.0 = the
    reference core; 2.0 = twice as fast).
    """

    name: str
    cpu_capacity: float
    cost: float

    def __post_init__(self):
        if self.cpu_capacity <= 0 or self.cost <= 0:
            raise AnalysisError(
                f"ECU type {self.name}: capacity and cost must be > 0")


@dataclass
class SizedEcu:
    """One chosen ECU and the claims placed on it."""

    ecu_type: EcuType
    owners: list[str] = field(default_factory=list)
    load: float = 0.0

    @property
    def headroom(self) -> float:
        """Capacity remaining on this ECU."""
        return self.ecu_type.cpu_capacity - self.load


@dataclass
class PlatformChoice:
    """A selected hardware structure: ECUs with their claims."""
    ecus: list[SizedEcu] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        """Sum of the chosen ECU types' costs."""
        return sum(e.ecu_type.cost for e in self.ecus)

    def allocation(self) -> dict[str, int]:
        """claim owner -> chosen ECU index."""
        return {owner: index
                for index, ecu in enumerate(self.ecus)
                for owner in ecu.owners}


def size_platform(assumptions: list[VerticalAssumption],
                  catalogue: list[EcuType],
                  utilization_ceiling: float = 1.0) -> PlatformChoice:
    """Choose a cost-efficient set of ECUs covering all CPU claims.

    ``utilization_ceiling`` de-rates every ECU (e.g. 0.69 to stay under
    the Liu & Layland bound for unknown task sets).  Raises when a claim
    exceeds the largest catalogue type.
    """
    if not catalogue:
        raise AnalysisError("empty ECU catalogue")
    claims = [a for a in assumptions if a.kind == CPU]
    if not claims:
        raise AnalysisError("no CPU claims to place")
    if not 0 < utilization_ceiling <= 1.0:
        raise AnalysisError("utilization_ceiling must be in (0, 1]")
    types_by_capacity = sorted(catalogue, key=lambda t: (t.cost,
                                                         -t.cpu_capacity))

    def usable(ecu_type: EcuType) -> float:
        return ecu_type.cpu_capacity * utilization_ceiling

    biggest = max(usable(t) for t in catalogue)
    choice = PlatformChoice()
    for claim in sorted(claims, key=lambda c: (-c.demand, c.owner)):
        if claim.demand > biggest:
            raise AnalysisError(
                f"claim {claim.owner} ({claim.demand}) exceeds the "
                f"largest catalogue type ({biggest})")
        placed = False
        for ecu in choice.ecus:
            if claim.demand <= usable(ecu.ecu_type) - ecu.load:
                ecu.owners.append(claim.owner)
                ecu.load += claim.demand
                placed = True
                break
        if not placed:
            # Open the cheapest type that can hold this claim.
            for ecu_type in types_by_capacity:
                if claim.demand <= usable(ecu_type):
                    choice.ecus.append(SizedEcu(ecu_type, [claim.owner],
                                                claim.demand))
                    placed = True
                    break
        if not placed:  # pragma: no cover - guarded by `biggest` check
            raise AnalysisError(f"claim {claim.owner} not placeable")
    # Downsizing pass: each ECU gets the cheapest type covering its load.
    for ecu in choice.ecus:
        for ecu_type in types_by_capacity:
            if ecu.load <= usable(ecu_type) \
                    and ecu_type.cost < ecu.ecu_type.cost:
                ecu.ecu_type = ecu_type
                break
    return choice
