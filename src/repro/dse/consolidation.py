"""Federated-to-integrated architecture consolidation.

Section 4's claim: integrating distributed application subsystems into a
unified architecture yields "a consequent reduction in the number of
Electronic Control Units, physical wires and physical contact points".

This module quantifies that claim for a given workload:

* the **federated** baseline places every function on its own ECU inside
  its DAS (the historical one-function-one-box pattern), one bus per DAS,
  plus a central gateway joining the domain buses;
* the **integrated** design packs the same tasks onto the minimum number
  of schedulable ECUs (via :mod:`repro.dse.allocation`) sharing one
  time-triggered backbone.

Harness metrics use standard approximations: each ECU contributes a
power/ground pair plus two bus stub wires; each wire terminates in two
contact points; inter-domain traffic in the federated design also crosses
the gateway (counted as additional ECU + stubs per domain).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.dse.allocation import AllocatableTask, Allocation, minimum_ecus

#: wires per ECU: power, ground, bus-high, bus-low.
WIRES_PER_ECU = 4
#: each wire has two terminations.
CONTACTS_PER_WIRE = 2


@dataclass
class ArchitectureMetrics:
    """Comparable cost figures of one architecture variant."""

    name: str
    ecus: int
    buses: int
    wires: int
    contacts: int
    max_utilization: float

    def as_row(self) -> dict:
        """Flat dict row for report tables."""
        return {"architecture": self.name, "ecus": self.ecus,
                "buses": self.buses, "wires": self.wires,
                "contacts": self.contacts,
                "max_cpu_utilization": round(self.max_utilization, 3)}


def federated_metrics(tasks: list[AllocatableTask]) -> ArchitectureMetrics:
    """One ECU per task, one bus per DAS, one central gateway ECU."""
    if not tasks:
        raise AnalysisError("no tasks to place")
    dases = {task.das for task in tasks}
    ecus = len(tasks) + 1  # + gateway
    buses = len(dases)
    wires = ecus * WIRES_PER_ECU + (buses - 1) * 2  # gateway stubs
    return ArchitectureMetrics(
        name="federated",
        ecus=ecus,
        buses=buses,
        wires=wires,
        contacts=wires * CONTACTS_PER_WIRE,
        max_utilization=max(t.spec.utilization for t in tasks),
    )


def integrated_metrics(tasks: list[AllocatableTask],
                       mixed_criticality_ok: bool = True
                       ) -> tuple[ArchitectureMetrics, Allocation]:
    """Minimum schedulable packing on a single shared TT backbone."""
    allocation = minimum_ecus(tasks, mixed_criticality_ok)
    if allocation is None:
        raise AnalysisError("workload cannot be consolidated: some task "
                            "is unschedulable even on a dedicated ECU")
    ecus = allocation.ecu_count
    wires = ecus * WIRES_PER_ECU
    utilizations = [allocation.utilization(i) for i in range(ecus)]
    metrics = ArchitectureMetrics(
        name=("integrated" if mixed_criticality_ok
              else "integrated-segregated"),
        ecus=ecus,
        buses=1,
        wires=wires,
        contacts=wires * CONTACTS_PER_WIRE,
        max_utilization=max(utilizations),
    )
    return metrics, allocation


def consolidation_report(tasks: list[AllocatableTask]) -> list[dict]:
    """The E5 table: federated vs integrated (with and without
    criticality segregation)."""
    rows = [federated_metrics(tasks).as_row()]
    segregated, __ = integrated_metrics(tasks, mixed_criticality_ok=False)
    rows.append(segregated.as_row())
    integrated, __ = integrated_metrics(tasks, mixed_criticality_ok=True)
    rows.append(integrated.as_row())
    return rows
