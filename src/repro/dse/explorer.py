"""Allocation exploration scored by prior-to-implementation analysis.

Section 3: vertical assumptions and system-level analysis should support
"exploring allocation decisions with respect to their impact on
extrafunctional requirements".  :func:`explore_allocations` does exactly
that: it enumerates alternative instance-to-ECU mappings of a system
model, scores each candidate with the timing report (no building, no
simulation), and ranks the feasible ones by their worst end-to-end chain
bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.system_report import timing_report
from repro.errors import AnalysisError

#: safety valve against combinatorial explosion.
MAX_CANDIDATES = 4096


@dataclass
class AllocationCandidate:
    """One explored mapping and its analysis outcome."""

    mapping: dict[str, str]
    schedulable: bool
    worst_chain: Optional[int] = None
    chain_latency: dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (f"<AllocationCandidate worst={self.worst_chain} "
                f"{self.mapping}>")


def explore_allocations(system, movable: list[str],
                        max_candidates: int = MAX_CANDIDATES
                        ) -> list[AllocationCandidate]:
    """Enumerate mappings of ``movable`` instances over the system's
    ECUs; return candidates ranked best (lowest worst-chain bound)
    first, feasible before infeasible.

    The system's own mapping is restored afterwards; fixed instances
    keep their assignment in every candidate.
    """
    for name in movable:
        if name not in system.mapping:
            raise AnalysisError(f"unknown movable instance {name!r}")
    ecus = sorted(system.ecus)
    count = len(ecus) ** len(movable)
    if count > max_candidates:
        raise AnalysisError(
            f"{count} candidates exceed the limit {max_candidates}; "
            f"reduce the movable set or raise the limit")
    original = dict(system.mapping)
    candidates = []
    try:
        for assignment in itertools.product(ecus, repeat=len(movable)):
            for name, ecu in zip(movable, assignment):
                system.mapping[name] = ecu
            report = timing_report(system)
            feasible = report.analysable and report.schedulable
            worst = (max(report.chain_latency.values())
                     if feasible and report.chain_latency else None)
            candidates.append(AllocationCandidate(
                mapping=dict(system.mapping),
                schedulable=feasible,
                worst_chain=worst,
                chain_latency=dict(report.chain_latency)))
    finally:
        system.mapping.clear()
        system.mapping.update(original)
    infinity = float("inf")
    candidates.sort(key=lambda c: (not c.schedulable,
                                   c.worst_chain if c.worst_chain
                                   is not None else infinity))
    return candidates
