"""Priority assignment algorithms.

* Deadline-monotonic assignment — optimal for constrained-deadline
  synchronous task sets under fixed priorities;
* Audsley's optimal priority assignment (OPA) — finds a feasible
  assignment whenever one exists, using the response-time test as the
  schedulability oracle;
* CAN identifier assignment — deadline-monotonic order mapped onto
  11-bit identifiers.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AnalysisError
from repro.analysis.rta import response_time
from repro.analysis.sensitivity import replace_spec
from repro.osek.task import TaskSpec
from repro.network.can import CanFrameSpec


def deadline_monotonic(tasks: list[TaskSpec]) -> list[TaskSpec]:
    """Return copies with priorities assigned by deadline (shortest
    deadline = highest priority; ties broken by name for determinism)."""
    for task in tasks:
        if task.deadline is None:
            raise AnalysisError(
                f"task {task.name}: deadline-monotonic assignment needs "
                f"deadlines")
    ordered = sorted(tasks, key=lambda t: (t.deadline, t.name))
    level = len(ordered)
    out = []
    for task in ordered:
        out.append(replace_spec(task, priority=level))
        level -= 1
    return out


def audsley(tasks: list[TaskSpec]) -> Optional[list[TaskSpec]]:
    """Audsley's OPA: assign priorities lowest-first.

    At each level, find some unassigned task that is schedulable at that
    level assuming all other unassigned tasks have higher priority.
    Returns priority-assigned copies, or None if no feasible assignment
    exists.
    """
    remaining = list(tasks)
    assigned: list[TaskSpec] = []
    level = 1
    while remaining:
        placed = None
        for candidate in sorted(remaining, key=lambda t: -t.deadline
                                if t.deadline is not None else 0):
            trial = replace_spec(candidate, priority=level)
            others = [replace_spec(t, priority=level + 1)
                      for t in remaining if t.name != candidate.name]
            try:
                wcrt = response_time(trial, others + [trial])
            except AnalysisError:
                continue
            if trial.deadline is None or wcrt <= trial.deadline:
                placed = candidate
                assigned.append(trial)
                break
        if placed is None:
            return None
        remaining = [t for t in remaining if t.name != placed.name]
        level += 1
    return assigned


def assign_can_ids(frames: list[CanFrameSpec],
                   base_id: int = 0x100) -> list[CanFrameSpec]:
    """Deadline-monotonic CAN identifier assignment.

    Shorter deadline -> lower identifier -> higher arbitration priority.
    Returns new frame specs; relative order of equal deadlines follows
    the frame name for determinism.
    """
    for frame in frames:
        if frame.deadline is None:
            raise AnalysisError(
                f"frame {frame.name}: needs a deadline (or period)")
    ordered = sorted(frames, key=lambda f: (f.deadline, f.name))
    out = []
    for index, frame in enumerate(ordered):
        out.append(CanFrameSpec(frame.name, base_id + index,
                                dlc=frame.dlc, period=frame.period,
                                deadline=frame.deadline,
                                extended=frame.extended,
                                jitter=frame.jitter))
    return out
