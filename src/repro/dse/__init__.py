"""Design-space exploration: priorities, allocation, consolidation."""

from repro.dse.allocation import (AllocatableTask, Allocation, allocate,
                                  minimum_ecus)
from repro.dse.consolidation import (ArchitectureMetrics,
                                     consolidation_report,
                                     federated_metrics, integrated_metrics)
from repro.dse.explorer import (AllocationCandidate, explore_allocations)
from repro.dse.platform import (EcuType, PlatformChoice, SizedEcu,
                                size_platform)
from repro.dse.priority import assign_can_ids, audsley, deadline_monotonic

__all__ = [
    "AllocatableTask", "Allocation", "allocate", "minimum_ecus",
    "ArchitectureMetrics", "consolidation_report", "federated_metrics",
    "integrated_metrics",
    "AllocationCandidate", "explore_allocations",
    "EcuType", "PlatformChoice", "SizedEcu", "size_platform",
    "assign_can_ids", "audsley", "deadline_monotonic",
]
