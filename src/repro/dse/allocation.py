"""Task-to-ECU allocation.

The integrated-architecture move (Section 4) packs applications from many
DASes onto few ECUs, subject to (a) schedulability on every ECU and
(b) an isolation rule for mixed criticality: either every co-located
mixed-criticality pairing is protected by partitioning/timing protection,
or DASes of different criticality must not share an ECU at all.

First-fit decreasing by utilization with an exact response-time check per
bin is the standard, strong heuristic for this packing problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AnalysisError
from repro.analysis.rta import analyze
from repro.dse.priority import deadline_monotonic
from repro.osek.task import TaskSpec


@dataclass(frozen=True)
class AllocatableTask:
    """A task plus its subsystem (DAS) membership."""

    spec: TaskSpec
    das: str

    @property
    def criticality(self) -> str:
        """The task's ASIL level (from its spec)."""
        return self.spec.criticality


@dataclass
class Allocation:
    """Result: bins of tasks, one per ECU."""

    bins: list[list[AllocatableTask]] = field(default_factory=list)

    @property
    def ecu_count(self) -> int:
        """Number of ECUs (bins) used."""
        return len(self.bins)

    def mapping(self) -> dict[str, int]:
        """task name -> ECU index."""
        return {task.spec.name: index
                for index, bin_tasks in enumerate(self.bins)
                for task in bin_tasks}

    def utilization(self, index: int) -> float:
        """CPU utilization of one bin."""
        return sum(t.spec.utilization for t in self.bins[index])


def _bin_schedulable(bin_tasks: list[AllocatableTask]) -> bool:
    specs = deadline_monotonic([t.spec for t in bin_tasks])
    return analyze(specs).schedulable


def _criticality_ok(bin_tasks: list[AllocatableTask],
                    candidate: AllocatableTask,
                    mixed_criticality_ok: bool) -> bool:
    if mixed_criticality_ok:
        return True
    return all(t.criticality == candidate.criticality for t in bin_tasks)


def allocate(tasks: list[AllocatableTask], max_ecus: int,
             mixed_criticality_ok: bool = True) -> Optional[Allocation]:
    """First-fit decreasing allocation onto at most ``max_ecus`` ECUs.

    ``mixed_criticality_ok=False`` forbids co-locating different
    criticality levels (the conservative rule when the platform offers no
    timing isolation); with isolation mechanisms available it may be
    True — that difference is exactly what E5 quantifies.

    Returns None when the tasks do not fit.
    """
    if max_ecus <= 0:
        raise AnalysisError("max_ecus must be > 0")
    ordered = sorted(tasks, key=lambda t: (-t.spec.utilization,
                                           t.spec.name))
    allocation = Allocation()
    for task in ordered:
        placed = False
        for bin_tasks in allocation.bins:
            if not _criticality_ok(bin_tasks, task, mixed_criticality_ok):
                continue
            trial = bin_tasks + [task]
            if _bin_schedulable(trial):
                bin_tasks.append(task)
                placed = True
                break
        if not placed:
            if len(allocation.bins) >= max_ecus:
                return None
            if not _bin_schedulable([task]):
                return None  # task infeasible even alone
            allocation.bins.append([task])
    return allocation


def minimum_ecus(tasks: list[AllocatableTask],
                 mixed_criticality_ok: bool = True,
                 ceiling: int = 64) -> Optional[Allocation]:
    """Smallest ECU count for which allocation succeeds (first-fit
    decreasing is monotone in the bin budget, so the first success
    is minimal for this heuristic)."""
    for count in range(1, ceiling + 1):
        allocation = allocate(tasks, count, mixed_criticality_ok)
        if allocation is not None:
            return allocation
    return None
