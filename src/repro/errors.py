"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` from misuse still propagate where appropriate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A model or platform was configured inconsistently.

    Raised by "prior to implementation system configuration checks"
    (paper Section 2): duplicate identifiers, unmapped components, slot
    overlaps, frames exceeding payload capacity, and similar static problems.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class SchedulingError(ReproError):
    """A scheduler could not honour its invariants (e.g. budget overrun
    in an enforced-isolation policy, or an unschedulable TT table)."""


class AnalysisError(ReproError):
    """A timing-analysis routine cannot produce a bound.

    The most common case is non-convergence: utilization above 1, or a
    response-time recurrence that exceeds its deadline/period ceiling.
    """


class ContractError(ReproError):
    """Contract algebra failure: incompatible interfaces, failed dominance,
    or an unsatisfied vertical assumption."""


class CompositionError(ReproError):
    """Components cannot be composed: port type mismatch, dangling
    connector, or duplicate port names."""


class FaultContainmentViolation(ReproError):
    """A fault escaped its containment region.

    Raised by containment monitors when a fault injected into one
    fault-containment unit observably perturbs another (paper Section 4,
    requirement 4: "error containment").
    """


class ProtocolError(ReproError):
    """A communication controller violated its protocol rules
    (e.g. transmission outside the node's TDMA slot without a fault model)."""


class MeasurementError(ReproError):
    """The measurement & calibration service refused an operation:
    not connected, read-only entry, unknown registry name, or a write
    against a registry with no configuration set attached.

    Configuration-class refusals (pre-compile/link-time writes in the
    linked stage) and validator rejections raise
    :class:`ConfigurationError` from the underlying
    :class:`~repro.core.config.ConfigurationSet` instead — the freeze
    semantics live there, not in the service."""


class ExecutionError(ReproError):
    """The parallel execution engine could not complete a work plan.

    Raised when chunks exhaust their retry budget, when a checkpoint
    journal does not match the plan being resumed, or when a resume is
    requested without a journal to resume from.
    """


class ExecutionInterrupted(ReproError):
    """A run was cut short before every chunk completed.

    Raised by the ``interrupt_after`` hook of
    :func:`repro.exec.pool.execute` — the programmatic stand-in for a
    killed process.  Chunks journaled before the interruption survive
    and are skipped by a ``resume`` run.
    """
