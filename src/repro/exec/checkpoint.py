"""Checkpoint journal: append-only JSONL record of a plan execution.

One journal file per run.  The first line identifies the plan (its
fingerprint, chunk and item counts); every subsequent line is one
event:

* ``start`` — a chunk was handed to a worker;
* ``done``  — a chunk completed; carries the pickled result payload
  (base85-encoded so the journal stays line-oriented UTF-8 JSON) plus
  the worker pid and wall time;
* ``failed`` — a chunk exhausted its retry budget.

Records are flushed line-by-line, so a killed run loses at most the
chunks that were in flight.  On ``resume`` the journal is replayed:
``done`` chunks are recovered from their payloads and skipped,
``start``-without-``done`` chunks (in flight when the run died) and
``failed`` chunks are re-run.  A journal whose plan fingerprint does
not match the plan being resumed is refused — silently mixing results
of two different sweeps is exactly the corruption this check exists to
prevent.

A run killed mid-``write`` (power loss, ``kill -9``, a full disk) can
leave the journal's **last** line truncated or garbled.  That is
expected damage for an append-only log, so replay tolerates it:
the trailing line is discarded with a :class:`JournalCorruptionWarning`
and its chunk simply re-runs — losing one chunk of progress, never
correctness.  Corruption anywhere *before* the trailing line cannot be
explained by an interrupted append and still fails the resume with
:class:`~repro.errors.ExecutionError`, as does a damaged header.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ExecutionError
from repro.exec.plan import _PICKLE_PROTOCOL, Plan


class JournalCorruptionWarning(UserWarning):
    """A corrupt trailing journal line was discarded during replay."""


def _encode_payload(results: list) -> str:
    return base64.b85encode(
        pickle.dumps(results, protocol=_PICKLE_PROTOCOL)).decode("ascii")


def _decode_payload(payload: str) -> list:
    return pickle.loads(base64.b85decode(payload.encode("ascii")))


@dataclass
class JournalState:
    """Replay of a journal: what is already done, what must re-run."""

    completed: dict = field(default_factory=dict)  # chunk index -> results
    #: chunk index -> telemetry snapshot (only for journals written
    #: with telemetry collection enabled).
    telemetry: dict = field(default_factory=dict)
    in_flight: set = field(default_factory=set)
    failed: set = field(default_factory=set)

    @property
    def pending(self) -> set:
        """Chunks that must re-run: started-but-unfinished or failed."""
        return (self.in_flight | self.failed) - set(self.completed)


class Journal:
    """Append-only JSONL checkpoint for one plan execution."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._handle = None

    # -- writing -------------------------------------------------------
    def begin(self, plan: Plan) -> None:
        """Start a fresh journal (truncates any previous one)."""
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write({"type": "plan", "label": plan.label,
                     "fingerprint": plan.fingerprint(),
                     "chunks": len(plan.chunks()),
                     "items": plan.n_items})

    def reopen(self) -> None:
        """Continue appending to an existing journal (resume path)."""
        self._handle = open(self.path, "a", encoding="utf-8")

    def record_start(self, chunk_index: int) -> None:
        self._write({"type": "start", "chunk": chunk_index})

    def record_done(self, chunk_index: int, results: list,
                    elapsed: float, worker: int,
                    telemetry: Optional[dict] = None) -> None:
        record = {"type": "done", "chunk": chunk_index,
                  "payload": _encode_payload(results),
                  "elapsed": round(elapsed, 6), "worker": worker}
        if telemetry is not None:
            # Journaled alongside the results so a resumed run can
            # re-merge the skipped chunks' telemetry in plan order and
            # keep the telemetry digest identical to an uninterrupted
            # run (same guarantee as the result digest).
            record["telemetry"] = telemetry
        self._write(record)

    def record_failed(self, chunk_index: int, error: str,
                      attempts: int) -> None:
        self._write({"type": "failed", "chunk": chunk_index,
                     "error": error, "attempts": attempts})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write(self, record: dict) -> None:
        if self._handle is None:
            raise ExecutionError(
                f"journal {self.path}: write before begin()/reopen()")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    # -- replay --------------------------------------------------------
    def load(self, plan: Optional[Plan] = None) -> JournalState:
        """Replay the journal; validate it against ``plan`` if given."""
        if not os.path.exists(self.path):
            raise ExecutionError(
                f"cannot resume: no checkpoint journal at {self.path}")
        state = JournalState()
        with open(self.path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise ExecutionError(
                f"cannot resume: journal {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except ValueError as error:
            raise ExecutionError(
                f"journal {self.path}: corrupt plan header "
                f"({error}); refusing to resume")
        if header.get("type") != "plan":
            raise ExecutionError(
                f"journal {self.path}: missing plan header")
        if plan is not None \
                and header.get("fingerprint") != plan.fingerprint():
            raise ExecutionError(
                f"journal {self.path} was written for a different plan "
                f"(journal {header.get('label')!r} "
                f"fingerprint {header.get('fingerprint')!r}); refusing "
                f"to mix results")
        last = len(lines) - 1
        for position, line in enumerate(lines[1:], start=1):
            try:
                record = json.loads(line)
                kind = record.get("type")
                index = record.get("chunk")
                if kind == "start":
                    state.in_flight.add(index)
                elif kind == "done":
                    # Decode BEFORE mutating state: a garbled payload
                    # must not leave a half-registered chunk behind.
                    payload = _decode_payload(record["payload"])
                    state.completed[index] = payload
                    if "telemetry" in record:
                        state.telemetry[index] = record["telemetry"]
                    state.in_flight.discard(index)
                    state.failed.discard(index)
                elif kind == "failed":
                    state.failed.add(index)
                    state.in_flight.discard(index)
            except (ValueError, KeyError, TypeError, EOFError,
                    pickle.UnpicklingError) as error:
                if position == last:
                    # An interrupted append can only damage the tail.
                    # Discard it; the chunk's `start` record (if any)
                    # keeps it in_flight, so it simply re-runs.
                    warnings.warn(
                        f"journal {self.path}: discarding corrupt "
                        f"trailing line ({type(error).__name__}: "
                        f"{error}); the affected chunk will re-run",
                        JournalCorruptionWarning, stacklevel=2)
                    break
                raise ExecutionError(
                    f"journal {self.path}: corrupt record at line "
                    f"{position + 1} of {last + 1} — damage before the "
                    f"trailing line cannot come from an interrupted "
                    f"append; refusing to resume "
                    f"({type(error).__name__}: {error})")
        return state
