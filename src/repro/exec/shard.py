"""Deterministic sharding and per-item seed derivation.

The execution engine's determinism guarantee rests on two properties
established here:

* **Index-addressed seeds** — every work item's RNG seed is a pure
  function of ``(base_seed, item_index)``, hashed through SHA-256
  (spawn-style derivation, like :meth:`numpy.random.SeedSequence.spawn`),
  never drawn from a shared sequential stream.  Item 17 gets the same
  seed whether it runs first, last, serially or on worker 3 of 8 —
  and whether items 0..16 ran at all.
* **Stable chunking** — items are split into contiguous chunks whose
  indices and contents depend only on ``(items, chunk_size)``, not on
  the worker count, so a journal written by a ``--jobs 1`` run can be
  resumed by a ``--jobs 8`` run and vice versa.

``hash()`` is deliberately avoided: since PEP 456 it is salted per
process, which is exactly the order/process dependence this module
exists to eliminate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

#: Domain separator so exec-derived seeds can never collide with a
#: caller's own use of small integer seeds.
_SEED_DOMAIN = "repro.exec.seed"


def derive_seed(base_seed: int, index: int) -> int:
    """Spawn-style per-item seed: SHA-256 over ``(base_seed, index)``.

    Returns a 63-bit non-negative integer, deterministic across
    processes and Python versions, with no sequential relationship
    between neighbouring indices.
    """
    message = f"{_SEED_DOMAIN}:{base_seed}:{index}".encode()
    digest = hashlib.sha256(message).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Chunk:
    """A contiguous slice of a work plan.

    ``start`` is the global index of the first item, so
    ``start + local_offset`` addresses any member item globally —
    that is the index its seed was derived from.
    """

    index: int
    start: int
    items: tuple
    seeds: tuple

    @property
    def size(self) -> int:
        return len(self.items)


def shard(items: Sequence, chunk_size: int, base_seed: int = 0) -> list[Chunk]:
    """Split ``items`` into stable contiguous chunks with derived seeds.

    The split depends only on ``(len(items), chunk_size)`` — never on
    how many workers will consume the chunks.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = []
    for index, start in enumerate(range(0, len(items), chunk_size)):
        members = tuple(items[start:start + chunk_size])
        seeds = tuple(derive_seed(base_seed, start + offset)
                      for offset in range(len(members)))
        chunks.append(Chunk(index, start, members, seeds))
    return chunks
