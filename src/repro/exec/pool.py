"""Deterministic fan-out of a work plan over a process pool.

:func:`execute` runs a :class:`~repro.exec.plan.Plan` either in-process
(``jobs=1``) or across a ``concurrent.futures`` process pool, and
merges chunk results **by chunk index**, never by completion order —
so together with the index-derived seeds of :mod:`repro.exec.shard`,
``jobs=1`` and ``jobs=N`` produce byte-identical merged results.

Failure handling:

* a worker that *raises* has the chunk retried up to ``retries`` extra
  attempts before the chunk is marked failed;
* a worker that *dies* (segfault, ``os._exit``, OOM-kill) breaks the
  shared pool; every chunk left unresolved by the broken round is then
  re-run in its own single-worker pool, which attributes the crash to
  the guilty chunk precisely (an innocent chunk simply completes in
  isolation) while the same retry budget applies;
* a worker that *hangs* is caught by the per-chunk watchdog
  (``timeout=SECONDS``): the round is declared hung once its allowance
  (timeout x dispatch waves) elapses, the pool's processes are killed,
  and every unresolved chunk re-runs in isolation where the watchdog
  is enforced per chunk precisely — a hung attempt counts against the
  same retry budget as a raise or a crash;
* each granted retry waits out a short **fixed** backoff
  (:data:`_BACKOFF_SCHEDULE`) first — fixed, not randomised, so a
  retried run stays as deterministic as an untroubled one.

None of this affects merged results: chunk results are a pure function
of ``(item, seed)``, so any mix of retries, crashes, and watchdog
kills that ends in success produces the byte-identical report digest
at any ``--jobs`` level, interrupted or resumed.  With ``jobs=1`` the
worker runs on the caller's thread and cannot be preempted — the
watchdog applies to pool execution only.

Every chunk transition is journaled through
:mod:`repro.exec.checkpoint` when a checkpoint path is given, and
``resume=True`` replays the journal to skip completed chunks and re-run
in-flight or failed ones.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, \
    as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.errors import ExecutionError, ExecutionInterrupted
from repro.exec.checkpoint import Journal
from repro.exec.plan import Plan
from repro.exec.progress import ProgressMeter
from repro.exec.shard import Chunk

#: Fixed pre-retry backoff in seconds, indexed by failed attempts so
#: far (the last entry repeats).  Fixed rather than exponential-with-
#: jitter on purpose: wall time never feeds the result digest, and a
#: deterministic schedule keeps retried runs reproducible.
_BACKOFF_SCHEDULE = (0.0, 0.05, 0.2)

#: Seam for tests (monkeypatch to observe or skip backoff sleeps).
_sleep = time.sleep


def _backoff(failed_attempts: int) -> None:
    index = min(failed_attempts - 1, len(_BACKOFF_SCHEDULE) - 1)
    delay = _BACKOFF_SCHEDULE[index]
    if delay > 0:
        _sleep(delay)


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill a pool whose workers may be hung (shutdown alone would
    block behind the hung task forever)."""
    for process in list(getattr(pool, "_processes", {}).values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _run_chunk(worker, chunk: Chunk, collect: bool = False,
               setup=None) -> tuple[list, Optional[dict], int, float]:
    """Worker-side chunk body: run every item with its derived seed.

    With ``collect=True`` the chunk runs inside a fresh telemetry
    capture scope (identical whether this executes in-process or in a
    worker), and the captured snapshot travels back with the results so
    the parent can merge all chunks in plan order.

    ``setup`` (the plan's setup hook) runs first, before the capture
    scope opens — it configures process-local environment and must not
    contribute telemetry to the chunk.
    """
    import os
    if setup is not None:
        setup()
    started = time.perf_counter()
    if collect:
        with obs.capture() as telemetry:
            with obs.span("exec.chunk", category="exec",
                          index=chunk.index, items=chunk.size):
                results = [worker(item, seed)
                           for item, seed in zip(chunk.items, chunk.seeds)]
        snapshot = telemetry.snapshot()
    else:
        results = [worker(item, seed)
                   for item, seed in zip(chunk.items, chunk.seeds)]
        snapshot = None
    return results, snapshot, os.getpid(), time.perf_counter() - started


@dataclass
class ExecutionResult:
    """Outcome of one :func:`execute` call."""

    label: str
    results: list = field(default_factory=list)
    #: chunk index -> last error string, for chunks past their budget.
    failures: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    chunks_resumed: int = 0
    chunks_executed: int = 0
    #: items recovered from the journal vs freshly run (resumed cells
    #: are *not* throughput — the progress meter reports them apart).
    items_resumed: int = 0
    items_executed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> None:
        if self.failures:
            detail = "; ".join(f"chunk {index}: {error}"
                               for index, error in sorted(self.failures.items()))
            raise ExecutionError(
                f"plan {self.label!r}: {len(self.failures)} chunk(s) "
                f"failed after retries — {detail}")


class _NullJournal:
    """Journal stand-in when no checkpoint path was given."""

    def begin(self, plan):
        pass

    def reopen(self):
        pass

    def record_start(self, index):
        pass

    def record_done(self, index, results, elapsed, worker,
                    telemetry=None):
        pass

    def record_failed(self, index, error, attempts):
        pass

    def close(self):
        pass


def execute(plan: Plan, jobs: int = 1, retries: int = 1,
            checkpoint=None, resume: bool = False,
            progress: Optional[ProgressMeter] = None,
            interrupt_after: Optional[int] = None,
            timeout: Optional[float] = None) -> ExecutionResult:
    """Run ``plan`` and return its merged, plan-ordered results.

    ``jobs=1`` runs in-process; ``jobs>1`` fans chunks out over a
    process pool.  Either way the merged results are identical.

    ``checkpoint`` names a JSONL journal; with ``resume=True`` chunks
    already journaled as done are recovered instead of re-run (the
    journal must match the plan's fingerprint).  ``interrupt_after=N``
    aborts the run with :class:`ExecutionInterrupted` after ``N`` chunk
    completions — the programmatic equivalent of killing the process,
    used to exercise the resume path.

    ``retries`` bounds *extra* attempts per chunk (``retries=1`` means
    at most two attempts) for raised exceptions, worker deaths, and
    watchdog timeouts alike; each granted retry first waits out the
    fixed :data:`_BACKOFF_SCHEDULE` backoff.

    ``timeout`` arms a per-chunk watchdog (seconds of wall clock a
    single chunk attempt may take).  A hung worker is killed and the
    chunk re-runs deterministically in isolation.  Ignored when
    ``jobs=1`` — an in-process worker cannot be preempted.
    """
    if jobs < 1:
        raise ExecutionError(f"jobs must be >= 1, got {jobs}")
    if resume and checkpoint is None:
        raise ExecutionError("resume=True requires a checkpoint path")
    if timeout is not None and timeout <= 0:
        raise ExecutionError(f"timeout must be > 0, got {timeout}")

    chunks = plan.chunks()
    journal = Journal(checkpoint) if checkpoint is not None \
        else _NullJournal()
    #: collect telemetry per chunk when the caller has obs enabled —
    #: decided here once so workers behave identically under any pool
    #: start method (the flag travels with the submit call).
    collect = obs.enabled()

    completed: dict[int, list] = {}
    telemetry_by_chunk: dict[int, dict] = {}
    chunks_resumed = 0
    if resume:
        state = journal.load(plan)
        completed = dict(state.completed)
        if collect:
            telemetry_by_chunk.update(state.telemetry)
        chunks_resumed = len(completed)
        journal.reopen()
    else:
        journal.begin(plan)

    meter = progress if progress is not None \
        else ProgressMeter(len(chunks), plan.n_items)
    for index in sorted(completed):
        meter.chunk_resumed(len(completed[index]))

    pending = [chunk for chunk in chunks if chunk.index not in completed]
    failures: dict[int, str] = {}
    attempts: dict[int, int] = {}
    done_this_run = 0

    def note_done(chunk: Chunk, results: list, telemetry: Optional[dict],
                  worker: int, elapsed: float) -> bool:
        """Record a completion; True when the interrupt budget is hit."""
        nonlocal done_this_run
        completed[chunk.index] = results
        if telemetry is not None:
            telemetry_by_chunk[chunk.index] = telemetry
        journal.record_done(chunk.index, results, elapsed, worker,
                            telemetry)
        meter.chunk_done(chunk.size, elapsed, worker)
        done_this_run += 1
        return interrupt_after is not None \
            and done_this_run >= interrupt_after

    def note_failure(chunk: Chunk, error: Exception) -> bool:
        """Count a failed attempt; True when the chunk may retry
        (after the fixed backoff for this attempt count)."""
        attempts[chunk.index] = attempts.get(chunk.index, 0) + 1
        if attempts[chunk.index] <= retries:
            _backoff(attempts[chunk.index])
            return True
        message = f"{type(error).__name__}: {error}"
        failures[chunk.index] = message
        journal.record_failed(chunk.index, message,
                              attempts[chunk.index])
        meter.chunk_failed()
        return False

    try:
        if jobs == 1:
            _serial(plan, pending, collect, journal, note_done,
                    note_failure)
        else:
            _parallel(plan, pending, jobs, collect, journal, note_done,
                      note_failure, timeout)
    finally:
        journal.close()

    merged = [result for index in sorted(completed)
              for result in completed[index]]
    # Telemetry merges exactly like results: by chunk index, never by
    # completion order — jobs=1 and jobs=N yield identical digests.
    for index in sorted(telemetry_by_chunk):
        obs.merge_snapshot(telemetry_by_chunk[index])
    return ExecutionResult(plan.label, merged, failures, meter.snapshot(),
                           chunks_resumed, len(completed) - chunks_resumed,
                           meter.items_resumed, meter.items_done)


def _serial(plan: Plan, pending: list, collect: bool, journal, note_done,
            note_failure) -> None:
    """In-process execution: same journal/merge path as the pool."""
    queue = sorted(pending, key=lambda c: c.index)
    while queue:
        chunk = queue.pop(0)
        journal.record_start(chunk.index)
        try:
            results, telemetry, worker, elapsed = _run_chunk(
                plan.worker, chunk, collect, plan.setup)
        except Exception as error:
            if note_failure(chunk, error):
                queue.insert(0, chunk)
            continue
        if note_done(chunk, results, telemetry, worker, elapsed):
            raise ExecutionInterrupted(
                f"plan {plan.label!r}: interrupted with "
                f"{len(queue)} chunk(s) outstanding")


def _parallel(plan: Plan, pending: list, jobs: int, collect: bool,
              journal, note_done, note_failure,
              timeout: Optional[float] = None) -> None:
    """Round-based pool execution with crash and hang isolation."""
    queue = sorted(pending, key=lambda c: c.index)
    while queue:
        batch, queue = queue, []
        workers = min(jobs, len(batch))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures = {}
        for chunk in batch:
            journal.record_start(chunk.index)
            futures[pool.submit(_run_chunk, plan.worker, chunk,
                                collect, plan.setup)] = chunk
        # The shared pool dispatches the batch in waves of `workers`
        # chunks; its watchdog allowance covers every wave.  Which
        # chunk is actually hung is only attributable from the
        # isolation path, where the per-chunk timeout is exact.
        allowance = None if timeout is None \
            else timeout * math.ceil(len(batch) / workers)
        unresolved = {chunk.index: chunk for chunk in batch}
        interrupted = broken = hung = False
        try:
            for future in as_completed(futures, timeout=allowance):
                chunk = futures[future]
                try:
                    results, telemetry, worker, elapsed = future.result()
                except BrokenExecutor:
                    # A worker died; attribution is impossible from the
                    # shared pool — resolve the leftovers in isolation.
                    broken = True
                    continue
                except Exception as error:
                    unresolved.pop(chunk.index, None)
                    if note_failure(chunk, error):
                        queue.append(chunk)
                    continue
                unresolved.pop(chunk.index, None)
                if note_done(chunk, results, telemetry, worker, elapsed):
                    interrupted = True
                    break
        except FuturesTimeout:
            # Watchdog: at least one worker is hung.  Kill the pool;
            # every unresolved chunk re-runs in isolation where the
            # per-chunk timeout attributes the hang precisely.
            hung = True
        finally:
            if hung or broken:
                _terminate_workers(pool)
            else:
                pool.shutdown(wait=not interrupted, cancel_futures=True)
        if interrupted:
            raise ExecutionInterrupted(
                f"plan {plan.label!r}: interrupted with "
                f"{len(queue) + len(unresolved)} chunk(s) outstanding")
        if broken or hung:
            for index in sorted(unresolved):
                if _run_isolated(plan, unresolved[index], collect, journal,
                                 note_done, note_failure, timeout):
                    raise ExecutionInterrupted(
                        f"plan {plan.label!r}: interrupted during "
                        f"crash isolation")
        queue.sort(key=lambda c: c.index)


def _run_isolated(plan: Plan, chunk: Chunk, collect: bool, journal,
                  note_done, note_failure,
                  timeout: Optional[float] = None) -> bool:
    """Run one chunk alone in a single-worker pool until it succeeds or
    exhausts its retry budget; returns True on interrupt-budget hit.
    ``timeout`` is enforced exactly here: the chunk is the pool's only
    occupant, so a watchdog expiry is attributable to it alone."""
    while True:
        journal.record_start(chunk.index)
        pool = ProcessPoolExecutor(max_workers=1)
        killed = False
        try:
            future = pool.submit(_run_chunk, plan.worker, chunk, collect,
                                 plan.setup)
            results, telemetry, worker, elapsed = future.result(
                timeout=timeout)
        except FuturesTimeout:
            killed = True
            _terminate_workers(pool)
            hang = TimeoutError(
                f"chunk {chunk.index} exceeded the {timeout}s watchdog")
            if note_failure(chunk, hang):
                continue
            return False
        except Exception as error:
            if note_failure(chunk, error):
                continue
            return False
        finally:
            if not killed:
                pool.shutdown(wait=False, cancel_futures=True)
        return note_done(chunk, results, telemetry, worker, elapsed)
