"""Deterministic parallel execution engine for sweeps and campaigns.

``repro.exec`` turns any seeded, embarrassingly parallel workload —
fault-campaign cells, differential-verification fleets, DSE sweeps —
into deterministically sharded chunks fanned out over a process pool,
with the guarantee that ``jobs=1`` and ``jobs=N`` produce
**byte-identical merged results** (same report digests):

* :mod:`repro.exec.shard` — spawn-style ``(base_seed, index)`` seed
  derivation and worker-count-independent chunking;
* :mod:`repro.exec.plan` — the picklable work-plan description and its
  checkpoint fingerprint;
* :mod:`repro.exec.pool` — in-process or process-pool execution with
  order-independent merging, crash isolation and bounded retry;
* :mod:`repro.exec.checkpoint` — the append-only JSONL journal behind
  ``--resume``;
* :mod:`repro.exec.progress` — chunks/sec, ETA and per-worker wall-time
  metrics, observational only.
"""

from repro.exec.checkpoint import Journal, JournalState
from repro.exec.plan import Plan
from repro.exec.pool import ExecutionResult, execute
from repro.exec.progress import ProgressMeter
from repro.exec.shard import Chunk, derive_seed, shard

__all__ = [
    "Chunk", "derive_seed", "shard",
    "Plan",
    "ExecutionResult", "execute",
    "Journal", "JournalState",
    "ProgressMeter",
]
