"""Progress and metrics channel for plan executions.

The pool reports every chunk event to a :class:`ProgressMeter`; the
meter aggregates them into the operational numbers a long campaign is
steered by — chunks done / total, items (cells, systems) per second,
an ETA extrapolated from the realised rate, and the wall time each
worker process has spent on completed chunks (the load-balance view).

The meter is observational only: it never influences scheduling, so
attaching one (or printing live lines through ``emit``) cannot change
a run's results.  Live output goes through the ``emit`` callback —
callers wire it to ``stderr`` so report output on ``stdout`` stays
byte-identical with and without progress display.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class ProgressMeter:
    """Aggregates chunk completions into rate / ETA / per-worker stats."""

    def __init__(self, total_chunks: int, total_items: int,
                 clock: Callable[[], float] = time.monotonic,
                 emit: Optional[Callable[[str], None]] = None):
        self.total_chunks = total_chunks
        self.total_items = total_items
        self._clock = clock
        self._emit = emit
        self._started_at = clock()
        self.chunks_done = 0
        self.chunks_failed = 0
        self.chunks_resumed = 0
        self.items_done = 0
        self.items_resumed = 0
        #: worker pid -> accumulated wall time over its completed chunks.
        self.worker_wall: dict[int, float] = {}
        self.worker_chunks: dict[int, int] = {}

    # -- events reported by the pool -----------------------------------
    def chunk_resumed(self, items: int) -> None:
        """A chunk recovered from the journal (resume) — not re-run.

        Resumed cells are recovered work, not throughput: they are kept
        out of :attr:`items_per_second` and :attr:`eta_seconds` (which
        describe *this* run) and reported as their own numbers, so a
        resumed campaign shows an honest rate instead of one inflated by
        journal replay.
        """
        self.chunks_resumed += 1
        self.items_resumed += items

    # Backwards-compatible alias for the pre-rename event name.
    chunk_skipped = chunk_resumed

    def chunk_done(self, items: int, elapsed: float, worker: int) -> None:
        self.chunks_done += 1
        self.items_done += items
        self.worker_wall[worker] = self.worker_wall.get(worker, 0.0) + elapsed
        self.worker_chunks[worker] = self.worker_chunks.get(worker, 0) + 1
        if self._emit is not None:
            self._emit(self.format_line())

    def chunk_failed(self) -> None:
        self.chunks_failed += 1
        if self._emit is not None:
            self._emit(self.format_line())

    # -- derived metrics ------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Wall time since the meter was created (this run only)."""
        return self._clock() - self._started_at

    @property
    def items_per_second(self) -> Optional[float]:
        """Realised throughput of this run (resumed chunks excluded)."""
        if self.items_done == 0 or self.elapsed <= 0:
            return None
        return self.items_done / self.elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Remaining wall time at the realised rate."""
        rate = self.items_per_second
        if rate is None:
            return None
        remaining = self.total_items - self.items_done - self.items_resumed
        return max(0.0, remaining / rate)

    def snapshot(self) -> dict:
        """All metrics as one plain dict (merged into execution results)."""
        rate = self.items_per_second
        eta = self.eta_seconds
        return {
            "chunks_total": self.total_chunks,
            "chunks_done": self.chunks_done,
            "chunks_resumed": self.chunks_resumed,
            "chunks_failed": self.chunks_failed,
            "items_total": self.total_items,
            "items_done": self.items_done,
            "items_resumed": self.items_resumed,
            "elapsed_s": round(self.elapsed, 6),
            "items_per_s": None if rate is None else round(rate, 3),
            "eta_s": None if eta is None else round(eta, 3),
            "workers": {
                pid: {"chunks": self.worker_chunks[pid],
                      "wall_s": round(self.worker_wall[pid], 6)}
                for pid in sorted(self.worker_wall)
            },
        }

    def format_line(self) -> str:
        """One-line human-readable status (for live ``emit`` output)."""
        finished = self.chunks_done + self.chunks_resumed + self.chunks_failed
        rate = self.items_per_second
        eta = self.eta_seconds
        parts = [f"[{finished}/{self.total_chunks} chunks]",
                 f"{self.items_done + self.items_resumed}"
                 f"/{self.total_items} items"]
        if self.items_resumed:
            parts.append(f"({self.items_resumed} resumed)")
        if rate is not None:
            parts.append(f"{rate:.1f} items/s")
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        if self.chunks_failed:
            parts.append(f"{self.chunks_failed} failed")
        return " ".join(parts)
