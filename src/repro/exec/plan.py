"""Work plans: the unit the execution engine schedules.

A :class:`Plan` is a picklable description of an embarrassingly
parallel sweep: a worker callable, a tuple of work items, a base seed
and a chunk size.  Everything the engine needs — sharding, per-item
seeds, the checkpoint fingerprint — derives deterministically from
these four fields, so two processes constructing the same plan agree
on every chunk boundary and every seed without coordinating.

The worker must be picklable (a module-level function, or a
:func:`functools.partial` over one with picklable arguments) and is
called as ``worker(item, seed)`` in a worker process; its return value
must itself be picklable, because results travel back through the pool
and into the checkpoint journal.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.exec.shard import Chunk, shard

#: Pin the pickle protocol so fingerprints agree across interpreter
#: versions with different default protocols.
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class Plan:
    """One sweep: ``worker(item, seed)`` over every item, chunked."""

    label: str
    worker: Callable
    items: tuple = field(default_factory=tuple)
    base_seed: int = 0
    chunk_size: int = 1
    #: Optional picklable zero-argument callable run once at the start
    #: of every chunk, *in the process executing the chunk* — the hook
    #: that carries process-local state (e.g. the analysis memo cache
    #: config, ``functools.partial(repro.perf.memo.ensure, cfg)``) to
    #: pool workers regardless of start method.  Must be idempotent:
    #: a long-lived worker runs it once per chunk it picks up.
    setup: Optional[Callable] = None

    def __post_init__(self):
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"plan {self.label!r}: chunk_size must be >= 1")
        if not isinstance(self.items, tuple):
            object.__setattr__(self, "items", tuple(self.items))

    @property
    def n_items(self) -> int:
        return len(self.items)

    def chunks(self) -> list[Chunk]:
        """The plan's chunk list — stable across runs and job counts."""
        return shard(self.items, self.chunk_size, self.base_seed)

    def fingerprint(self) -> str:
        """SHA-256 identity of the plan's *work* (label, seed, chunking,
        items) — the key a checkpoint journal is validated against on
        resume.  The worker callable is deliberately excluded: partials
        capture live objects whose pickled form may differ between the
        interrupted and the resuming process even when the work is the
        same.  ``setup`` is excluded for the same reason — and because
        it configures process-local environment (caches), which by
        definition must not change what the work computes."""
        payload = pickle.dumps(
            (self.label, self.base_seed, self.chunk_size, self.items),
            protocol=_PICKLE_PROTOCOL)
        return hashlib.sha256(payload).hexdigest()
