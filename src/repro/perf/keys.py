"""Content-addressed cache keys for per-layer analyses.

Every analysis layer of the differential oracle is a pure function of
a small slice of the generated system — the RTA of one ECU reads that
ECU's task set and its critical sections (with resolved ceilings) and
nothing else; the CAN bus analysis reads the frame table and bitrate;
the TDMA busy-window reads the partition plan.  This module makes that
slice explicit: :func:`layer_inputs` extracts exactly the sub-model
each layer reads, and :func:`layer_keys` digests each slice to a
SHA-256 key.  :func:`system_key` digests the *whole* system dict —
the over-inclusive composite key under which the oracle memoizes the
complete ``analyze_bounds`` result, so re-verifying an unchanged
system costs one digest instead of one per layer.

The keys are what make memoization *sound*: a fuzz mutant that only
perturbs the CAN frame table produces byte-identical ``rta:*`` /
``tdma`` / ``flexray_*`` keys, so those layers' cached results may be
reused — and a different ``can`` key, so nothing stale is served.  The
``e2e`` key is a composite (the chain bound is derived from producer /
consumer task WCRTs and the chain frame's bus latency), so it changes
whenever any of its upstream layers change.

Key hygiene over hit rate: a slice may *over*-include fields the
analysis ignores (e.g. FlexRay writer offsets, which shape the
simulation but not the static bound) — that only costs cache hits,
never correctness.  It must never under-include.
"""

from __future__ import annotations

import hashlib
import pickle

from repro.model.convert import (can_to_dict as _can_to_dict,
                                 chain_to_dict as _chain_to_dict,
                                 flexray_to_dict as _flexray_to_dict,
                                 task_to_dict as _task_to_dict,
                                 tdma_to_dict as _tdma_to_dict)
from repro.verify.generator import GeneratedSystem
from repro.verify.serialize import system_to_dict

#: Bumped whenever a slice's shape (or the digest encoding) changes, so
#: stale on-disk entries from older builds can never collide with
#: current keys.
KEY_FORMAT = 2


def _digest(layer: str, payload) -> str:
    # Pickle, not JSON: the payloads are JSON-native dicts built by
    # deterministic code paths (fixed insertion order), and the C
    # pickler serializes them ~3x faster — which matters because key
    # computation is the entire cost of a warm cache hit.  Different
    # content can never collide; at worst a changed construction path
    # costs a cache miss, never a stale hit.
    body = pickle.dumps((KEY_FORMAT, layer, payload), protocol=4)
    return hashlib.sha256(body).hexdigest()


def layer_inputs(system: GeneratedSystem) -> dict:
    """The exact sub-model each analysis layer reads, JSON-native.

    One entry per *independent* layer present in the system:
    ``rta:<ecu>`` per fixed-priority ECU, ``can``, ``flexray_static``,
    ``flexray_dynamic``, ``tdma``, and the ``faults`` pseudo-layer
    (resilience scenarios).  The derived ``e2e`` layer has no slice of
    its own — see :func:`layer_keys` for its composite key.
    """
    inputs: dict = {}
    for ecu in system.fp_ecus:
        specs = system.tasksets[ecu]
        names = {t.name for t in specs}
        inputs[f"rta:{ecu}"] = {
            "tasks": [_task_to_dict(t) for t in specs],
            # Blocking terms: what rta.analyze actually consumes is
            # (ceiling, duration) per owning task — ceilings resolved
            # here so a ceiling change (e.g. after a priority swap)
            # invalidates every ECU whose blocking it feeds.
            "blocking": [
                {"task": s.task,
                 "ceiling": system.resources[s.resource],
                 "duration": s.duration}
                for s in system.critical_sections if s.task in names],
        }
    if system.can is not None:
        inputs["can"] = _can_to_dict(system.can)
    if system.flexray is not None:
        flexray = _flexray_to_dict(system.flexray)
        inputs["flexray_static"] = {"config": flexray["config"],
                                    "writers": flexray["static_writers"]}
        inputs["flexray_dynamic"] = {"config": flexray["config"],
                                     "writers": flexray["dynamic_writers"]}
    if system.tdma is not None:
        inputs["tdma"] = _tdma_to_dict(system.tdma)
    if system.faults:
        inputs["faults"] = [{"kind": f.kind, "start": f.start,
                             "duration": f.duration, "target": f.target}
                            for f in system.faults]
    return inputs


def layer_keys(system: GeneratedSystem) -> dict[str, str]:
    """Canonical SHA-256 key per layer, including the composite ``e2e``.

    The ``e2e`` key exists exactly when the oracle computes the chain
    bound (chain *and* CAN present) and hashes the chain plan together
    with the producer-ECU, consumer-ECU and CAN layer keys — the three
    analyses its inputs are derived from.
    """
    keys = {layer: _digest(layer, payload)
            for layer, payload in layer_inputs(system).items()}
    chain = system.chain
    if chain is not None and system.can is not None:
        keys["e2e"] = _digest("e2e", {
            "chain": _chain_to_dict(chain),
            "deps": {
                "producer_rta": keys.get(f"rta:{chain.producer_ecu}"),
                "consumer_rta": keys.get(f"rta:{chain.consumer_ecu}"),
                "can": keys.get("can"),
            },
        })
    return keys


def system_key(system: GeneratedSystem) -> str:
    """One key over the entire system dict — the composite under which
    the full ``analyze_bounds`` result is memoized.

    Deliberately over-inclusive (it hashes fields no analysis reads,
    e.g. fault scenarios): that only costs composite hits on systems
    that differ in analysis-irrelevant ways — they fall through to the
    per-layer entries, which still reuse every untouched slice.
    """
    return _digest("system", system_to_dict(system))
