"""``repro.perf`` — memoized analysis and performance plumbing.

The paper's componentized analyses make the verification hot loop
cacheable by construction: each layer (per-ECU RTA, CAN/FlexRay bus
bounds, TDMA busy-window, the derived e2e chain bound) is a pure
function of a small sub-model, and most fuzz mutants perturb exactly
one subsystem.  This package exploits that:

* :mod:`repro.perf.keys` — canonical SHA-256 digests of exactly the
  inputs each layer reads;
* :mod:`repro.perf.memo` — a process-local LRU memo (optionally
  disk-backed) with obs-counter replay, so cached and uncached runs
  are byte-identical in every digest the repo pins.

The parity guarantee is enforced by ``tests/test_perf_parity.py`` and
the ``benchmarks/bench_e17_perf.py`` gate; the speedup trajectory is
persisted machine-readably in ``BENCH_e17_perf.json``.
"""

from repro.perf.keys import (KEY_FORMAT, layer_inputs, layer_keys,
                             system_key)
from repro.perf.memo import (AnalysisMemo, CacheConfig, clear, configure,
                             ensure, get_memo, stats)

__all__ = [
    "KEY_FORMAT", "layer_inputs", "layer_keys", "system_key",
    "AnalysisMemo", "CacheConfig",
    "configure", "ensure", "get_memo", "stats", "clear",
]
