"""Analysis memo cache: content-addressed, LRU, optionally disk-backed.

:class:`AnalysisMemo` memoizes per-layer analysis results under the
keys of :mod:`repro.perf.keys`.  An entry stores two things:

* the solver's **value** (JSON-native — round-tripped through JSON at
  store time so a memory hit and a disk hit return structurally
  identical objects);
* the obs **counters** the solve emitted (captured in a private
  :func:`repro.obs.capture` scope), replayed with :func:`repro.obs.count`
  on every hit.

Counter replay is what keeps a cached run *observationally* identical
to an uncached one: the fuzzer's feedback signature buckets oracle
counters (``rta.fixpoint_iterations`` et al.), so a hit that silently
skipped them would change coverage tokens and corpus digests.  Spans
are the one telemetry class not replayed — a cache hit genuinely does
not re-execute the solve, and spans measure wall clock, which never
feeds a digest.

The on-disk store (one canonical-JSON file per ``(layer, key)``,
written atomically via ``os.replace``) composes with ``repro.exec``:
worker processes share warm entries across ``--jobs N`` fan-out and
``--resume`` restarts; concurrent writers race benignly because any
writer produces the identical bytes for a given key.  A corrupt or
truncated file reads as a miss and is re-solved and rewritten.

Process-wide configuration (:func:`configure` / :func:`ensure` /
:func:`get_memo`) lets the oracle pick the memo up ambiently; workers
receive it through a plan's ``setup`` hook (:class:`repro.exec.Plan`),
which calls :func:`ensure` — idempotent, so a warm memo survives
across chunks and fuzz rounds with equal configuration.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.errors import ConfigurationError


def _copy_jsonish(value):
    """Structural copy of a JSON-native value — what ``json.loads(
    json.dumps(v))`` produces, without the serialization round-trip.
    This is the entire hit path besides the key digest, so it is worth
    keeping allocation-only."""
    if type(value) is list:
        return [_copy_jsonish(item) for item in value]
    if type(value) is dict:
        return {name: _copy_jsonish(item)
                for name, item in value.items()}
    return value


@dataclass(frozen=True)
class CacheConfig:
    """Picklable memo-cache configuration (travels to exec workers)."""

    enabled: bool = False
    capacity: int = 4096
    disk_dir: Optional[str] = None

    def __post_init__(self):
        if self.capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {self.capacity}")

    @classmethod
    def from_mode(cls, mode: str, directory: Optional[str] = None,
                  capacity: int = 4096) -> "CacheConfig":
        """Build from the CLI vocabulary: ``off`` / ``memory`` / ``disk``."""
        if mode == "off":
            return cls(False)
        if mode == "memory":
            return cls(True, capacity)
        if mode == "disk":
            if not directory:
                raise ConfigurationError(
                    "disk-backed analysis cache needs a directory")
            return cls(True, capacity, directory)
        raise ConfigurationError(
            f"unknown analysis-cache mode {mode!r}; "
            f"use 'off', 'memory' or 'disk'")


class AnalysisMemo:
    """LRU memo over ``(layer, key)`` with optional disk tier."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        if config.disk_dir is not None:
            os.makedirs(config.disk_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _disk_path(self, layer: str, key: str) -> str:
        return os.path.join(self.config.disk_dir,
                            f"{layer.replace(':', '_')}-{key}.json")

    def _disk_load(self, layer: str, key: str) -> Optional[dict]:
        if self.config.disk_dir is None:
            return None
        try:
            with open(self._disk_path(layer, key),
                      encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            # Missing, unreadable, or truncated: a miss, never an error —
            # the solve below rewrites the file whole.
            return None
        if not (isinstance(entry, dict) and "value" in entry
                and isinstance(entry.get("counters"), dict)):
            return None
        return entry

    def _disk_store(self, layer: str, key: str, entry: dict) -> None:
        if self.config.disk_dir is None:
            return
        body = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=self.config.disk_dir,
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(tmp, self._disk_path(layer, key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------
    def _remember(self, layer: str, key: str, entry: dict) -> None:
        self._entries[(layer, key)] = entry
        self._entries.move_to_end((layer, key))
        while len(self._entries) > self.config.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def lookup(self, layer: str, key: str) -> Optional[dict]:
        """The stored entry for ``(layer, key)``, or None on a miss."""
        entry = self._entries.get((layer, key))
        if entry is not None:
            self._entries.move_to_end((layer, key))
            return entry
        entry = self._disk_load(layer, key)
        if entry is not None:
            self.disk_hits += 1
            self._remember(layer, key, entry)
        return entry

    # ------------------------------------------------------------------
    # The memoization seam
    # ------------------------------------------------------------------
    def solve(self, layer: str, key: str, solver: Callable[[], object]):
        """Return the memoized value for ``(layer, key)``, running
        ``solver`` on a miss.

        Either way the solver's obs counters land in the ambient
        telemetry scope exactly once — recorded in a private capture on
        the miss, replayed from the entry on a hit — so cached and
        uncached runs emit identical deterministic telemetry.
        """
        entry = self.lookup(layer, key)
        if entry is not None:
            self.hits += 1
            obs.count("perf.cache.hits")
        else:
            self.misses += 1
            obs.count("perf.cache.misses")
            with obs.capture() as telemetry:
                value = solver()
            counters = telemetry.snapshot()["metrics"]["counters"]
            # perf.* bookkeeping is excluded: a composite entry's solve
            # performs nested per-layer lookups, and replaying *their*
            # hit/miss counts on a later composite hit would misreport
            # cache traffic that never happened.
            entry = {"value": json.loads(json.dumps(value)),
                     "counters": {name: int(count)
                                  for name, count in counters.items()
                                  if not name.startswith("perf.")}}
            self._remember(layer, key, entry)
            self._disk_store(layer, key, entry)
        for name in sorted(entry["counters"]):
            obs.count(name, entry["counters"][name])
        # Hand out a copy, never the stored object: a caller mutating
        # its result must not poison later hits.  (Stored values went
        # through JSON once at store time, so the structural copy is
        # indistinguishable from a round-trip — and much cheaper.)
        return _copy_jsonish(entry["value"])

    def stats(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "disk_hits": self.disk_hits}

    def clear(self) -> None:
        """Drop every in-memory entry (the disk tier is untouched)."""
        self._entries.clear()


# ----------------------------------------------------------------------
# Process-wide configuration (the seam the oracle reads)
# ----------------------------------------------------------------------
_config = CacheConfig()
_memo: Optional[AnalysisMemo] = None


def configure(config: Optional[CacheConfig]) -> Optional[AnalysisMemo]:
    """Install ``config`` process-wide; ``None`` (or ``enabled=False``)
    turns memoization off.  Returns the new memo (or None)."""
    global _config, _memo
    _config = config if config is not None else CacheConfig()
    _memo = AnalysisMemo(_config) if _config.enabled else None
    return _memo


def ensure(config: Optional[CacheConfig]) -> None:
    """Idempotent worker-side :func:`configure`: reconfigures only when
    the requested config differs from the installed one, so a warm memo
    survives repeated chunk setups.  ``None`` is a no-op (the caller
    expressed no preference)."""
    if config is not None and config != _config:
        configure(config)


def get_memo() -> Optional[AnalysisMemo]:
    """The installed memo, or None while memoization is off."""
    return _memo


def stats() -> Optional[dict]:
    """Hit/miss/eviction stats of the installed memo (None when off)."""
    return None if _memo is None else _memo.stats()


def clear() -> None:
    """Drop the installed memo's in-memory entries (no-op when off)."""
    if _memo is not None:
        _memo.clear()
