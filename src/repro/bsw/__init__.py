"""Basic software services: modes, error handling, NVRAM, watchdog,
network management, diagnostics, gateway (the Figure 1 boxes)."""

from repro.bsw.diag import (CLEAR_DTC, DiagnosticServer, NEGATIVE_RESPONSE,
                            READ_DATA, READ_DTC)
from repro.bsw.errors import (ErrorEvent, ErrorManager, FAILED, PASSED,
                              SEVERITY_HIGH, SEVERITY_LOW, SEVERITY_MEDIUM)
from repro.bsw.gateway import (CanGateway, FlexRayCanGateway,
                               MultiCanGateway)
from repro.bsw.modes import ModeMachine
from repro.bsw.recovery import (LEVEL_DEGRADE, LEVEL_NONE, LEVEL_RESTART,
                                LEVEL_SUBSTITUTE, RecoveryOrchestrator,
                                RecoveryPolicy)
from repro.bsw.netmgmt import (AWAKE, BUS_SLEEP, NmCluster, NmNode,
                               READY_TO_SLEEP)
from repro.bsw.nvram import NvBlock, NvramManager
from repro.bsw.watchdog import SupervisedEntity, WatchdogManager

__all__ = [
    "CLEAR_DTC", "DiagnosticServer", "NEGATIVE_RESPONSE", "READ_DATA",
    "READ_DTC",
    "ErrorEvent", "ErrorManager", "FAILED", "PASSED", "SEVERITY_HIGH",
    "SEVERITY_LOW", "SEVERITY_MEDIUM",
    "CanGateway", "FlexRayCanGateway", "ModeMachine", "MultiCanGateway",
    "LEVEL_DEGRADE", "LEVEL_NONE", "LEVEL_RESTART", "LEVEL_SUBSTITUTE",
    "RecoveryOrchestrator", "RecoveryPolicy",
    "AWAKE", "BUS_SLEEP", "NmCluster", "NmNode", "READY_TO_SLEEP",
    "NvBlock", "NvramManager", "SupervisedEntity", "WatchdogManager",
]
