"""Watchdog manager: alive supervision of tasks.

Each supervised entity must check in ("kick") at least once per
supervision window; a missed window raises the configured reaction —
the standard last line of defence against crashed or livelocked software,
complementing the OS-level execution budgets.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace


class SupervisedEntity:
    """Supervision state of one monitored entity."""
    def __init__(self, name: str, window: int, tolerance: int = 0):
        if window <= 0:
            raise ConfigurationError(
                f"entity {name}: window must be > 0")
        if tolerance < 0:
            raise ConfigurationError(
                f"entity {name}: tolerance must be >= 0")
        self.name = name
        self.window = window
        #: missed windows tolerated before the reaction fires.
        self.tolerance = tolerance
        self.kicks_in_window = 0
        self.missed_windows = 0
        self.violated = False


class WatchdogManager:
    """Windowed alive supervision."""

    def __init__(self, sim: Simulator, trace: Optional[Trace] = None,
                 on_violation: Optional[Callable[[str], None]] = None,
                 name: str = "WDG"):
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.on_violation = on_violation
        self.name = name
        self._entities: dict[str, SupervisedEntity] = {}

    def supervise(self, entity_name: str, window: int,
                  tolerance: int = 0) -> SupervisedEntity:
        """Start windowed supervision of a named entity."""
        if entity_name in self._entities:
            raise ConfigurationError(
                f"{self.name}: entity {entity_name!r} already supervised")
        entity = SupervisedEntity(entity_name, window, tolerance)
        self._entities[entity_name] = entity
        self._schedule_check(entity)
        return entity

    def kick(self, entity_name: str) -> None:
        """Alive indication from the supervised software."""
        entity = self._require(entity_name)
        entity.kicks_in_window += 1

    def _schedule_check(self, entity: SupervisedEntity) -> None:
        def check():
            if entity.violated:
                return
            if entity.kicks_in_window == 0:
                entity.missed_windows += 1
                self.trace.log(self.sim.now, "wdg.missed", entity.name,
                               missed=entity.missed_windows)
                if entity.missed_windows > entity.tolerance:
                    entity.violated = True
                    self.trace.log(self.sim.now, "wdg.violation",
                                   entity.name)
                    if self.on_violation is not None:
                        self.on_violation(entity.name)
                    return
            else:
                entity.missed_windows = 0
            entity.kicks_in_window = 0
            self._schedule_check(entity)

        self.sim.schedule(entity.window, check)

    def _require(self, entity_name: str) -> SupervisedEntity:
        entity = self._entities.get(entity_name)
        if entity is None:
            raise ConfigurationError(
                f"{self.name}: unknown entity {entity_name!r}")
        return entity

    def reset(self, entity_name: str) -> bool:
        """Watchdog-triggered partition restart of a supervised entity.

        Clears the latched violation and resumes windowed supervision
        (the violation stopped the check chain).  Returns True when a
        violation was actually cleared, False when the entity was
        healthy (no restart needed, supervision keeps running).
        """
        entity = self._require(entity_name)
        if not entity.violated:
            return False
        entity.violated = False
        entity.missed_windows = 0
        entity.kicks_in_window = 0
        self.trace.log(self.sim.now, "wdg.reset", entity_name)
        self._schedule_check(entity)
        return True

    def status(self, entity_name: str) -> dict:
        """Current supervision verdict for an entity."""
        entity = self._require(entity_name)
        return {"violated": entity.violated,
                "missed_windows": entity.missed_windows}

    def supervise_task(self, kernel, task_name: str, window: int,
                       tolerance: int = 0) -> SupervisedEntity:
        """Supervise an OS task: each completion counts as a kick.

        The hook chains onto any existing ``on_complete`` (the RTE's
        runnable execution keeps working), so a crashed, killed or
        starved task shows up as missed windows.
        """
        task = kernel.tasks.get(task_name)
        if task is None:
            raise ConfigurationError(
                f"{self.name}: kernel has no task {task_name!r}")
        entity = self.supervise(task_name, window, tolerance)
        previous = task.on_complete

        def kicked(job):
            if previous is not None:
                previous(job)
            self.kick(task_name)

        task.on_complete = kicked
        return entity

    def __repr__(self) -> str:
        return f"<WatchdogManager {self.name} entities={len(self._entities)}>"
