"""Recovery orchestration: from confirmed errors to degraded modes and back.

The paper's error-handling concept (Section 2) wants detection wired to
*reaction*: "a consistent and non ambiguous error handling … can also be
used as a means for mode management".  The seed repo had the pieces —
E2E/receiver verdicts, watchdog expiries, the debouncing
:class:`~repro.bsw.errors.ErrorManager`, :class:`~repro.bsw.modes.
ModeMachine` — but nothing closing the loop.  This module is that loop:

* :meth:`RecoveryOrchestrator.bind_e2e` turns an E2E receiver's verdict
  stream into PASSED/FAILED reports for a DEM event (and tracks the
  last valid value of the protected signal for substitution);
* :meth:`RecoveryOrchestrator.bind_watchdog` feeds alive-supervision
  expiries into the same debouncer;
* a confirmed DTC walks a per-event **escalation chain** —
  substitute last-good/default signal value → request a degraded mode →
  restart the partition via the watchdog — one level per hold period
  while the error stays confirmed;
* healing walks the chain back **in reverse order**, one level per
  ``heal_hold`` period, so a flapping fault cannot oscillate the
  vehicle between modes (hysteresis).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.bsw.errors import ErrorManager, FAILED, PASSED
from repro.errors import ConfigurationError
from repro.sim.trace import Trace

#: Escalation level names, index == level (0 = no reaction active).
LEVEL_NONE = 0
LEVEL_SUBSTITUTE = 1
LEVEL_DEGRADE = 2
LEVEL_RESTART = 3
LEVEL_NAMES = ("none", "substitute", "degrade", "restart")


class RecoveryPolicy:
    """Escalation plan for one monitored error event.

    Levels are built from the configured reactions, in fixed order:
    substitution (needs ``signal``), degraded mode (needs
    ``degraded_mode``), partition restart (needs ``restart_entity`` or
    ``on_restart``).  Unconfigured reactions are skipped, so a policy
    can e.g. go straight from substitution to restart.
    """

    def __init__(self, event_name: str, *,
                 signal: Optional[str] = None,
                 substitute_value: Optional[int] = None,
                 degraded_mode: Optional[str] = None,
                 restart_entity: Optional[str] = None,
                 on_restart: Optional[Callable[[], None]] = None,
                 escalate_hold: int = 0,
                 heal_hold: int = 0):
        if escalate_hold < 0 or heal_hold < 0:
            raise ConfigurationError(
                f"policy {event_name}: holds must be >= 0")
        self.event_name = event_name
        self.signal = signal
        self.substitute_value = substitute_value
        self.degraded_mode = degraded_mode
        self.restart_entity = restart_entity
        self.on_restart = on_restart
        #: time a level must persist before escalating to the next.
        self.escalate_hold = escalate_hold
        #: time the event must stay healed before each de-escalation.
        self.heal_hold = heal_hold
        self.chain: list[str] = []
        if signal is not None:
            self.chain.append("substitute")
        if degraded_mode is not None:
            self.chain.append("degrade")
        if restart_entity is not None or on_restart is not None:
            self.chain.append("restart")
        if not self.chain:
            raise ConfigurationError(
                f"policy {event_name}: configure at least one reaction")
        #: 0 = healthy; 1..len(chain) = chain[level-1] active.
        self.level = 0

    def __repr__(self) -> str:
        return (f"<RecoveryPolicy {self.event_name} "
                f"chain={self.chain} level={self.level}>")


class RecoveryOrchestrator:
    """Per-ECU recovery loop over an ErrorManager's confirmations.

    The orchestrator listens for confirm/heal status changes, drives
    each event's :class:`RecoveryPolicy` up and down its escalation
    chain on simulator time, and performs the reactions against the
    bound COM stack, mode machine and watchdog.
    """

    def __init__(self, sim, errors: ErrorManager, *,
                 modes=None, watchdog=None, com=None,
                 nominal_mode: Optional[str] = None,
                 trace: Optional[Trace] = None):
        self.sim = sim
        self.errors = errors
        self.modes = modes
        self.watchdog = watchdog
        self.com = com
        self.trace = trace if trace is not None else Trace()
        self.nominal_mode = nominal_mode if nominal_mode is not None else (
            modes.current if modes is not None else None)
        self._policies: dict[str, RecoveryPolicy] = {}
        self._timers: dict[str, object] = {}
        self._last_good: dict[str, int] = {}
        errors.on_status_change(self._on_status)

    # ------------------------------------------------------------------
    # Configuration / wiring
    # ------------------------------------------------------------------
    def add_policy(self, policy: RecoveryPolicy) -> RecoveryPolicy:
        """Attach an escalation policy to a registered error event."""
        self.errors.event(policy.event_name)  # must exist (KeyError)
        if policy.event_name in self._policies:
            raise ConfigurationError(
                f"duplicate recovery policy for {policy.event_name!r}")
        if "substitute" in policy.chain and self.com is None:
            raise ConfigurationError(
                f"policy {policy.event_name}: substitution needs a COM "
                f"stack bound to the orchestrator")
        if "degrade" in policy.chain and self.modes is None:
            raise ConfigurationError(
                f"policy {policy.event_name}: degraded mode needs a "
                f"mode machine bound to the orchestrator")
        if (policy.restart_entity is not None
                and self.watchdog is None):
            raise ConfigurationError(
                f"policy {policy.event_name}: restart_entity needs a "
                f"watchdog bound to the orchestrator")
        self._policies[policy.event_name] = policy
        return policy

    def bind_e2e(self, receiver, event_name: str,
                 signal: Optional[str] = None) -> None:
        """Feed an E2E receiver's verdicts into an error event.

        OK verdicts report PASSED, everything else FAILED (with the
        verdict as freeze-frame context).  When ``signal`` is given and
        a COM stack is bound, the signal's delivered values are tracked
        as the last-good substitution source.
        """
        from repro.com.e2e import E2E_OK

        self.errors.event(event_name)  # must exist

        def on_verdict(verdict: str) -> None:
            status = PASSED if verdict == E2E_OK else FAILED
            self.errors.report(event_name, status,
                               context={"verdict": verdict,
                                        "pdu": receiver.ipdu.name})

        receiver.on_verdict(on_verdict)
        if signal is not None and self.com is not None:
            self.com.on_signal(
                signal,
                lambda value: self._last_good.__setitem__(signal, value))

    def bind_watchdog(self, event_of_entity: dict[str, str],
                      poll: Optional[int] = None) -> None:
        """Feed watchdog violations into error events.

        ``event_of_entity`` maps supervised entity names to DEM event
        names.  ``poll`` (ns) additionally samples each entity's health
        periodically, reporting PASSED while it is alive — that is what
        lets a watchdog-sourced DTC *heal* after the entity recovers.
        """
        if self.watchdog is None:
            raise ConfigurationError("no watchdog bound")
        for event_name in event_of_entity.values():
            self.errors.event(event_name)  # must exist
        previous = self.watchdog.on_violation

        def violated(entity_name: str) -> None:
            if previous is not None:
                previous(entity_name)
            event_name = event_of_entity.get(entity_name)
            if event_name is not None:
                self.errors.report(event_name, FAILED,
                                   context={"entity": entity_name,
                                            "source": "watchdog"})

        self.watchdog.on_violation = violated
        if poll is not None:
            def sample():
                for entity_name, event_name in event_of_entity.items():
                    status = self.watchdog.status(entity_name)
                    if not status["violated"] \
                            and status["missed_windows"] == 0:
                        self.errors.report(event_name, PASSED)
                self.sim.schedule(poll, sample)

            self.sim.schedule(poll, sample)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def level(self, event_name: str) -> int:
        """Current escalation level (0 = no reaction active)."""
        return self._policies[event_name].level

    def level_name(self, event_name: str) -> str:
        """Name of the active reaction ("none" when healthy)."""
        policy = self._policies[event_name]
        if policy.level == 0:
            return LEVEL_NAMES[LEVEL_NONE]
        return policy.chain[policy.level - 1]

    def last_good(self, signal: str) -> Optional[int]:
        """Last value of a tracked signal that passed the E2E check."""
        return self._last_good.get(signal)

    # ------------------------------------------------------------------
    # Escalation engine
    # ------------------------------------------------------------------
    def _on_status(self, event, confirmed: bool) -> None:
        policy = self._policies.get(event.name)
        if policy is None:
            return
        self._cancel_timer(policy)
        if confirmed:
            if policy.level == 0:
                self._escalate(policy, event)
            else:
                # Relapse during de-escalation: hold the current level
                # and resume the escalation clock from here.
                self._arm(policy, policy.escalate_hold,
                          lambda: self._escalate(policy, event))
        else:
            self._arm(policy, policy.heal_hold,
                      lambda: self._deescalate(policy, event))

    def _escalate(self, policy: RecoveryPolicy, event) -> None:
        if not event.confirmed:
            return
        if policy.level < len(policy.chain):
            policy.level += 1
            action = policy.chain[policy.level - 1]
            self.trace.log(self.sim.now, "recovery.escalate",
                           policy.event_name, action=action,
                           level=policy.level)
            getattr(self, f"_apply_{action}")(policy)
        elif policy.chain[-1] == "restart":
            # Top of the chain and still confirmed: keep retrying the
            # partition restart — a watchdog reset during an ongoing
            # fault re-latches, and only a retry after the fault clears
            # brings the partition (and its PASSED stream) back.
            self._apply_restart(policy)
        else:
            return
        retryable = (policy.level < len(policy.chain)
                     or (policy.chain[-1] == "restart"
                         and policy.escalate_hold > 0))
        if retryable:
            self._arm(policy, policy.escalate_hold,
                      lambda: self._escalate(policy, event))

    def _deescalate(self, policy: RecoveryPolicy, event) -> None:
        if event.confirmed or policy.level == 0:
            return
        action = policy.chain[policy.level - 1]
        policy.level -= 1
        self.trace.log(self.sim.now, "recovery.deescalate",
                       policy.event_name, action=action,
                       level=policy.level)
        getattr(self, f"_undo_{action}")(policy)
        if policy.level > 0:
            self._arm(policy, policy.heal_hold,
                      lambda: self._deescalate(policy, event))

    def _arm(self, policy: RecoveryPolicy, delay: int,
             fire: Callable[[], None]) -> None:
        self._timers[policy.event_name] = self.sim.schedule(delay, fire)

    def _cancel_timer(self, policy: RecoveryPolicy) -> None:
        handle = self._timers.pop(policy.event_name, None)
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # Reactions
    # ------------------------------------------------------------------
    def _apply_substitute(self, policy: RecoveryPolicy) -> None:
        value = policy.substitute_value
        if value is None:
            value = self._last_good.get(policy.signal)
        if value is None:  # never received: fall back to the spec default
            value = self.com._require(policy.signal).spec.initial
        self.com.substitute_signal(policy.signal, value)

    def _undo_substitute(self, policy: RecoveryPolicy) -> None:
        self.com.clear_substitution(policy.signal)

    def _apply_degrade(self, policy: RecoveryPolicy) -> None:
        self.modes.request(policy.degraded_mode)

    def _undo_degrade(self, policy: RecoveryPolicy) -> None:
        # Another policy may still require the degraded mode; only
        # return to nominal when this was the last one holding it.
        others_degraded = any(
            p is not policy and "degrade" in p.chain[:p.level]
            for p in self._policies.values())
        if not others_degraded and self.nominal_mode is not None:
            self.modes.request(self.nominal_mode)

    def _apply_restart(self, policy: RecoveryPolicy) -> None:
        if policy.restart_entity is not None:
            self.watchdog.reset(policy.restart_entity)
        if policy.on_restart is not None:
            policy.on_restart()
        self.trace.log(self.sim.now, "recovery.restart",
                       policy.restart_entity or policy.event_name)

    def _undo_restart(self, policy: RecoveryPolicy) -> None:
        pass  # a restart is a one-shot action; nothing to undo

    def __repr__(self) -> str:
        active = sum(1 for p in self._policies.values() if p.level > 0)
        return (f"<RecoveryOrchestrator policies={len(self._policies)} "
                f"active={active}>")
