"""Mode management.

AUTOSAR's error-handling concept "can also be used as a means for mode
management" (Section 2): degraded operating modes are entered when error
reactions demand it.  A :class:`ModeMachine` is a guarded state machine
with entry/exit notifications; mode *users* (tasks, COM, monitors)
subscribe to switches.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.trace import Trace


class ModeMachine:
    """A named mode state machine with declared transitions."""

    def __init__(self, name: str, modes: list[str], initial: str,
                 trace: Optional[Trace] = None):
        if not modes:
            raise ConfigurationError(f"{name}: needs at least one mode")
        if len(set(modes)) != len(modes):
            raise ConfigurationError(f"{name}: duplicate modes")
        if initial not in modes:
            raise ConfigurationError(
                f"{name}: initial mode {initial!r} not declared")
        self.name = name
        self.modes = list(modes)
        self.current = initial
        self.trace = trace if trace is not None else Trace()
        self._transitions: set[tuple[str, str]] = set()
        self._on_entry: dict[str, list[Callable]] = {m: [] for m in modes}
        self._on_exit: dict[str, list[Callable]] = {m: [] for m in modes}
        self._history: list[tuple[int, str]] = [(0, initial)]
        self._now = lambda: 0

    def bind_clock(self, now: Callable[[], int]) -> None:
        """Attach a time source (e.g. ``lambda: sim.now``) for history
        timestamps."""
        self._now = now

    def allow(self, source: str, target: str) -> None:
        """Declare a legal transition."""
        for mode in (source, target):
            if mode not in self.modes:
                raise ConfigurationError(
                    f"{self.name}: unknown mode {mode!r}")
        self._transitions.add((source, target))

    def allow_chain(self, *modes: str) -> None:
        """Declare transitions along a degradation chain
        (``a -> b -> c``)."""
        for source, target in zip(modes, modes[1:]):
            self.allow(source, target)

    def on_entry(self, mode: str, callback: Callable[[], None]) -> None:
        """Register a callback fired when `mode` is entered."""
        self._on_entry[mode].append(callback)

    def on_exit(self, mode: str, callback: Callable[[], None]) -> None:
        """Register a callback fired when `mode` is left."""
        self._on_exit[mode].append(callback)

    def can_switch(self, target: str) -> bool:
        """Whether a transition from the current mode to `target` is declared."""
        return (self.current, target) in self._transitions

    def request(self, target: str) -> bool:
        """Request a mode switch; returns False when the transition is
        not declared (request denied, logged)."""
        if target == self.current:
            return True
        if not self.can_switch(target):
            self.trace.log(self._now(), "mode.denied", self.name,
                           source=self.current, target=target)
            return False
        source = self.current
        for callback in self._on_exit[source]:
            callback()
        self.current = target
        self._history.append((self._now(), target))
        self.trace.log(self._now(), "mode.switch", self.name,
                       source=source, target=target)
        for callback in self._on_entry[target]:
            callback()
        return True

    @property
    def history(self) -> list[tuple[int, str]]:
        """Chronological (time, mode) list, starting with the initial mode."""
        return list(self._history)

    def __repr__(self) -> str:
        return f"<ModeMachine {self.name} current={self.current}>"
