"""PDU gateways between buses (Figure 1's "Gateway" box).

In a federated architecture, domains on separate buses exchange selected
frames through a gateway ECU.  The gateway subscribes to frames on one
bus and re-emits them on another after a processing delay — the hop the
integrated architecture removes (experiment E5 counts these).

Two gateways are provided: :class:`CanGateway` (CAN <-> CAN, the classic
central gateway) and :class:`FlexRayCanGateway` (CAN <-> FlexRay static
segment — the migration path of Section 4, where legacy CAN domains hang
off a time-triggered backbone).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.network.can import CanBus, CanFrameSpec
from repro.network.flexray import FlexRayBus
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace


class CanGateway:
    """Routes selected CAN frames between two CAN buses."""

    def __init__(self, sim: Simulator, name: str, bus_a: CanBus,
                 bus_b: CanBus, processing_delay: int = 100_000,
                 trace: Optional[Trace] = None):
        if bus_a is bus_b:
            raise ConfigurationError(
                f"gateway {name}: both ports on the same bus")
        if processing_delay < 0:
            raise ConfigurationError(
                f"gateway {name}: negative processing delay")
        self.sim = sim
        self.name = name
        self.processing_delay = processing_delay
        self.trace = trace if trace is not None else Trace()
        self._ports = {
            "a": bus_a.attach(f"{name}.a"),
            "b": bus_b.attach(f"{name}.b"),
        }
        #: frame name -> (destination port, outgoing spec)
        self._routes: dict[str, tuple[str, CanFrameSpec]] = {}
        self.forwarded = 0
        self._ports["a"].on_receive(
            lambda spec, msg: self._forward("a", spec, msg))
        self._ports["b"].on_receive(
            lambda spec, msg: self._forward("b", spec, msg))

    def route(self, frame_name: str, from_port: str,
              out_spec: Optional[CanFrameSpec] = None,
              in_spec: Optional[CanFrameSpec] = None) -> None:
        """Forward ``frame_name`` arriving on ``from_port`` to the other
        port, optionally re-mapping to a different outgoing frame spec
        (id translation)."""
        if from_port not in ("a", "b"):
            raise ConfigurationError(
                f"gateway {self.name}: port must be 'a' or 'b'")
        if frame_name in self._routes:
            raise ConfigurationError(
                f"gateway {self.name}: duplicate route for "
                f"{frame_name!r}")
        if out_spec is None:
            if in_spec is None:
                raise ConfigurationError(
                    f"gateway {self.name}: need out_spec or in_spec for "
                    f"{frame_name!r}")
            out_spec = in_spec
        destination = "b" if from_port == "a" else "a"
        self._routes[frame_name] = (destination, out_spec)

    def _forward(self, arrived_on: str, spec, msg) -> None:
        route = self._routes.get(spec.name)
        if route is None:
            return
        destination, out_spec = route
        if destination == arrived_on:
            return  # route is for traffic from the other port

        def emit():
            self.forwarded += 1
            self.trace.log(self.sim.now, "gateway.forward", spec.name,
                           gateway=self.name, to=destination)
            self._ports[destination].send(out_spec, msg.payload)

        self.sim.schedule(self.processing_delay, emit)

    def __repr__(self) -> str:
        return f"<CanGateway {self.name} routes={len(self._routes)}>"


class MultiCanGateway:
    """A central gateway spanning several CAN domains.

    One controller per domain bus; a route forwards a frame arriving in
    its source domain to any set of destination domains after the
    processing delay.  This is the gateway the RTE auto-instantiates for
    multi-domain deployments (the federated architecture's backbone hop
    that E5 counts).
    """

    def __init__(self, sim: Simulator, name: str,
                 buses: dict[str, CanBus], processing_delay: int = 100_000,
                 trace: Optional[Trace] = None):
        if len(buses) < 2:
            raise ConfigurationError(
                f"gateway {name}: needs at least two domains")
        if processing_delay < 0:
            raise ConfigurationError(
                f"gateway {name}: negative processing delay")
        self.sim = sim
        self.name = name
        self.processing_delay = processing_delay
        self.trace = trace if trace is not None else Trace()
        self._ports = {domain: bus.attach(f"{name}.{domain}")
                       for domain, bus in buses.items()}
        #: frame name -> (source domain, {dst domain: out spec}).
        self._routes: dict[str, tuple[str, dict[str, CanFrameSpec]]] = {}
        self.forwarded = 0
        for domain, controller in self._ports.items():
            controller.on_receive(
                lambda spec, msg, d=domain: self._forward(d, spec, msg))

    def route(self, frame_name: str, src_domain: str,
              out_specs: dict[str, CanFrameSpec]) -> None:
        """Forward ``frame_name`` from ``src_domain`` to each destination
        domain with the given outgoing spec."""
        if frame_name in self._routes:
            raise ConfigurationError(
                f"gateway {self.name}: duplicate route {frame_name!r}")
        unknown = ({src_domain} | set(out_specs)) - set(self._ports)
        if unknown:
            raise ConfigurationError(
                f"gateway {self.name}: unknown domains {sorted(unknown)}")
        if src_domain in out_specs:
            raise ConfigurationError(
                f"gateway {self.name}: route {frame_name!r} forwards "
                f"into its own source domain")
        self._routes[frame_name] = (src_domain, dict(out_specs))

    def _forward(self, arrived_in: str, spec, msg) -> None:
        route = self._routes.get(spec.name)
        if route is None:
            return
        src_domain, out_specs = route
        if arrived_in != src_domain:
            return  # our own re-emission in a destination domain

        def emit():
            for domain, out_spec in out_specs.items():
                self.forwarded += 1
                self.trace.log(self.sim.now, "gateway.forward", spec.name,
                               gateway=self.name, to=domain)
                self._ports[domain].send(out_spec, msg.payload)

        self.sim.schedule(self.processing_delay, emit)

    def __repr__(self) -> str:
        return (f"<MultiCanGateway {self.name} domains="
                f"{sorted(self._ports)} routes={len(self._routes)}>")


class FlexRayCanGateway:
    """Bridges a legacy CAN domain onto a FlexRay backbone.

    * **CAN -> FlexRay**: a routed CAN frame's payload is written into a
      gateway-owned static slot buffer; the backbone transmits it at the
      next slot occurrence (event-triggered traffic becomes
      time-triggered state).
    * **FlexRay -> CAN**: a routed static frame's payload is re-emitted
      on the CAN domain as a normal frame after the processing delay.
    """

    def __init__(self, sim: Simulator, name: str, can_bus: CanBus,
                 flexray_bus: FlexRayBus, processing_delay: int = 100_000,
                 trace: Optional[Trace] = None):
        if processing_delay < 0:
            raise ConfigurationError(
                f"gateway {name}: negative processing delay")
        self.sim = sim
        self.name = name
        self.processing_delay = processing_delay
        self.trace = trace if trace is not None else Trace()
        self.can = can_bus.attach(f"{name}.can")
        self.flexray = flexray_bus.attach(f"{name}.fr")
        #: CAN frame name -> FlexRay slot the gateway owns.
        self._to_flexray: dict[str, int] = {}
        #: FlexRay frame name -> outgoing CAN spec.
        self._to_can: dict[str, CanFrameSpec] = {}
        self.forwarded = 0
        self.can.on_receive(self._from_can)
        self.flexray.on_receive(self._from_flexray)

    def route_to_flexray(self, can_frame_name: str, slot: int) -> None:
        """Forward a CAN frame into a gateway-owned static slot."""
        if can_frame_name in self._to_flexray:
            raise ConfigurationError(
                f"gateway {self.name}: duplicate route for "
                f"{can_frame_name!r}")
        self._to_flexray[can_frame_name] = slot

    def route_to_can(self, flexray_frame_name: str,
                     out_spec: CanFrameSpec) -> None:
        """Forward a FlexRay static frame onto the CAN domain."""
        if flexray_frame_name in self._to_can:
            raise ConfigurationError(
                f"gateway {self.name}: duplicate route for "
                f"{flexray_frame_name!r}")
        self._to_can[flexray_frame_name] = out_spec

    def _from_can(self, spec, msg) -> None:
        slot = self._to_flexray.get(spec.name)
        if slot is None:
            return

        def emit():
            self.forwarded += 1
            self.trace.log(self.sim.now, "gateway.forward", spec.name,
                           gateway=self.name, to="flexray", slot=slot)
            self.flexray.send_static(slot, msg.payload)

        self.sim.schedule(self.processing_delay, emit)

    def _from_flexray(self, frame_name, msg, slot) -> None:
        out_spec = self._to_can.get(frame_name)
        if out_spec is None:
            return

        def emit():
            self.forwarded += 1
            self.trace.log(self.sim.now, "gateway.forward", frame_name,
                           gateway=self.name, to="can",
                           can_id=out_spec.can_id)
            self.can.send(out_spec, msg.payload)

        self.sim.schedule(self.processing_delay, emit)

    def __repr__(self) -> str:
        return (f"<FlexRayCanGateway {self.name} "
                f"routes={len(self._to_flexray) + len(self._to_can)}>")
