"""Error handling service (DEM-like).

"A consistent and non ambiguous error handling supports effective
communication to application layer functionality and can also be used as
a means for mode management and diagnostic purposes.  Use cases include
broken sensors, communication errors and memory failures" (Section 2).

:class:`ErrorManager` receives PASSED/FAILED reports from detectors
(COM timeouts, sensor plausibility checks, NVRAM CRC errors …), debounces
them with per-event counters, latches confirmed errors as DTCs with
freeze frames, and notifies listeners — which typically request degraded
modes or diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.sim.trace import Trace

PASSED = "passed"
FAILED = "failed"

#: Use-case severities from the paper's examples.
SEVERITY_LOW = 1
SEVERITY_MEDIUM = 2
SEVERITY_HIGH = 3


@dataclass
class ErrorEvent:
    """One monitored error condition."""

    name: str
    dtc: int
    severity: int = SEVERITY_MEDIUM
    #: debounce: counter moves +fail_step on FAILED, -pass_step on
    #: PASSED; confirmed at >= threshold, healed at <= 0.
    threshold: int = 3
    fail_step: int = 1
    pass_step: int = 1
    counter: int = 0
    confirmed: bool = False
    occurrences: int = 0
    freeze_frame: Optional[dict] = None
    #: manager-wide sequence number of this event's latest state change
    #: (confirm, heal, or freeze-frame refresh) — lets report consumers
    #: order events across snapshots even when refreshes share a
    #: timestamp.
    last_seq: int = 0

    def __post_init__(self):
        if self.threshold <= 0 or self.fail_step <= 0 or self.pass_step <= 0:
            raise ConfigurationError(
                f"event {self.name}: debounce parameters must be > 0")


class ErrorManager:
    """Per-ECU error manager."""

    def __init__(self, node: str, trace: Optional[Trace] = None,
                 now: Optional[Callable[[], int]] = None):
        self.node = node
        self.trace = trace if trace is not None else Trace()
        self._now = now if now is not None else (lambda: 0)
        self._events: dict[str, ErrorEvent] = {}
        self._listeners: list[Callable[[ErrorEvent, bool], None]] = []
        #: monotonically increasing across *all* events of this manager.
        self._seq = 0

    def _bump_seq(self, event: ErrorEvent) -> None:
        self._seq += 1
        event.last_seq = self._seq

    def register(self, event: ErrorEvent) -> ErrorEvent:
        """Declare a monitored error event; returns it for convenience."""
        if event.name in self._events:
            raise ConfigurationError(
                f"{self.node}: duplicate error event {event.name!r}")
        self._events[event.name] = event
        return event

    def on_status_change(self,
                         listener: Callable[[ErrorEvent, bool], None]
                         ) -> None:
        """Listener called with (event, confirmed) on confirm and heal."""
        self._listeners.append(listener)

    def report(self, name: str, status: str,
               context: Optional[dict] = None) -> None:
        """Report a monitor result (PASSED/FAILED) for an event."""
        event = self._events.get(name)
        if event is None:
            raise ConfigurationError(
                f"{self.node}: unknown error event {name!r}")
        if status == FAILED:
            event.counter = min(event.threshold,
                                event.counter + event.fail_step)
            if event.confirmed:
                # Keep the freeze frame current: every re-confirmation
                # of an already-confirmed error refreshes the stored
                # context (the first confirm's snapshot alone would hide
                # how the failure evolved).
                self._stamp_freeze_frame(event, context)
                self._bump_seq(event)
        elif status == PASSED:
            event.counter = max(0, event.counter - event.pass_step)
        else:
            raise ConfigurationError(f"unknown status {status!r}")
        if not event.confirmed and event.counter >= event.threshold:
            event.confirmed = True
            event.occurrences += 1
            self._stamp_freeze_frame(event, context)
            self._bump_seq(event)
            self.trace.log(self._now(), "dem.confirmed", name,
                           dtc=event.dtc)
            obs.dlt(self._now(), obs.ERROR, self.node, "DEM", name,
                    "dem.confirmed", dtc=event.dtc,
                    severity_level=event.severity, seq=event.last_seq)
            for listener in self._listeners:
                listener(event, True)
        elif event.confirmed and event.counter <= 0:
            event.confirmed = False
            self._bump_seq(event)
            self.trace.log(self._now(), "dem.healed", name, dtc=event.dtc)
            obs.dlt(self._now(), obs.INFO, self.node, "DEM", name,
                    "dem.healed", dtc=event.dtc, seq=event.last_seq)
            for listener in self._listeners:
                listener(event, False)

    def _stamp_freeze_frame(self, event: ErrorEvent,
                            context: Optional[dict]) -> None:
        first_time = (event.freeze_frame or {}).get("first_time",
                                                    self._now())
        event.freeze_frame = dict(context or {}, time=self._now(),
                                  first_time=first_time)

    # ------------------------------------------------------------------
    def event(self, name: str) -> ErrorEvent:
        """Look up a registered event by name."""
        return self._events[name]

    def snapshot(self) -> dict[str, dict]:
        """Per-event debounce/confirmation state, for reports.

        Returns ``{event name: {dtc, severity, counter, confirmed,
        occurrences, seq, freeze_frame}}`` — the campaign runner's view
        of what the error manager saw during a cell.  ``seq`` is the
        manager-wide monotonic sequence number of the event's latest
        state change (confirm, heal, or freeze-frame refresh): it
        strictly increases across refreshes, so consecutive snapshots
        can be ordered even when the simulated timestamps coincide.
        """
        return {
            name: {
                "dtc": e.dtc,
                "severity": e.severity,
                "counter": e.counter,
                "confirmed": e.confirmed,
                "occurrences": e.occurrences,
                "seq": e.last_seq,
                "freeze_frame": dict(e.freeze_frame)
                if e.freeze_frame else None,
            }
            for name, e in sorted(self._events.items())
        }

    def confirmed_events(self) -> list[ErrorEvent]:
        """Events currently in the confirmed (debounced-failed) state."""
        return [e for e in self._events.values() if e.confirmed]

    def stored_dtcs(self) -> list[int]:
        """DTCs with at least one confirmed occurrence (diagnostic
        memory: survives healing until cleared)."""
        return sorted(e.dtc for e in self._events.values()
                      if e.occurrences > 0)

    def clear_dtcs(self) -> int:
        """Diagnostic clear: resets occurrence memory; returns count."""
        cleared = 0
        for event in self._events.values():
            if event.occurrences > 0:
                cleared += 1
            event.occurrences = 0
            event.freeze_frame = None
        return cleared

    def __repr__(self) -> str:
        return (f"<ErrorManager {self.node} events={len(self._events)} "
                f"confirmed={len(self.confirmed_events())}>")
