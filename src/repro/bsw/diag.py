"""Diagnostics services (Figure 1's "Diagnostics" box).

A small UDS-flavoured service dispatcher backed by the error manager's
diagnostic memory:

* ``0x19`` read DTC information (confirmed and stored);
* ``0x14`` clear diagnostic information;
* ``0x22`` read data by identifier (freeze frames and live values).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.bsw.errors import ErrorManager

READ_DTC = 0x19
CLEAR_DTC = 0x14
READ_DATA = 0x22

NEGATIVE_RESPONSE = 0x7F
NRC_SERVICE_NOT_SUPPORTED = 0x11
NRC_REQUEST_OUT_OF_RANGE = 0x31


class DiagnosticServer:
    """Per-ECU diagnostic responder."""

    def __init__(self, error_manager: ErrorManager):
        self.dem = error_manager
        self._data_ids: dict[int, Callable[[], int]] = {}
        self.request_count = 0

    def publish_data(self, identifier: int,
                     reader: Callable[[], int]) -> None:
        """Expose a live value under a data identifier (0x22)."""
        if identifier in self._data_ids:
            raise ConfigurationError(
                f"data identifier {identifier:#x} already published")
        self._data_ids[identifier] = reader

    def handle(self, service: int, *args) -> dict:
        """Dispatch one request; returns a response dict.

        Positive responses carry ``service + 0x40``; negative responses
        mirror the UDS 0x7F format.
        """
        self.request_count += 1
        if service == READ_DTC:
            return {
                "service": service + 0x40,
                "dtcs": self.dem.stored_dtcs(),
                "confirmed": sorted(e.dtc
                                    for e in self.dem.confirmed_events()),
            }
        if service == CLEAR_DTC:
            cleared = self.dem.clear_dtcs()
            return {"service": service + 0x40, "cleared": cleared}
        if service == READ_DATA:
            if not args:
                return self._negative(service, NRC_REQUEST_OUT_OF_RANGE)
            identifier = args[0]
            reader = self._data_ids.get(identifier)
            if reader is None:
                return self._negative(service, NRC_REQUEST_OUT_OF_RANGE)
            return {"service": service + 0x40, "identifier": identifier,
                    "value": reader()}
        return self._negative(service, NRC_SERVICE_NOT_SUPPORTED)

    @staticmethod
    def _negative(service: int, nrc: int) -> dict:
        return {"service": NEGATIVE_RESPONSE, "rejected": service,
                "nrc": nrc}

    def freeze_frame(self, event_name: str) -> Optional[dict]:
        """Freeze frame captured when the event last confirmed."""
        return self.dem.event(event_name).freeze_frame

    def __repr__(self) -> str:
        return (f"<DiagnosticServer {self.dem.node} "
                f"data_ids={len(self._data_ids)}>")
