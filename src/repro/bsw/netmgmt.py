"""Network management: coordinated bus sleep/wake.

Figure 1's "Network Management" box.  Simplified direct NM: every awake
node broadcasts an alive message each NM cycle; a node that wants to
sleep stops requesting the network and keeps listening — the *bus*
sleeps only when no alive message has been heard for a timeout (every
node released the network).  Any node can wake the cluster again.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

AWAKE = "awake"
READY_TO_SLEEP = "ready-to-sleep"
BUS_SLEEP = "bus-sleep"


class NmNode:
    """Per-node network management state machine."""

    def __init__(self, cluster: "NmCluster", name: str):
        self.cluster = cluster
        self.name = name
        self.state = AWAKE
        self.network_requested = True

    def release_network(self) -> None:
        """Application no longer needs the bus."""
        self.network_requested = False
        if self.state == AWAKE:
            self.state = READY_TO_SLEEP

    def request_network(self) -> None:
        """Application needs the bus; wakes the whole cluster."""
        self.network_requested = True
        self.cluster._wake(self.name)

    def __repr__(self) -> str:
        return f"<NmNode {self.name} {self.state}>"


class NmCluster:
    """The shared NM view of one bus."""

    def __init__(self, sim: Simulator, node_names: list[str],
                 nm_cycle: int, sleep_timeout: int,
                 trace: Optional[Trace] = None, name: str = "NM"):
        if len(node_names) != len(set(node_names)) or not node_names:
            raise ConfigurationError("need unique, non-empty node names")
        if nm_cycle <= 0 or sleep_timeout <= nm_cycle:
            raise ConfigurationError(
                "need nm_cycle > 0 and sleep_timeout > nm_cycle")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self.nm_cycle = nm_cycle
        self.sleep_timeout = sleep_timeout
        self.nodes = {n: NmNode(self, n) for n in node_names}
        self.bus_asleep = False
        self.alive_messages = 0
        self._last_alive = 0
        self.wake_count = 0
        self._tick()
        self._watch_sleep()

    def _tick(self) -> None:
        def fire():
            if not self.bus_asleep:
                for node in self.nodes.values():
                    if node.network_requested:
                        self.alive_messages += 1
                        self._last_alive = self.sim.now
            self.sim.schedule(self.nm_cycle, fire)

        self.sim.schedule(self.nm_cycle, fire)

    def _watch_sleep(self) -> None:
        def check():
            if (not self.bus_asleep
                    and self.sim.now - self._last_alive
                    >= self.sleep_timeout
                    and not any(n.network_requested
                                for n in self.nodes.values())):
                self.bus_asleep = True
                for node in self.nodes.values():
                    node.state = BUS_SLEEP
                self.trace.log(self.sim.now, "nm.bus_sleep", self.name)
            self.sim.schedule(self.nm_cycle, check)

        self.sim.schedule(self.nm_cycle, check)

    def _wake(self, requester: str) -> None:
        if self.bus_asleep:
            self.bus_asleep = False
            self.wake_count += 1
            self.trace.log(self.sim.now, "nm.wakeup", self.name,
                           requester=requester)
        for node in self.nodes.values():
            if node.network_requested:
                node.state = AWAKE
            elif node.state == BUS_SLEEP:
                node.state = READY_TO_SLEEP

    def node(self, name: str) -> NmNode:
        """Look up a node's NM state machine by name."""
        node = self.nodes.get(name)
        if node is None:
            raise ConfigurationError(f"{self.name}: unknown node {name!r}")
        return node

    def __repr__(self) -> str:
        state = "asleep" if self.bus_asleep else "awake"
        return f"<NmCluster {self.name} {state} nodes={len(self.nodes)}>"
