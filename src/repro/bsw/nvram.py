"""NVRAM manager: memory services with failure detection.

Models the "Memory Services" box of Figure 1 and the "memory failures"
error-handling use case: blocks are stored with a CRC and an optional
redundant copy; reads detect corruption, recover from the mirror when
possible, and report the failure to the error manager otherwise.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from repro.errors import ConfigurationError


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class NvBlock:
    """One NVRAM block: payload + CRC (+ optional mirror)."""

    def __init__(self, name: str, size: int, redundant: bool = False,
                 default: bytes = b""):
        if size <= 0:
            raise ConfigurationError(f"block {name}: size must be > 0")
        if len(default) > size:
            raise ConfigurationError(f"block {name}: default exceeds size")
        self.name = name
        self.size = size
        self.redundant = redundant
        self.default = default.ljust(size, b"\x00")
        self._primary = bytearray(self.default)
        self._primary_crc = _crc(self.default)
        self._mirror = bytearray(self.default) if redundant else None
        self._mirror_crc = _crc(self.default) if redundant else None
        self.write_count = 0

    def write(self, data: bytes) -> None:
        """Store data (padded to the block size) and refresh the CRC(s)."""
        if len(data) > self.size:
            raise ConfigurationError(
                f"block {self.name}: {len(data)} bytes exceed size "
                f"{self.size}")
        padded = data.ljust(self.size, b"\x00")
        self._primary = bytearray(padded)
        self._primary_crc = _crc(padded)
        if self.redundant:
            self._mirror = bytearray(padded)
            self._mirror_crc = _crc(padded)
        self.write_count += 1

    def corrupt(self, offset: int = 0, flip: int = 0xFF,
                mirror: bool = False) -> None:
        """Fault injection: flip bits in the stored image (not the CRC)."""
        target = self._mirror if mirror else self._primary
        if target is None:
            raise ConfigurationError(
                f"block {self.name}: no mirror to corrupt")
        if not 0 <= offset < self.size:
            raise ConfigurationError(f"block {self.name}: bad offset")
        target[offset] ^= flip

    def _primary_ok(self) -> bool:
        return _crc(bytes(self._primary)) == self._primary_crc

    def _mirror_ok(self) -> bool:
        return (self._mirror is not None
                and _crc(bytes(self._mirror)) == self._mirror_crc)


class NvramManager:
    """Block registry with read-time integrity checking."""

    def __init__(self, node: str,
                 on_failure: Optional[Callable[[str, str], None]] = None):
        """``on_failure(block_name, outcome)`` is called with outcome
        ``"recovered"`` (mirror saved the day) or ``"lost"`` (defaults
        restored) — typically wired to
        :meth:`repro.bsw.errors.ErrorManager.report`."""
        self.node = node
        self.on_failure = on_failure
        self._blocks: dict[str, NvBlock] = {}
        self.recoveries = 0
        self.losses = 0

    def define(self, name: str, size: int, redundant: bool = False,
               default: bytes = b"") -> NvBlock:
        """Declare a block; returns it for direct manipulation in tests."""
        if name in self._blocks:
            raise ConfigurationError(
                f"{self.node}: duplicate block {name!r}")
        block = NvBlock(name, size, redundant, default)
        self._blocks[name] = block
        return block

    def block(self, name: str) -> NvBlock:
        """Look up a block by name."""
        block = self._blocks.get(name)
        if block is None:
            raise ConfigurationError(f"{self.node}: unknown block {name!r}")
        return block

    def write(self, name: str, data: bytes) -> None:
        """Write a block through the manager."""
        self.block(name).write(data)

    def read(self, name: str) -> bytes:
        """Integrity-checked read: primary, else mirror (repairing the
        primary), else defaults."""
        block = self.block(name)
        if block._primary_ok():
            return bytes(block._primary)
        if block._mirror_ok():
            block._primary = bytearray(block._mirror)
            block._primary_crc = block._mirror_crc
            self.recoveries += 1
            if self.on_failure is not None:
                self.on_failure(name, "recovered")
            return bytes(block._primary)
        self.losses += 1
        block._primary = bytearray(block.default)
        block._primary_crc = _crc(block.default)
        if block.redundant:
            block._mirror = bytearray(block.default)
            block._mirror_crc = block._primary_crc
        if self.on_failure is not None:
            self.on_failure(name, "lost")
        return bytes(block.default)

    def __repr__(self) -> str:
        return f"<NvramManager {self.node} blocks={len(self._blocks)}>"
