"""Summaries of exported telemetry — the engine behind ``repro stats``.

Takes the files the exporters produce (Prometheus text, Chrome
trace-event JSON, JSONL event log), autodetects which is which, and
renders the operational one-look tables: top spans by cumulative time,
histogram percentiles, and the DLT error-event table.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.exporters import (events_from_jsonl, parse_prometheus_text,
                                 validate_chrome_trace)
from repro.obs.registry import Histogram, MetricsRegistry

PROM = "prometheus"
CHROME = "chrome-trace"
JSONL = "events-jsonl"


def sniff(text: str) -> str:
    """Classify an exported file by content, not by extension."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return CHROME
    first = stripped.splitlines()[0] if stripped else ""
    if first.startswith("# TYPE") or first.startswith("repro_"):
        return PROM
    if first.startswith("{") or (first and first[0] in "[{"):
        return JSONL
    if '"type"' in first:
        return JSONL
    raise ConfigurationError("unrecognized telemetry file format")


def load(text: str) -> tuple[str, object]:
    """Parse an exported file; returns ``(kind, parsed)``."""
    stripped = text.lstrip()
    if stripped.startswith("{") and "\n{" in stripped.strip():
        return JSONL, events_from_jsonl(text)
    if stripped.startswith("{"):
        parsed = json.loads(text)
        if "traceEvents" in parsed:
            return CHROME, parsed
        raise ConfigurationError(
            "JSON telemetry file lacks 'traceEvents'")
    kind = sniff(text)
    if kind == PROM:
        return PROM, parse_prometheus_text(text)
    return JSONL, events_from_jsonl(text)


# ----------------------------------------------------------------------
# Aggregations
# ----------------------------------------------------------------------
def top_spans(rows: list[dict], top: int = 10) -> list[dict]:
    """Aggregate span rows by name: count / cumulative / mean / max.

    Accepts either JSONL span events (``duration_ns``) or Chrome trace
    ``X`` events (``dur`` in microseconds).
    """
    totals: dict[str, dict] = {}
    for row in rows:
        if "duration_ns" in row:
            name, duration = row["name"], row["duration_ns"]
        elif row.get("ph") == "X":
            name, duration = row["name"], row["dur"] * 1000.0
        else:
            continue
        entry = totals.setdefault(name, {"count": 0, "total_ns": 0.0,
                                         "max_ns": 0.0})
        entry["count"] += 1
        entry["total_ns"] += duration
        entry["max_ns"] = max(entry["max_ns"], duration)
    ranked = sorted(totals.items(),
                    key=lambda item: (-item[1]["total_ns"], item[0]))
    return [{"name": name, "count": entry["count"],
             "total_ms": entry["total_ns"] / 1e6,
             "mean_us": entry["total_ns"] / entry["count"] / 1e3,
             "max_us": entry["max_ns"] / 1e3}
            for name, entry in ranked[:top]]


def histogram_rows(histograms: dict[str, dict]) -> list[dict]:
    """Percentile table rows from snapshot-shaped histogram payloads."""
    rows = []
    for name, payload in sorted(histograms.items()):
        if payload["count"] == 0:
            continue
        scratch = MetricsRegistry()
        histogram: Histogram = scratch.histogram(name, payload["buckets"])
        histogram.counts = list(payload["counts"])
        histogram.count = payload["count"]
        histogram.sum = payload["sum"]
        histogram.min = payload.get("min")
        histogram.max = payload.get("max")
        rows.append({
            "name": name, "count": payload["count"],
            "p50": histogram.percentile(0.50),
            "p90": histogram.percentile(0.90),
            "p99": histogram.percentile(0.99),
            "max": payload.get("max"),
        })
    return rows


def dlt_table(rows: list[dict]) -> list[dict]:
    """Error-event table: one row per (severity, app, context)."""
    grouped: dict[tuple, dict] = {}
    for row in rows:
        if row.get("type") not in (None, "dlt") and "severity" not in row:
            continue
        if "severity" not in row:
            continue
        key = (row["severity"], row.get("app_id", "?"),
               row.get("context_id", "?"))
        entry = grouped.setdefault(key, {"count": 0, "first_seq": None,
                                         "last_seq": None,
                                         "last_time": None})
        entry["count"] += 1
        seq = row.get("seq")
        if seq is not None:
            entry["first_seq"] = seq if entry["first_seq"] is None \
                else min(entry["first_seq"], seq)
            entry["last_seq"] = seq if entry["last_seq"] is None \
                else max(entry["last_seq"], seq)
        entry["last_time"] = row.get("timestamp", entry["last_time"])
    severity_rank = {"fatal": 0, "error": 1, "warn": 2, "info": 3,
                     "debug": 4}
    ordered = sorted(grouped.items(),
                     key=lambda item: (severity_rank.get(item[0][0], 9),
                                       item[0]))
    return [{"severity": severity, "app": app, "context": context,
             **entry}
            for (severity, app, context), entry in ordered]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _render_table(title: str, rows: list[dict],
                  columns: list[str]) -> list[str]:
    lines = [title]
    if not rows:
        lines.append("  (empty)")
        return lines
    widths = {col: max(len(col), *(len(_format_value(row.get(col)))
                                   for row in rows))
              for col in columns}
    lines.append("  " + "  ".join(col.ljust(widths[col])
                                  for col in columns))
    for row in rows:
        lines.append("  " + "  ".join(
            _format_value(row.get(col)).ljust(widths[col])
            for col in columns))
    return lines


def summarize_file(text: str, top: int = 10) -> str:
    """Render the summary for one exported telemetry file."""
    kind, parsed = load(text)
    lines: list[str] = []
    if kind == PROM:
        counters = [{"name": name, "value": value}
                    for name, value in sorted(parsed["counters"].items())]
        lines += _render_table("counters:", counters, ["name", "value"])
        lines.append("")
        lines += _render_table(
            "histogram percentiles:", histogram_rows(parsed["histograms"]),
            ["name", "count", "p50", "p90", "p99", "max"])
    elif kind == CHROME:
        problems = validate_chrome_trace(parsed)
        if problems:
            raise ConfigurationError(
                f"invalid Chrome trace: {problems[0]}")
        lines += _render_table(
            f"top {top} spans by cumulative time:",
            top_spans(parsed["traceEvents"], top),
            ["name", "count", "total_ms", "mean_us", "max_us"])
    else:  # JSONL
        events = parsed
        spans = [row for row in events if row.get("type") == "span"]
        dlt_rows = [row for row in events if row.get("type") == "dlt"]
        histograms = {row["name"]: row for row in events
                      if row.get("type") == "histogram"}
        lines += _render_table(
            f"top {top} spans by cumulative time:", top_spans(spans, top),
            ["name", "count", "total_ms", "mean_us", "max_us"])
        lines.append("")
        lines += _render_table(
            "histogram percentiles:", histogram_rows(histograms),
            ["name", "count", "p50", "p90", "p99", "max"])
        lines.append("")
        lines += _render_table(
            "DLT events:", dlt_table(dlt_rows),
            ["severity", "app", "context", "count", "first_seq",
             "last_seq"])
    return "\n".join(lines)


def summarize_paths(paths: list[str], top: int = 10) -> str:
    """Summaries for several exported files, labelled per file.

    Binary MTF mass-trace stores (:mod:`repro.meas.mtf`) are detected
    by magic and summarized from their chunk directory — no data block
    is read; the text formats are sniffed by content as before."""
    from repro.meas.mtf import is_mtf_file, summarize_mtf

    sections = []
    for path in paths:
        sections.append(f"== {path} ==")
        if is_mtf_file(path):
            sections.append(summarize_mtf(path))
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        sections.append(summarize_file(text, top))
    return "\n".join(sections)
