"""DLT-inspired structured log channel.

AUTOSAR's Diagnostic Log and Trace module gives every basic-software
event a severity, a timestamp and a (ECU, application, context) id
triple, so off-board tooling can reconstruct *what the error-handling
stack saw* without parsing free-form text.  :class:`DltChannel` is that
substrate for this codebase: the error manager, recovery orchestrator
and watchdog events of :mod:`repro.bsw` land here as structured
records, ordered by a channel-wide monotonic sequence number.

Records carry *simulated* timestamps (integer nanoseconds), so a
channel's content — unlike span wall-times — is fully deterministic and
participates in the telemetry digest via the ``dlt.<severity>``
counters maintained by :mod:`repro.obs`.

Two ingestion paths:

* **live** — :func:`repro.obs.dlt` is called at the emitting site
  (e.g. :meth:`repro.bsw.errors.ErrorManager.report` on confirm/heal);
* **post-hoc** — :meth:`DltChannel.harvest_trace` converts the BSW
  categories of an existing :class:`~repro.sim.trace.Trace` into
  records, for worlds that ran before telemetry was enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# DLT severity levels, most severe first.
FATAL = "fatal"
ERROR = "error"
WARN = "warn"
INFO = "info"
DEBUG = "debug"

SEVERITIES = (FATAL, ERROR, WARN, INFO, DEBUG)

#: Trace category (exact or dotted prefix) -> severity, for harvesting.
#: The inventory mirrors the campaign runner's detector categories plus
#: the DEM/recovery lifecycle events.
TRACE_SEVERITY = (
    ("wdg.violation", FATAL),
    ("task.budget_overrun", ERROR),
    ("dem.confirmed", ERROR),
    ("dem.healed", INFO),
    ("e2e", ERROR),
    ("com.timeout", ERROR),
    ("recovery.escalate", WARN),
    ("recovery.deescalate", INFO),
    ("recovery", WARN),
    ("mode", INFO),
)


@dataclass(frozen=True)
class DltRecord:
    """One structured log entry."""

    seq: int            # channel-wide monotonic sequence number
    timestamp: int      # simulated time, integer nanoseconds
    severity: str
    ecu: str            # emitting node ("SYS" when unknown)
    app_id: str         # emitting module ("DEM", "WDG", "RECOVERY", ...)
    context_id: str     # entity the event is about (event/task/signal)
    message: str
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"seq": self.seq, "timestamp": self.timestamp,
                "severity": self.severity, "ecu": self.ecu,
                "app_id": self.app_id, "context_id": self.context_id,
                "message": self.message, "payload": dict(self.payload)}


def severity_for_category(category: str) -> str:
    """Severity a trace category maps to (default :data:`WARN`)."""
    for prefix, severity in TRACE_SEVERITY:
        if category == prefix or category.startswith(prefix + "."):
            return severity
    return WARN


class DltChannel:
    """Ordered store of :class:`DltRecord` entries."""

    def __init__(self):
        self.records: list[DltRecord] = []
        self._seq = 0

    def log(self, timestamp: int, severity: str, ecu: str, app_id: str,
            context_id: str, message: str, **payload) -> DltRecord:
        """Append one record; returns it (with its sequence number)."""
        if severity not in SEVERITIES:
            severity = WARN
        self._seq += 1
        record = DltRecord(self._seq, timestamp, severity, ecu, app_id,
                           context_id, message, payload)
        self.records.append(record)
        return record

    def harvest_trace(self, trace, node: str = "SYS") -> int:
        """Convert the BSW-relevant records of a simulation trace into
        DLT records (post-hoc ingestion); returns the count added.

        ``trace`` is any iterable of :class:`~repro.sim.trace.Record`
        objects — typically a :class:`~repro.sim.trace.Trace`.
        """
        added = 0
        for rec in trace:
            prefix = rec.category.split(".", 1)[0]
            if prefix not in ("dem", "wdg", "recovery", "mode", "e2e",
                              "com", "task"):
                continue
            if prefix == "task" and rec.category != "task.budget_overrun":
                continue
            if prefix == "com" and rec.category != "com.timeout":
                continue
            self.log(rec.time, severity_for_category(rec.category), node,
                     prefix.upper(), rec.subject, rec.category, **rec.data)
            added += 1
        return added

    # -- queries -------------------------------------------------------
    def by_severity(self, severity: str) -> list[DltRecord]:
        return [r for r in self.records if r.severity == severity]

    def severity_counts(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for record in self.records:
            counts[record.severity] += 1
        return {severity: n for severity, n in counts.items() if n}

    # -- snapshot / merge (execution-engine plumbing) ------------------
    def snapshot(self) -> list[dict]:
        return [record.to_dict() for record in self.records]

    def merge(self, rows: list[dict]) -> None:
        """Append records from a captured snapshot, re-sequencing them
        into this channel's monotonic order (callers merge in plan
        order, so the result is worker-count invariant)."""
        for row in rows:
            self._seq += 1
            self.records.append(DltRecord(
                self._seq, row["timestamp"], row["severity"], row["ecu"],
                row["app_id"], row["context_id"], row["message"],
                dict(row.get("payload", {}))))

    def clear(self) -> None:
        self.records.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"<DltChannel {len(self.records)} records>"
