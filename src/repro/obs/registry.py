"""Process-local metrics registry: counters, gauges, histograms.

The registry is the quantitative half of :mod:`repro.obs`.  Three
instrument kinds cover the paper's observation needs (resource
consumption measurements backing vertical assumptions, error counts
feeding diagnostics):

* :class:`Counter` — monotonically increasing totals (events executed,
  frames delivered, faults detected);
* :class:`Gauge` — last-written value (current sim time, queue depth);
* :class:`Histogram` — fixed-bucket distributions with percentile
  estimation (latencies, tightness ratios).

Two properties drive the design:

* **Determinism** — snapshots merge associatively (counters sum,
  histogram buckets add, gauges take the last write in merge order), so
  telemetry merged in plan order is invariant under the worker count,
  exactly like execution results.  Instruments that record wall-clock
  quantities are created with ``deterministic=False`` and excluded from
  :meth:`MetricsRegistry.digest`, which therefore stays byte-identical
  across ``--jobs`` levels.
* **Near-zero overhead when disabled** — callers go through the
  module-level helpers of :mod:`repro.obs`, which bail on a single flag
  check before any registry object is touched.

Mutation is guarded by one registry-wide lock, so instruments may be
updated from multiple threads; the usual producers (simulation worker
processes) are single-threaded and pay the uncontended-lock cost only
while telemetry is enabled.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Optional, Sequence

from repro.errors import ConfigurationError

#: Default histogram buckets: log-spaced nanosecond durations from 1 µs
#: to 10 s (upper bounds; an implicit +Inf bucket catches the rest).
DEFAULT_NS_BUCKETS = (
    1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
    1_000_000_000, 10_000_000_000,
)

#: Buckets for dimensionless ratios (e.g. analytic tightness).
RATIO_BUCKETS = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """Last-written value.  Merge semantics: the later write (in merge
    order, which the execution engine fixes to plan order) wins."""

    __slots__ = ("name", "value", "deterministic", "_lock")

    def __init__(self, name: str, lock: threading.Lock,
                 deterministic: bool = True):
        self.name = name
        self.value: Optional[float] = None
        self.deterministic = deterministic
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket.  Percentiles interpolate
    linearly within the winning bucket (the overflow bucket reports the
    observed maximum), which is the usual fixed-bucket trade-off:
    cheap, mergeable, and accurate to a bucket width.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max",
                 "deterministic", "_lock")

    def __init__(self, name: str, lock: threading.Lock,
                 buckets: Sequence = DEFAULT_NS_BUCKETS,
                 deterministic: bool = True):
        bounds = tuple(buckets)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ConfigurationError(
                f"histogram {name}: buckets must be ascending and "
                f"non-empty, got {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.sum = 0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.deterministic = deterministic
        self._lock = lock

    def observe(self, value) -> None:
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``q`` in [0, 1]) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        estimate = self.max
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if i == len(self.bounds):
                    return self.max  # overflow bucket: no upper bound
                lower = self.bounds[i - 1] if i > 0 else (
                    self.min if self.min is not None else 0)
                lower = min(lower, self.bounds[i])
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (self.bounds[i] - lower)
                break
            cumulative += bucket_count
        # The true value cannot lie outside the observed extremes.
        if estimate is not None:
            if self.min is not None:
                estimate = max(estimate, self.min)
            if self.max is not None:
                estimate = min(estimate, self.max)
        return estimate


class MetricsRegistry:
    """One process-local family of named instruments.

    Instrument names are dotted strings (``"can.frames_delivered"``).
    The first creation of a name fixes its kind and, for histograms,
    its buckets; later lookups must agree (mismatches raise, because a
    silent bucket mismatch would corrupt every merge downstream).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument factories ------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_fresh(name, self._counters)
            instrument = self._counters[name] = Counter(name, self._lock)
        return instrument

    def gauge(self, name: str, deterministic: bool = True) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_fresh(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name, self._lock,
                                                    deterministic)
        return instrument

    def histogram(self, name: str,
                  buckets: Sequence = DEFAULT_NS_BUCKETS,
                  deterministic: bool = True) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_fresh(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name, self._lock, buckets, deterministic)
        elif instrument.bounds != tuple(buckets):
            raise ConfigurationError(
                f"histogram {name}: bucket mismatch "
                f"({instrument.bounds} vs {tuple(buckets)})")
        return instrument

    def _check_fresh(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ConfigurationError(
                    f"instrument {name!r} already exists with a "
                    f"different kind")

    # -- snapshot / merge / digest -------------------------------------
    def snapshot(self) -> dict:
        """All instruments as one JSON-able dict (sorted names)."""
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in sorted(self._counters.items())},
                "gauges": {name: {"value": g.value,
                                  "deterministic": g.deterministic}
                           for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: {
                        "buckets": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                        "min": h.min,
                        "max": h.max,
                        "deterministic": h.deterministic,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Callers are responsible for merge *order* (the execution engine
        merges in plan order); the operations themselves are the
        associative ones described in the module docstring.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, payload in snapshot.get("gauges", {}).items():
            if payload["value"] is not None:
                self.gauge(name, payload["deterministic"]).set(
                    payload["value"])
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, payload["buckets"],
                                       payload["deterministic"])
            with self._lock:
                for i, n in enumerate(payload["counts"]):
                    histogram.counts[i] += n
                histogram.sum += payload["sum"]
                histogram.count += payload["count"]
                for attr, pick in (("min", min), ("max", max)):
                    incoming = payload[attr]
                    if incoming is None:
                        continue
                    current = getattr(histogram, attr)
                    setattr(histogram, attr,
                            incoming if current is None
                            else pick(current, incoming))

    def deterministic_view(self) -> dict:
        """The digest-relevant subset of :meth:`snapshot`: counters are
        always deterministic; gauges and histograms only when flagged so
        (wall-clock instruments are excluded here, which is what keeps
        the digest invariant across runs and ``--jobs`` levels)."""
        snap = self.snapshot()
        return {
            "counters": snap["counters"],
            "gauges": {name: payload["value"]
                       for name, payload in snap["gauges"].items()
                       if payload["deterministic"]},
            "histograms": {
                name: {key: payload[key]
                       for key in ("buckets", "counts", "sum", "count",
                                   "min", "max")}
                for name, payload in snap["histograms"].items()
                if payload["deterministic"]
            },
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON deterministic view."""
        canonical = json.dumps(self.deterministic_view(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")
