"""Span-based profiling: timed regions with nesting.

A *span* brackets one region of interest — a simulated system run, an
analysis fixpoint, an execution-engine chunk — and records its
wall-clock start and duration together with a nesting depth and a
per-recorder sequence number.  Spans are the qualitative half of
:mod:`repro.obs` (the metrics registry is the quantitative half): they
feed the Chrome trace-event export that makes a campaign's timeline
loadable in ``chrome://tracing`` / Perfetto.

Wall-clock readings differ run to run, so spans never enter the
telemetry digest directly; instead every finished span increments the
deterministic counter ``span.<name>`` and feeds the *non*-deterministic
histogram ``span.<name>.wall_ns`` in its owning registry.  The span
*sequence* (names, nesting, per-item order) is deterministic because
the execution engine merges worker telemetry in plan order.

The recorder tracks nesting with a plain stack, which is correct for
the single-threaded simulation workers that produce nearly all spans;
concurrent recorders should be process-separated (the execution engine
already does this via per-chunk capture).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    category: str
    start_ns: int       # perf_counter_ns at entry (wall clock)
    duration_ns: int
    depth: int          # nesting level at entry (0 = top level)
    seq: int            # completion order within the recorder
    pid: int
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "category": self.category,
                "start_ns": self.start_ns,
                "duration_ns": self.duration_ns, "depth": self.depth,
                "seq": self.seq, "pid": self.pid, "args": dict(self.args)}


class SpanRecorder:
    """Collects finished spans and keeps the live nesting stack."""

    def __init__(self):
        self.records: list[SpanRecord] = []
        self._stack: list[str] = []
        self._seq = 0

    @property
    def depth(self) -> int:
        return len(self._stack)

    def add(self, record: SpanRecord) -> None:
        self.records.append(record)

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def snapshot(self) -> list[dict]:
        return [record.to_dict() for record in self.records]

    def merge(self, spans: list[dict]) -> None:
        """Append spans from a captured snapshot (plan-order merging is
        the caller's responsibility, as with metrics)."""
        for row in spans:
            self.records.append(SpanRecord(
                row["name"], row["category"], row["start_ns"],
                row["duration_ns"], row["depth"], self.next_seq(),
                row["pid"], dict(row.get("args", {}))))

    def clear(self) -> None:
        self.records.clear()
        self._stack.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"<SpanRecorder {len(self.records)} spans>"


class Span:
    """Context manager measuring one region.  Obtained via
    :func:`repro.obs.span`, never constructed directly in hot paths —
    the factory returns a shared no-op when telemetry is disabled."""

    __slots__ = ("name", "category", "args", "recorder", "registry",
                 "_start", "_depth", "_pid")

    def __init__(self, name: str, category: str, args: dict,
                 recorder: SpanRecorder, registry: MetricsRegistry,
                 pid: int):
        self.name = name
        self.category = category
        self.args = args
        self.recorder = recorder
        self.registry = registry
        self._pid = pid
        self._start = 0
        self._depth = 0

    def __enter__(self) -> "Span":
        self._depth = self.recorder.depth
        self.recorder._stack.append(self.name)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter_ns() - self._start
        self.recorder._stack.pop()
        self.recorder.add(SpanRecord(
            self.name, self.category, self._start, duration, self._depth,
            self.recorder.next_seq(), self._pid, self.args))
        self.registry.counter(f"span.{self.name}").inc()
        self.registry.histogram(f"span.{self.name}.wall_ns",
                                deterministic=False).observe(duration)
        return False


class NullSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpan()
