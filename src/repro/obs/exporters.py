"""Telemetry exporters: Prometheus text, Chrome trace-event JSON, JSONL.

Three formats, three audiences:

* :func:`to_prometheus_text` — the scrape-style metrics dump
  (``--metrics``): counters, gauges and histograms with cumulative
  ``_bucket{le=...}`` lines, parseable back by
  :func:`parse_prometheus_text` (exercised by the round-trip tests and
  ``repro stats``);
* :func:`to_chrome_trace` — span timelines plus DLT instant events as a
  Trace Event Format object (``--trace-out``), loadable in
  ``chrome://tracing`` or Perfetto;
* :func:`events_to_jsonl` — the flat machine-readable event log
  (``--events``): one JSON object per line covering every instrument,
  span and DLT record.

All exporters emit sorted, canonically-separated output, so identical
telemetry produces identical bytes.
"""

from __future__ import annotations

import json
import math
from typing import Optional

from repro.errors import ConfigurationError

_PROM_PREFIX = "repro_"

#: Quantiles emitted per histogram (reconstructed by interpolation).
_QUANTILES = ("0.5", "0.9", "0.99")


def _histogram_percentile(payload: dict, quantile: float):
    """Percentile of a snapshot-shaped histogram payload, via the same
    bucket interpolation ``repro stats`` uses for its tables."""
    from repro.obs.registry import MetricsRegistry

    scratch = MetricsRegistry()
    histogram = scratch.histogram("scratch", payload["buckets"])
    histogram.counts = list(payload["counts"])
    histogram.count = payload["count"]
    histogram.sum = payload["sum"]
    histogram.min = payload.get("min")
    histogram.max = payload.get("max")
    return histogram.percentile(quantile)


def _prom_name(name: str) -> str:
    """Prometheus metric name: dots and dashes become underscores."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return _PROM_PREFIX + cleaned


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus_text(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, payload in snapshot.get("gauges", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(payload['value'])}")
    for name, payload in snapshot.get("histograms", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(payload["buckets"], payload["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {payload["count"]}')
        if payload["count"]:
            for quantile in _QUANTILES:
                value = _histogram_percentile(payload, float(quantile))
                lines.append(f'{metric}{{quantile="{quantile}"}} '
                             f"{_prom_value(value)}")
        lines.append(f"{metric}_sum {_prom_value(payload['sum'])}")
        lines.append(f"{metric}_count {payload['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict:
    """Parse :func:`to_prometheus_text` output back into a snapshot-
    shaped dict (used by the round-trip tests and ``repro stats``).

    Only the subset this module emits is understood; unknown lines
    raise, because silently skipping them would make the round-trip
    test vacuous.
    """
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    types: dict[str, str] = {}

    def number(token: str):
        value = float(token)
        return int(value) if value.is_integer() else value

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            __, __, metric, kind = line.split()
            types[metric] = kind
            if kind == "histogram":
                histograms[metric] = {"buckets": [], "counts": [],
                                      "sum": 0, "count": 0,
                                      "min": None, "max": None,
                                      "deterministic": True}
            continue
        if line.startswith("#"):
            continue
        name, __, value_token = line.rpartition(" ")
        if "{" in name:
            metric, __, label = name.partition("{")
            token = label.split('"')[1]
            if metric.endswith("_bucket"):
                metric = metric[:-len("_bucket")]
                if token != "+Inf":
                    histograms[metric]["buckets"].append(number(token))
                    histograms[metric]["counts"].append(
                        number(value_token))
            elif label.startswith("quantile=") and metric in histograms:
                histograms[metric].setdefault("quantiles", {})[token] = (
                    None if value_token == "NaN"
                    else number(value_token))
            else:
                raise ConfigurationError(
                    f"unparseable metrics line: {line!r}")
            continue
        if name.endswith("_sum") and name[:-4] in histograms:
            histograms[name[:-4]]["sum"] = number(value_token)
        elif name.endswith("_count") and name[:-6] in histograms:
            histograms[name[:-6]]["count"] = number(value_token)
        elif types.get(name) == "counter":
            counters[name] = number(value_token)
        elif types.get(name) == "gauge":
            token = number(value_token) if value_token != "NaN" else None
            gauges[name] = {"value": token, "deterministic": True}
        else:
            raise ConfigurationError(
                f"unparseable metrics line: {line!r}")
    for payload in histograms.values():
        # De-cumulate the bucket counts back to per-bucket form.
        counts = payload["counts"]
        payload["counts"] = [counts[0]] + [
            b - a for a, b in zip(counts, counts[1:])] if counts else []
        payload["counts"].append(payload["count"] - (counts[-1]
                                                     if counts else 0))
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def to_chrome_trace(spans: list[dict], dlt: Optional[list[dict]] = None,
                    label: str = "repro") -> dict:
    """Build a Trace Event Format object from span and DLT snapshots.

    Span timestamps are rebased so the earliest span starts at 0 µs;
    every distinct pid becomes a named process row, nested spans stack
    naturally because complete (``"X"``) events nest by time. DLT
    records become instant (``"i"``) events on a synthetic ``dlt``
    thread, placed by *record order* on a microsecond grid (their
    simulated timestamps live in ``args.sim_time_ns`` — wall and
    simulated clocks are not commensurable, so no attempt is made to
    interleave them with spans by time).
    """
    events: list[dict] = []
    base = min((row["start_ns"] for row in spans), default=0)
    pids = sorted({row["pid"] for row in spans})
    for pid in pids:
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"{label} worker {pid}"}})
    for row in spans:
        events.append({
            "ph": "X", "name": row["name"], "cat": row["category"],
            "pid": row["pid"], "tid": 0,
            "ts": (row["start_ns"] - base) / 1000.0,
            "dur": row["duration_ns"] / 1000.0,
            "args": dict(row.get("args", {}), depth=row["depth"],
                         seq=row["seq"]),
        })
    for index, row in enumerate(dlt or []):
        events.append({
            "ph": "i", "name": f'{row["app_id"]}:{row["context_id"]}',
            "cat": f'dlt.{row["severity"]}', "pid": 0, "tid": 0,
            "ts": float(index), "s": "g",
            "args": dict(row.get("payload", {}),
                         severity=row["severity"], seq=row["seq"],
                         sim_time_ns=row["timestamp"],
                         message=row["message"]),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"producer": label}}


def validate_chrome_trace(obj) -> list[str]:
    """Minimal schema check for a Trace Event Format object; returns a
    list of problems (empty means loadable by ``chrome://tracing``)."""
    problems = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' list"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("ph", "name", "pid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if event.get("ph") in ("X", "i", "B", "E"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or math.isnan(ts):
                problems.append(f"{where}: non-numeric ts")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur")
    return problems


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def events_to_jsonl(snapshot: dict, spans: list[dict],
                    dlt: list[dict]) -> str:
    """Flatten all telemetry into one JSON object per line."""
    lines = []

    def emit(kind: str, body: dict) -> None:
        lines.append(json.dumps(dict({"type": kind}, **body),
                                sort_keys=True, separators=(",", ":")))

    for name, value in snapshot.get("counters", {}).items():
        emit("counter", {"name": name, "value": value})
    for name, payload in snapshot.get("gauges", {}).items():
        emit("gauge", {"name": name, "value": payload["value"]})
    for name, payload in snapshot.get("histograms", {}).items():
        emit("histogram", dict(payload, name=name))
    for row in spans:
        emit("span", row)
    for row in dlt:
        emit("dlt", row)
    return "\n".join(lines) + "\n"


def events_from_jsonl(text: str) -> list[dict]:
    """Parse a JSONL event log back into its event dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]
