"""``repro.obs`` — DLT-style telemetry: metrics, spans, exportable traces.

The paper's basic-software inventory includes error handling and
diagnostics services, and its contract methodology rests on *observing*
resource consumption; this package is that observation substrate for
the whole stack.  Four pieces:

* :mod:`repro.obs.registry` — process-local counters / gauges /
  fixed-bucket histograms with deterministic merge and digest;
* :mod:`repro.obs.spans` — context-manager/decorator profiling spans;
* :mod:`repro.obs.dlt` — the structured log channel for BSW
  error/recovery/watchdog events;
* :mod:`repro.obs.exporters` — Prometheus text, Chrome trace-event
  JSON (``chrome://tracing`` / Perfetto) and JSONL event-log output.

Telemetry is **disabled by default** and every instrumentation helper
bails on one module-flag check, so the instrumented hot paths (sim
kernel, CAN/FlexRay, analysis fixpoints, verify oracle, exec pool) pay
near-zero overhead until someone asks to measure (``repro verify
--metrics``, ``obs.enable()``, or a worker-side capture).

Determinism contract: worker telemetry captured by
:func:`capture` is merged by :mod:`repro.exec` **in plan order**, and
:func:`digest` covers only deterministic instruments (sim-time
quantities, counts — never wall clocks), so the merged telemetry of a
``--jobs N`` run is byte-identical to the ``--jobs 1`` run, exactly
like execution results.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Optional, Sequence

from repro.obs.dlt import (DEBUG, DltChannel, DltRecord, ERROR, FATAL,
                           INFO, SEVERITIES, WARN, severity_for_category)
from repro.obs.exporters import (events_from_jsonl, events_to_jsonl,
                                 parse_prometheus_text, to_chrome_trace,
                                 to_prometheus_text, validate_chrome_trace)
from repro.obs.registry import (Counter, DEFAULT_NS_BUCKETS, Gauge,
                                Histogram, MetricsRegistry, RATIO_BUCKETS)
from repro.obs.spans import NULL_SPAN, Span, SpanRecord, SpanRecorder

__all__ = [
    "enable", "disable", "enabled",
    "count", "gauge_set", "observe", "span", "traced", "dlt",
    "harvest_trace",
    "capture", "Telemetry", "merge_snapshot",
    "snapshot", "digest", "reset",
    "registry", "spans", "dlt_channel",
    "write_prometheus", "write_chrome_trace", "write_events_jsonl",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_NS_BUCKETS", "RATIO_BUCKETS",
    "SpanRecorder", "SpanRecord", "Span", "NULL_SPAN",
    "DltChannel", "DltRecord", "SEVERITIES",
    "FATAL", "ERROR", "WARN", "INFO", "DEBUG",
    "severity_for_category",
    "to_prometheus_text", "parse_prometheus_text",
    "to_chrome_trace", "validate_chrome_trace",
    "events_to_jsonl", "events_from_jsonl",
]


class _State:
    """One telemetry scope: registry + span recorder + DLT channel."""

    __slots__ = ("registry", "spans", "dlt")

    def __init__(self):
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder()
        self.dlt = DltChannel()


_state = _State()
#: The one flag every instrumentation helper checks first.  Module
#: attribute on purpose: hot call sites may read ``obs._enabled``
#: directly to skip even the helper call.
_enabled = False


def enable() -> None:
    """Turn instrumentation on (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off (idempotent); recorded data is kept."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


# ----------------------------------------------------------------------
# Instrumentation helpers (the only API hot paths should use)
# ----------------------------------------------------------------------
def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` (no-op while disabled)."""
    if _enabled:
        _state.registry.counter(name).inc(n)


def gauge_set(name: str, value, deterministic: bool = True) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if _enabled:
        _state.registry.gauge(name, deterministic).set(value)


def observe(name: str, value,
            buckets: Sequence = DEFAULT_NS_BUCKETS,
            deterministic: bool = True) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    if _enabled:
        _state.registry.histogram(name, buckets,
                                  deterministic).observe(value)


def span(name: str, category: str = "span", **args):
    """Context manager timing one region; a shared no-op when disabled."""
    if not _enabled:
        return NULL_SPAN
    return Span(name, category, args, _state.spans, _state.registry,
                os.getpid())


def traced(name: Optional[str] = None, category: str = "span"):
    """Decorator form of :func:`span` (span name defaults to the
    function's qualified name)."""
    def decorate(function):
        import functools
        span_name = name if name is not None else function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return function(*args, **kwargs)
            with span(span_name, category):
                return function(*args, **kwargs)
        return wrapper
    return decorate


def dlt(timestamp: int, severity: str, ecu: str, app_id: str,
        context_id: str, message: str, **payload) -> None:
    """Append a DLT record (no-op while disabled).  Also bumps the
    deterministic ``dlt.<severity>`` counter so DLT volume participates
    in the telemetry digest."""
    if _enabled:
        _state.dlt.log(timestamp, severity, ecu, app_id, context_id,
                       message, **payload)
        _state.registry.counter(f"dlt.{severity}").inc()


def harvest_trace(trace, node: str = "SYS") -> int:
    """Post-hoc DLT ingestion of a simulation trace's BSW events (no-op
    while disabled); returns the number of records added.  The harvested
    records bump the ``dlt.<severity>`` counters the same way live
    :func:`dlt` emission does, so both paths feed the digest equally."""
    if not _enabled:
        return 0
    before = len(_state.dlt)
    added = _state.dlt.harvest_trace(trace, node)
    for record in _state.dlt.records[before:]:
        _state.registry.counter(f"dlt.{record.severity}").inc()
    return added


# ----------------------------------------------------------------------
# Capture / merge (execution-engine plumbing)
# ----------------------------------------------------------------------
class Telemetry:
    """Handle to a captured scope; valid after the ``with`` block."""

    def __init__(self, state: _State):
        self._captured = state

    def snapshot(self) -> dict:
        """The scope's full telemetry as one JSON-able dict."""
        return {
            "metrics": self._captured.registry.snapshot(),
            "spans": self._captured.spans.snapshot(),
            "dlt": self._captured.dlt.snapshot(),
        }


@contextmanager
def capture():
    """Run the body against a fresh telemetry scope, enabled.

    The ambient scope (and flag) is restored afterwards and is *not*
    polluted: merging the captured snapshot back — in whatever order
    the caller fixes — is the caller's decision.  This is how the
    execution engine isolates per-chunk telemetry identically whether
    the chunk runs in-process (``jobs=1``) or in a worker process.
    """
    global _state, _enabled
    previous_state, previous_enabled = _state, _enabled
    fresh = _State()
    _state, _enabled = fresh, True
    try:
        yield Telemetry(fresh)
    finally:
        _state, _enabled = previous_state, previous_enabled


def merge_snapshot(snapshot: dict) -> None:
    """Fold a captured snapshot into the ambient scope.  Merge order is
    the caller's contract (the execution engine uses plan order)."""
    _state.registry.merge(snapshot.get("metrics", {}))
    _state.spans.merge(snapshot.get("spans", []))
    _state.dlt.merge(snapshot.get("dlt", []))


# ----------------------------------------------------------------------
# Ambient-scope access and export
# ----------------------------------------------------------------------
def registry() -> MetricsRegistry:
    return _state.registry


def spans() -> SpanRecorder:
    return _state.spans


def dlt_channel() -> DltChannel:
    return _state.dlt


def snapshot() -> dict:
    return {"metrics": _state.registry.snapshot(),
            "spans": _state.spans.snapshot(),
            "dlt": _state.dlt.snapshot()}


def digest() -> str:
    """Digest of the ambient scope's deterministic telemetry."""
    return _state.registry.digest()


def reset() -> None:
    """Drop all ambient telemetry (flag state is unchanged)."""
    _state.registry.reset()
    _state.spans.clear()
    _state.dlt.clear()


def write_prometheus(path) -> str:
    """Write the ambient metrics as Prometheus text; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus_text(_state.registry.snapshot()))
    return os.fspath(path)


def write_chrome_trace(path) -> str:
    """Write ambient spans + DLT as Chrome trace-event JSON."""
    trace = to_chrome_trace(_state.spans.snapshot(),
                            _state.dlt.snapshot())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return os.fspath(path)


def write_events_jsonl(path) -> str:
    """Write the ambient telemetry as a JSONL event log."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(_state.registry.snapshot(),
                                     _state.spans.snapshot(),
                                     _state.dlt.snapshot()))
    return os.fspath(path)
