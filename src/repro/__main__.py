"""Command-line entry point: ``python -m repro
{info,selftest,campaign,verify,fuzz,resilience,model,meas,stats}``.

``info`` prints the package inventory; ``selftest`` runs a miniature
end-to-end scenario (component app -> RTE deployment over CAN -> timing
analysis cross-check) and exits non-zero on any discrepancy — a quick
installation sanity check.  ``campaign`` runs the reference fault
campaign (all five fault kinds against a protected speed link) and
exits non-zero when a fault goes undetected, corrupts application data,
or fails to recover; ``campaign --smoke`` runs a single cell for CI.
``fuzz`` runs the coverage-guided differential fuzzer: mutate generated
systems toward the analysis edges, shrink every failure to a minimal
counterexample, and optionally persist it to the regression corpus
(``--corpus-dir``); exits non-zero only when a failure resists
shrinking.  ``fuzz --until-dry K`` keeps going until K consecutive
rounds admit no new coverage token.  ``resilience`` injects the
standard bus-/ECU-level fault scenarios into seeded random systems and
checks every one is detected within bound, contained, and recovered.

``model`` works with the versioned system exchange format
(:mod:`repro.model`): validate documents, print deterministic digests,
convert legacy corpus dicts, list/validate/run the bundled scenario
library, and compile every model into the requirement-traced pytest
suite under ``tests/generated/`` (``model testgen``; ``--check`` is
the CI drift gate over its SHA-256 sync manifest).  ``verify``, ``resilience`` and ``fuzz`` accept ``--model
PATH|NAME`` (repeatable) to run explicit model documents — or bundled
scenarios by name — instead of seeded random systems.

``campaign``, ``verify`` and ``fuzz`` accept the execution-engine flags
``--jobs N`` (process-pool fan-out; any N prints the identical report
digest), ``--checkpoint PATH`` (JSONL journal of per-chunk results),
``--resume`` (skip journaled chunks after an interrupted run) and
``--progress`` (live rate/ETA lines on stderr) — plus the telemetry
flags ``--metrics PATH`` (Prometheus text), ``--trace-out PATH``
(Chrome trace-event JSON for ``chrome://tracing`` / Perfetto) and
``--events PATH`` (JSONL event log).  ``stats`` summarizes any of those
exported files: top spans by cumulative time, histogram percentiles,
and the DLT error-event table.

``meas`` is the measurement & calibration plane (:mod:`repro.meas`):
print the A2L-style registry generated from a model, run cyclic DAQ
sampling over model documents (``meas daq``), and inspect columnar MTF
mass-trace stores (``meas mtf``).  ``campaign`` and ``verify`` accept
``--daq`` / ``--daq-period-us`` / ``--mtf-out`` to sample the default
DAQ list alongside each run; the measurement digest printed is
invariant under ``--jobs`` and ``--resume``, and MTF files are
summarized by ``stats``.
"""

from __future__ import annotations

import sys

import repro


def info() -> int:
    """Print the package inventory (the `info` subcommand)."""
    print(f"repro {repro.__version__} — reproduction of "
          f"'Software Components for Reliable Automotive Systems' "
          f"(DATE 2008)")
    subsystems = [
        ("repro.sim", "discrete-event simulation substrate"),
        ("repro.osek", "OSEK-like OS: FP / TDMA / reservation"),
        ("repro.network", "CAN, FlexRay, TTP, TT-Ethernet"),
        ("repro.com", "signals, I-PDUs, COM stack"),
        ("repro.core", "SWCs, VFB, RTE, system configuration"),
        ("repro.contracts", "rich contracts + vertical assumptions"),
        ("repro.analysis", "RTA, bus analysis, e2e chains, TT synthesis"),
        ("repro.noc", "MPSoC: shared bus vs TDMA NoC"),
        ("repro.faults", "fault injection + containment monitors"),
        ("repro.bsw", "modes, DEM, NVRAM, watchdog, NM, diag, gateway"),
        ("repro.dse", "allocation, priorities, consolidation"),
        ("repro.verify", "differential oracle, invariants, fuzz + shrink"),
        ("repro.exec", "deterministic parallel sweeps + checkpointing"),
        ("repro.obs", "telemetry: metrics, spans, DLT log, exporters"),
        ("repro.model", "versioned exchange format + bundled scenarios"),
        ("repro.meas", "XCP-like measurement/calibration + MTF store"),
        ("repro.legacy", "CAN overlay middleware"),
    ]
    for module, description in subsystems:
        print(f"  {module:<16} {description}")
    print("Experiments: see EXPERIMENTS.md; "
          "run `pytest benchmarks/ --benchmark-only`.")
    return 0


def selftest() -> int:
    """Run the end-to-end installation check (the `selftest` subcommand)."""
    from repro.analysis import Chain, ChainProbe, Stage, can_rta
    from repro.core import (Composition, DataReceivedEvent,
                            SenderReceiverInterface, SwComponent,
                            SystemModel, TimingEvent, UINT16)
    from repro.network import CanFrameSpec
    from repro.sim import Simulator
    from repro.units import ms, us

    data_if = SenderReceiverInterface("d", {"v": UINT16})
    probe = ChainProbe("selftest")

    sensor = SwComponent("Sensor")
    sensor.provide("out", data_if)

    def sample(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        seq = ctx.state["n"] % 65536
        probe.stamp(seq, ctx.now)
        ctx.write("out", "v", seq)

    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(100))
    sink = SwComponent("Sink")
    sink.require("in", data_if)
    sink.runnable("consume", DataReceivedEvent("in", "v"),
                  lambda ctx: probe.observe(ctx.read("in", "v"), ctx.now),
                  wcet=us(100))

    app = Composition("App")
    app.add(sensor.instantiate("s"))
    app.add(sink.instantiate("k"))
    app.connect("s", "out", "k", "in")
    system = SystemModel("selftest")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("s", "E1")
    system.map("k", "E2")
    system.configure_bus("can")
    issues = system.validate()
    if issues:
        print("FAIL: configuration checks:", issues)
        return 1
    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(200))
    frame = CanFrameSpec("s.out", 0x100, dlc=3, period=ms(10))
    bound = can_rta.analyze([frame], 500_000)
    chain = Chain("selftest", [Stage("frame", bound.wcrt["s.out"]),
                               Stage("consume", us(100))])
    verdict = probe.check_against(chain)
    status = "PASS" if verdict["bound_holds"] and probe.latencies else \
        "FAIL"
    print(f"{status}: {len(probe.latencies)} deliveries, observed max "
          f"{verdict['observed_max']} ns <= bound "
          f"{verdict['analytic_bound']} ns "
          f"(tightness {verdict['tightness']:.2f}x)")
    return 0 if status == "PASS" else 1


def _add_exec_arguments(parser) -> None:
    """The execution-engine flags shared by `campaign` and `verify`."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1: in-process; "
                             "any N yields the identical report digest)")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="JSONL journal recording per-chunk results")
    parser.add_argument("--resume", action="store_true",
                        help="skip chunks already journaled as done in "
                             "--checkpoint; re-run in-flight/failed ones")
    parser.add_argument("--progress", action="store_true",
                        help="live chunk/rate/ETA lines on stderr "
                             "(stdout stays byte-identical)")


def _add_cache_arguments(parser) -> None:
    """The analysis memo-cache flags shared by `verify` and `fuzz`."""
    parser.add_argument("--analysis-cache",
                        choices=("off", "memory", "disk"), default="off",
                        dest="analysis_cache",
                        help="memoize per-layer analysis results keyed "
                             "by content digest (default off; results "
                             "and digests are identical either way)")
    parser.add_argument("--analysis-cache-dir", metavar="DIR",
                        dest="analysis_cache_dir",
                        help="directory for the disk cache tier "
                             "(required with --analysis-cache=disk; "
                             "shared across --jobs workers and "
                             "--resume restarts)")
    parser.add_argument("--analysis-cache-capacity", type=int,
                        default=4096, metavar="N",
                        dest="analysis_cache_capacity",
                        help="in-memory LRU entries per process "
                             "(default 4096)")


def _cache_config(options, parser):
    """A CacheConfig from the cache flags (None when off)."""
    if options.analysis_cache == "off":
        return None
    if options.analysis_cache == "disk" and not options.analysis_cache_dir:
        parser.error("--analysis-cache=disk requires "
                     "--analysis-cache-dir")
    if options.analysis_cache_capacity < 1:
        parser.error("--analysis-cache-capacity must be >= 1")
    from repro.perf import CacheConfig

    return CacheConfig.from_mode(options.analysis_cache,
                                 options.analysis_cache_dir,
                                 options.analysis_cache_capacity)


def _print_cache_stats(cache, jobs: int) -> None:
    """One summary line for an enabled cache.  With jobs>1 the memo
    lives in worker processes, so only the mode is reportable here."""
    if cache is None:
        return
    from repro import perf

    mode = "disk" if cache.disk_dir else "memory"
    stats = perf.stats() if jobs == 1 else None
    if stats is None:
        print(f"analysis cache: {mode} (per-worker; stats stay in the "
              f"worker processes)")
    else:
        print(f"analysis cache: {mode} entries={stats['entries']} "
              f"hits={stats['hits']} misses={stats['misses']} "
              f"evictions={stats['evictions']} "
              f"disk_hits={stats['disk_hits']}")


def _make_progress(options, total_chunks: int, total_items: int):
    """A live ProgressMeter when --progress was given, else None."""
    if not options.progress:
        return None
    from repro.exec import ProgressMeter

    return ProgressMeter(total_chunks, total_items,
                         emit=lambda line: print(line, file=sys.stderr))


def _add_model_argument(parser) -> None:
    """The model-input flag shared by `verify`, `resilience`, `fuzz`."""
    parser.add_argument("--model", action="append", default=[],
                        metavar="PATH|NAME", dest="models",
                        help="run this model document (file path) or "
                             "bundled scenario (by name) instead of "
                             "seeded random systems; repeatable")


def _load_models(options, parser):
    """The validated Models behind every --model flag (or None)."""
    if not options.models:
        return None
    from repro.errors import ConfigurationError
    from repro.model.cli import model_from_ref

    try:
        return [model_from_ref(ref) for ref in options.models]
    except ConfigurationError as exc:
        parser.error(str(exc))


def _add_daq_arguments(parser) -> None:
    """The measurement flags shared by `campaign` and `verify`."""
    parser.add_argument("--daq", action="store_true",
                        help="attach the measurement service and run "
                             "the default DAQ sampling list alongside "
                             "each run (prints the jobs/resume-"
                             "invariant measurement digest)")
    parser.add_argument("--daq-period-us", type=int, default=1000,
                        dest="daq_period_us", metavar="US",
                        help="DAQ sampling period in µs (default 1000)")
    parser.add_argument("--mtf-out", metavar="PATH", dest="mtf_out",
                        help="write the DAQ samples to this columnar "
                             "MTF store (requires --daq; summarize "
                             "with `repro stats`)")


def _daq_period(options, parser):
    """The DAQ period in ns (None when --daq was not given)."""
    if options.mtf_out and not options.daq:
        parser.error("--mtf-out requires --daq")
    if not options.daq:
        return None
    if options.daq_period_us < 1:
        parser.error("--daq-period-us must be >= 1")
    from repro.units import us

    return us(options.daq_period_us)


def _emit_daq(options, pairs, sample_count: int,
              measurement_digest: str) -> None:
    """Print the measurement digest and write the optional MTF store.

    ``pairs`` is ``[(label, rows), ...]`` with rows shaped
    ``[time, daq_list, entry, value]``; entries are namespaced by
    label in the store so several systems share one file."""
    print(f"daq samples: {sample_count}")
    print(f"measurement digest: sha256:{measurement_digest}")
    if not options.mtf_out:
        return
    from repro.meas.mtf import MtfWriter

    with MtfWriter(options.mtf_out) as writer:
        for label, rows in sorted(pairs, key=lambda pair: pair[0]):
            writer.write_batch([
                (time, f"daq.{daq_name}", f"{label}:{entry}",
                 {"value": value})
                for time, daq_name, entry, value in rows])
    print(f"wrote {options.mtf_out} ({sample_count} samples)")


def _add_telemetry_arguments(parser) -> None:
    """The telemetry export flags shared by `campaign` and `verify`."""
    parser.add_argument("--metrics", metavar="PATH",
                        help="write merged metrics as Prometheus text")
    parser.add_argument("--trace-out", metavar="PATH", dest="trace_out",
                        help="write spans + DLT events as Chrome "
                             "trace-event JSON (chrome://tracing, "
                             "Perfetto)")
    parser.add_argument("--events", metavar="PATH",
                        help="write the full telemetry as a JSONL "
                             "event log")


def _telemetry_wanted(options) -> bool:
    return bool(options.metrics or options.trace_out or options.events)


def _export_telemetry(options) -> None:
    """Write the requested export files and print the telemetry digest
    (deterministic: identical for any --jobs level)."""
    from repro import obs

    if options.metrics:
        obs.write_prometheus(options.metrics)
    if options.trace_out:
        obs.write_chrome_trace(options.trace_out)
    if options.events:
        obs.write_events_jsonl(options.events)
    print(f"telemetry digest: sha256:{obs.digest()}")


def campaign(args: list[str]) -> int:
    """Run the reference fault campaign (the `campaign` subcommand)."""
    import argparse

    from repro import obs
    from repro.analysis import format_robustness, robustness_report
    from repro.faults import ReferenceWorld, reference_cells, run_campaign
    from repro.units import ms

    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="reference fault-injection campaign")
    parser.add_argument("--smoke", action="store_true",
                        help="run a single corruption cell (CI gate)")
    _add_exec_arguments(parser)
    _add_telemetry_arguments(parser)
    _add_daq_arguments(parser)
    options = parser.parse_args(args)
    if options.resume and not options.checkpoint:
        parser.error("--resume requires --checkpoint")
    daq_period = _daq_period(options, parser)

    cells = reference_cells()
    if options.smoke:
        cells = cells[:1]  # one corruption cell: fast CI regression gate
    telemetry = _telemetry_wanted(options)
    if telemetry:
        obs.reset()
        obs.enable()
    try:
        report = run_campaign(
            ReferenceWorld, cells, horizon=ms(300), jobs=options.jobs,
            checkpoint=options.checkpoint, resume=options.resume,
            progress=_make_progress(options, len(cells), len(cells)),
            daq_period=daq_period)
    finally:
        if telemetry:
            obs.disable()
    print(f"fault campaign: {report.cells} cell(s), horizon 300 ms")
    for result in report.results:
        status = "DETECTED" if result.detected else "UNDETECTED"
        print(f"  {result.cell.kind:<16} on {result.cell.target:<10} "
              f"{status:<10} dtcs={[hex(d) for d in result.confirmed_dtcs]} "
              f"degraded={result.degraded} contained={result.contained} "
              f"recovered={result.recovered}")
    print(format_robustness(robustness_report(report)))
    print(f"report digest: sha256:{report.digest()}")
    if options.daq:
        _emit_daq(options,
                  [(result.cell.label, result.daq_rows)
                   for result in report.results],
                  report.daq_sample_count, report.measurement_digest())
    if telemetry:
        _export_telemetry(options)
    corrupted = sum(r.extra.get("undetected_corrupted", 0)
                    for r in report.results)
    healthy = (report.detection_rate == 1.0
               and report.recovery_rate == 1.0
               and corrupted == 0)
    print(f"verdict: {'PASS' if healthy else 'FAIL'} "
          f"(undetected corrupted deliveries: {corrupted})")
    return 0 if healthy else 1


def verify(args: list[str]) -> int:
    """Run the differential verification harness (the `verify`
    subcommand): generate seeded random systems, compare every analytic
    bound against the simulated observation, and replay the traces
    through the trace invariants.  Exits non-zero on any soundness or
    invariant violation."""
    import argparse

    from repro import obs
    from repro.verify import SIZES, format_report, verify_many

    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="differential analysis-vs-simulation verification")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--systems", type=int, default=25)
    parser.add_argument("--size", choices=sorted(SIZES), default="small")
    _add_model_argument(parser)
    _add_exec_arguments(parser)
    _add_cache_arguments(parser)
    _add_telemetry_arguments(parser)
    _add_daq_arguments(parser)
    options = parser.parse_args(args)
    if options.resume and not options.checkpoint:
        parser.error("--resume requires --checkpoint")
    cache = _cache_config(options, parser)
    models = _load_models(options, parser)
    daq_period = _daq_period(options, parser)
    count = len(models) if models else options.systems
    telemetry = _telemetry_wanted(options)
    if telemetry:
        obs.reset()
        obs.enable()
    try:
        if models:
            from repro.model import verify_models

            report = verify_models(
                models, jobs=options.jobs,
                checkpoint=options.checkpoint, resume=options.resume,
                progress=_make_progress(options, count, count),
                cache=cache, daq_period=daq_period)
        else:
            report = verify_many(
                options.seed, options.systems, options.size,
                jobs=options.jobs, checkpoint=options.checkpoint,
                resume=options.resume,
                progress=_make_progress(options, count, count),
                cache=cache, daq_period=daq_period)
    finally:
        if telemetry:
            obs.disable()
    print(format_report(report))
    _print_cache_stats(cache, options.jobs)
    if options.daq:
        _emit_daq(options,
                  [(verdict.name, verdict.daq_rows)
                   for verdict in report.verdicts],
                  report.daq_sample_count, report.measurement_digest())
    if telemetry:
        _export_telemetry(options)
    return 0 if report.passed else 1


def fuzz_command(args: list[str]) -> int:
    """Run the coverage-guided differential fuzzer (the `fuzz`
    subcommand): mutate generated systems structurally, keep mutants
    that reach new oracle behaviour, delta-debug every soundness or
    invariant failure to a minimal counterexample.  Finding failures is
    the fuzzer doing its job — the exit code is non-zero only when a
    failure could not be fully shrunk (or the engine itself failed)."""
    import argparse

    from repro import obs
    from repro.verify import SIZES
    from repro.verify.fuzz import (DEFAULT_SEED_BATCH, format_fuzz_report,
                                   fuzz, write_corpus)

    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="coverage-guided differential fuzzing with "
                    "counterexample shrinking")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--budget", type=int, default=200,
                        help="verify executions to spend (default 200); "
                             "shrink probes are not counted")
    parser.add_argument("--size", choices=sorted(SIZES), default="small")
    parser.add_argument("--seed-batch", type=int,
                        default=DEFAULT_SEED_BATCH, dest="seed_batch",
                        help="fresh-seed systems fuzzed before mutation "
                             f"starts (default {DEFAULT_SEED_BATCH})")
    parser.add_argument("--max-seconds", type=float, default=None,
                        dest="max_seconds",
                        help="stop at a round boundary once this much "
                             "wall clock is spent (CI budget; when it "
                             "fires, the digest reflects the executed "
                             "prefix only)")
    parser.add_argument("--until-dry", type=int, default=None,
                        metavar="K", dest="until_dry",
                        help="campaign mode: keep fuzzing until K "
                             "consecutive rounds admit no new coverage "
                             "token (--budget still caps the run)")
    parser.add_argument("--corpus-dir", metavar="DIR", dest="corpus_dir",
                        help="persist minimized counterexamples as JSON "
                             "under DIR (e.g. tests/corpus)")
    _add_model_argument(parser)
    _add_exec_arguments(parser)
    _add_cache_arguments(parser)
    _add_telemetry_arguments(parser)
    options = parser.parse_args(args)
    if options.resume and not options.checkpoint:
        parser.error("--resume requires --checkpoint")
    cache = _cache_config(options, parser)
    models = _load_models(options, parser)
    seeds = None if models is None else [m.build() for m in models]
    telemetry = _telemetry_wanted(options)
    if telemetry:
        obs.reset()
        obs.enable()
    try:
        report = fuzz(
            options.seed, options.budget, options.size,
            jobs=options.jobs, checkpoint=options.checkpoint,
            resume=options.resume, seed_batch=options.seed_batch,
            max_seconds=options.max_seconds,
            until_dry=options.until_dry,
            progress=_make_progress(options, options.budget,
                                    options.budget),
            cache=cache, seeds=seeds)
    finally:
        if telemetry:
            obs.disable()
    print(format_fuzz_report(report))
    _print_cache_stats(cache, options.jobs)
    if options.corpus_dir and report.findings:
        for path in write_corpus(report, options.corpus_dir):
            print(f"  wrote {path}")
    if telemetry:
        _export_telemetry(options)
    return 0 if not report.unshrunk else 1


def resilience(args: list[str]) -> int:
    """Run the resilience verification matrix (the `resilience`
    subcommand): generate seeded random systems, inject the standard
    bus-/ECU-level fault scenarios into each, and check that every
    fault is detected within its analytic bound, contained behind the
    guardian, and recovered per the hysteresis policy.  Exits non-zero
    on any unmet obligation."""
    import argparse

    from repro import obs
    from repro.verify import SIZES
    from repro.verify.resilience import (format_resilience_report,
                                         run_resilience)

    parser = argparse.ArgumentParser(
        prog="repro resilience",
        description="fault-injection resilience verification "
                    "(detect / contain / recover)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--systems", type=int, default=3)
    parser.add_argument("--size", choices=sorted(SIZES), default="small")
    _add_model_argument(parser)
    _add_exec_arguments(parser)
    _add_telemetry_arguments(parser)
    options = parser.parse_args(args)
    if options.resume and not options.checkpoint:
        parser.error("--resume requires --checkpoint")
    models = _load_models(options, parser)
    count = len(models) if models else options.systems
    telemetry = _telemetry_wanted(options)
    if telemetry:
        obs.reset()
        obs.enable()
    try:
        if models:
            from repro.model import resilience_models

            report = resilience_models(
                models, jobs=options.jobs,
                checkpoint=options.checkpoint, resume=options.resume,
                progress=_make_progress(options, count, count))
        else:
            report = run_resilience(
                options.seed, options.systems, options.size,
                jobs=options.jobs, checkpoint=options.checkpoint,
                resume=options.resume,
                progress=_make_progress(options, count, count))
    finally:
        if telemetry:
            obs.disable()
    print(format_resilience_report(report))
    if telemetry:
        _export_telemetry(options)
    return 0 if report.passed else 1


def stats(args: list[str]) -> int:
    """Summarize exported telemetry files (the `stats` subcommand):
    top spans by cumulative time, histogram percentiles, and the DLT
    error-event table.  Input format (Prometheus text, Chrome trace
    JSON, JSONL event log) is autodetected per file."""
    import argparse

    from repro.obs.stats import summarize_paths

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="summarize exported telemetry files")
    parser.add_argument("paths", nargs="+", metavar="PATH",
                        help="files written by --metrics / --trace-out "
                             "/ --events")
    parser.add_argument("--top", type=int, default=10,
                        help="span table rows (default 10)")
    options = parser.parse_args(args)
    print(summarize_paths(options.paths, options.top))
    return 0


def main(argv: list[str]) -> int:
    """CLI dispatch; returns the process exit code."""
    command = argv[1] if len(argv) > 1 else "info"
    if command == "info":
        return info()
    if command == "selftest":
        return selftest()
    if command == "campaign":
        return campaign(argv[2:])
    if command == "verify":
        return verify(argv[2:])
    if command == "fuzz":
        return fuzz_command(argv[2:])
    if command == "resilience":
        return resilience(argv[2:])
    if command == "model":
        from repro.model.cli import model_command

        return model_command(argv[2:])
    if command == "meas":
        from repro.meas.cli import meas_command

        return meas_command(argv[2:])
    if command == "stats":
        return stats(argv[2:])
    print(f"unknown command {command!r}; "
          f"use 'info', 'selftest', 'campaign', 'verify', 'fuzz', "
          f"'resilience', 'model', 'meas' or 'stats'")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
