"""Time-triggered Ethernet-like switched channel.

Models the property the paper cites TT-Ethernet for: partitioning one
physical channel into a time-triggered class with fixed, interference-free
latency and a best-effort class that uses the gaps.  Per egress port:

* **TT windows** come from a static schedule ``(offset, duration, period)``;
  a TT frame leaves exactly at its window and arrives after wire+switch
  delay, regardless of best-effort load;
* **best-effort frames** are FIFO-queued and may only start if they finish
  before the next TT window on the port (guard-band rule), otherwise they
  wait until after it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.network.message import Message
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.units import bit_time

#: Ethernet per-frame overhead: preamble+SFD(8) + header(14) + FCS(4) + IFG(12).
_FRAME_OVERHEAD_BYTES = 38
_MIN_PAYLOAD = 46


class TtWindow:
    """One periodic TT reservation on an egress port."""

    def __init__(self, offset: int, duration: int, period: int):
        if duration <= 0 or period <= 0 or offset < 0 or offset >= period:
            raise ConfigurationError(
                f"bad TT window offset={offset} duration={duration} "
                f"period={period}")
        if duration > period:
            raise ConfigurationError("window duration exceeds its period")
        self.offset = offset
        self.duration = duration
        self.period = period

    def next_start(self, t: int) -> int:
        """First window start >= t."""
        k = max(0, -(-(t - self.offset) // self.period))
        return self.offset + k * self.period

    def covering(self, t: int) -> Optional[tuple[int, int]]:
        """(start, end) of the window instance containing ``t``, if any."""
        if t < self.offset:
            return None
        k = (t - self.offset) // self.period
        start = self.offset + k * self.period
        if start <= t < start + self.duration:
            return (start, start + self.duration)
        return None


def ethernet_frame_time(payload_bytes: int, bitrate_bps: int) -> int:
    """Wire time of a frame with the given payload (padded to minimum)."""
    payload = max(_MIN_PAYLOAD, payload_bytes)
    return (payload + _FRAME_OVERHEAD_BYTES) * 8 * bit_time(bitrate_bps)


class _EgressPort:
    """Per-receiver egress port: TT reservations plus a BE queue."""

    def __init__(self, switch: "TtEthernetSwitch", node: str):
        self.switch = switch
        self.node = node
        self.windows: list[TtWindow] = []
        self.be_queue: list[tuple[Message, int]] = []
        self.busy_until = 0
        self._be_timer_armed = False

    def earliest_be_start(self, t: int, duration: int) -> int:
        """Earliest start >= t such that [start, start+duration) avoids
        every TT window (guard-band rule)."""
        start = max(t, self.busy_until)
        for _ in range(1000):
            conflict = None
            for window in self.windows:
                covering = window.covering(start)
                if covering is not None:
                    conflict = covering[1]
                    break
                nxt = window.next_start(start)
                if nxt < start + duration:
                    conflict = nxt + window.duration
                    break
            if conflict is None:
                return start
            start = conflict
        raise ConfigurationError(
            f"port {self.node}: no best-effort gap of {duration} ns found "
            f"(TT schedule saturates the port)")


class TtFrameSpec:
    """A scheduled TT stream: sender -> receivers at fixed instants."""

    def __init__(self, name: str, sender: str, receivers: list[str],
                 offset: int, period: int, size_bytes: int = 64):
        if period <= 0 or offset < 0:
            raise ConfigurationError(f"TT frame {name}: bad offset/period")
        if not receivers:
            raise ConfigurationError(f"TT frame {name}: no receivers")
        self.name = name
        self.sender = sender
        self.receivers = receivers
        self.offset = offset
        self.period = period
        self.size_bytes = size_bytes


class TtEthernetSwitch:
    """One switch connecting all nodes (star topology).

    ``switch_delay`` is the constant store-and-forward latency added to
    every frame's wire time.
    """

    def __init__(self, sim: Simulator, bitrate_bps: int = 100_000_000,
                 switch_delay: int = 2_000, trace: Optional[Trace] = None,
                 name: str = "TTE"):
        self.sim = sim
        self.bitrate_bps = bitrate_bps
        self.switch_delay = switch_delay
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self.ports: dict[str, _EgressPort] = {}
        self._tt_frames: list[TtFrameSpec] = []
        self._tt_buffers: dict[str, object] = {}
        self._rx_callbacks: dict[str, list[Callable]] = {}
        self._started = False

    def attach(self, node: str) -> None:
        """Attach a node port to the switch."""
        if node in self.ports:
            raise ConfigurationError(f"node {node!r} already attached")
        self.ports[node] = _EgressPort(self, node)
        self._rx_callbacks[node] = []

    def on_receive(self, node: str, callback: Callable) -> None:
        """Register a reception callback for a node."""
        self._rx_callbacks[node].append(callback)

    # ------------------------------------------------------------------
    # TT class
    # ------------------------------------------------------------------
    def schedule_tt(self, spec: TtFrameSpec) -> None:
        """Install a TT stream; reserves windows on all receiver ports."""
        for node in [spec.sender] + spec.receivers:
            if node not in self.ports:
                raise ConfigurationError(
                    f"TT frame {spec.name}: unknown node {node!r}")
        duration = ethernet_frame_time(spec.size_bytes, self.bitrate_bps)
        for receiver in spec.receivers:
            self.ports[receiver].windows.append(
                TtWindow(spec.offset % spec.period, duration, spec.period))
        self._tt_frames.append(spec)

    def set_tt_payload(self, frame_name: str, payload) -> None:
        """Update the value a TT stream carries (sender overwrites)."""
        self._tt_buffers[frame_name] = (payload, self.sim.now)

    def start(self) -> None:
        """Begin dispatching the scheduled TT streams."""
        if self._started:
            raise ConfigurationError(f"{self.name} already started")
        self._started = True
        for spec in self._tt_frames:
            self._schedule_tt_dispatch(spec, spec.offset)

    def _schedule_tt_dispatch(self, spec: TtFrameSpec, when: int) -> None:
        if when < self.sim.now:
            when += ((self.sim.now - when) // spec.period + 1) * spec.period
        self.sim.schedule_at(when, lambda: self._tt_dispatch(spec, when))

    def _tt_dispatch(self, spec: TtFrameSpec, when: int) -> None:
        payload, stamp = self._tt_buffers.get(spec.name, (None, when))
        duration = ethernet_frame_time(spec.size_bytes, self.bitrate_bps)
        arrival = when + duration + self.switch_delay
        msg = Message(spec.name, spec.sender, payload, spec.size_bytes,
                      enqueue_time=stamp)
        msg.tx_start = when
        msg.rx_time = arrival

        def deliver():
            self.trace.log(arrival, "tte.rx_tt", spec.name,
                           sender=spec.sender, latency=msg.latency)
            for receiver in spec.receivers:
                for callback in self._rx_callbacks[receiver]:
                    callback(spec.name, msg)

        self.sim.schedule_at(arrival, deliver)
        self._schedule_tt_dispatch(spec, when + spec.period)

    # ------------------------------------------------------------------
    # Best-effort class
    # ------------------------------------------------------------------
    def send_be(self, sender: str, receiver: str, payload=None,
                size_bytes: int = 1500) -> Message:
        """Queue one best-effort frame; transmitted in TT gaps, FIFO."""
        if receiver not in self.ports:
            raise ConfigurationError(f"unknown receiver {receiver!r}")
        duration = ethernet_frame_time(size_bytes, self.bitrate_bps)
        msg = Message(f"be.{sender}->{receiver}", sender, payload, size_bytes,
                      enqueue_time=self.sim.now)
        port = self.ports[receiver]
        port.be_queue.append((msg, duration))
        self._pump_be(port)
        return msg

    def _pump_be(self, port: _EgressPort) -> None:
        if port._be_timer_armed or not port.be_queue:
            return
        msg, duration = port.be_queue[0]
        start = port.earliest_be_start(self.sim.now, duration)
        port._be_timer_armed = True

        def transmit():
            port.be_queue.pop(0)
            port.busy_until = self.sim.now + duration
            end = port.busy_until + self.switch_delay

            def deliver():
                port._be_timer_armed = False
                msg.tx_start = start
                msg.rx_time = self.sim.now
                self.trace.log(self.sim.now, "tte.rx_be", msg.name,
                               sender=msg.sender, latency=msg.latency)
                for callback in self._rx_callbacks[port.node]:
                    callback(msg.name, msg)
                self._pump_be(port)

            self.sim.schedule_at(end, deliver)

        self.sim.schedule_at(start, transmit)

    def latencies(self, category: str, name: Optional[str] = None
                  ) -> list[int]:
        """Observed latencies; ``category`` is ``"tt"`` or ``"be"``."""
        return [r.data["latency"]
                for r in self.trace.records(f"tte.rx_{category}", name)]

    def __repr__(self) -> str:
        return (f"<TtEthernetSwitch {self.name} ports={len(self.ports)} "
                f"tt_frames={len(self._tt_frames)}>")
