"""Common message vocabulary for all bus models.

A :class:`Message` is one in-flight transmission instance; the protocol
modules add their own static frame descriptions (CAN ids, FlexRay slots,
TTP slots) around it.  Timestamps are filled in as the message moves through
queueing, transmission and reception, so latency components can be separated
in traces (queueing vs. wire time).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_msg_seq = itertools.count()


@dataclass
class Message:
    """One transmission: payload plus lifecycle timestamps (ns).

    ``enqueue_time`` — handed to the controller;
    ``tx_start`` — first bit on the wire;
    ``rx_time`` — received by peers (last bit).
    """

    name: str
    sender: str
    payload: Any = None
    size_bytes: int = 8
    enqueue_time: Optional[int] = None
    tx_start: Optional[int] = None
    rx_time: Optional[int] = None
    seq: int = field(default_factory=lambda: next(_msg_seq))

    @property
    def queueing_delay(self) -> Optional[int]:
        """Time from enqueue to first bit on the wire."""
        if self.enqueue_time is None or self.tx_start is None:
            return None
        return self.tx_start - self.enqueue_time

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency: enqueue to reception."""
        if self.enqueue_time is None or self.rx_time is None:
            return None
        return self.rx_time - self.enqueue_time

    def __repr__(self) -> str:
        return (f"<Message {self.name}#{self.seq} from {self.sender} "
                f"{self.size_bytes}B>")
