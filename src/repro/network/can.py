"""CAN bus simulation (Bosch CAN 2.0, 11-bit identifiers).

The model is faithful at the arbitration/timing level used by the paper's
analysis references [9]:

* the bus is a broadcast medium with non-preemptive fixed-priority
  arbitration — when the bus goes idle, the queued frame with the lowest
  identifier wins;
* a frame that loses arbitration (or arrives during a transmission) waits
  for the next idle instant;
* frame transmission time uses the standard worst-case bit-stuffing formula
  ``(g + 8*s + 13 + floor((g + 8*s - 1)/4)) * t_bit`` with ``g = 34`` for
  standard frames (``54`` for extended);
* transmission errors destroy the frame after an error-frame overhead and
  the controller automatically retransmits.

What is deliberately *not* modelled (out of scope for the paper's claims):
bit-level sample points, CRC contents, and the fault-confinement counters
(bus-off is modelled coarsely via :meth:`CanController.set_bus_off`).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.network.message import Message
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.units import bit_time

MAX_STANDARD_ID = 0x7FF
MAX_EXTENDED_ID = 0x1FFF_FFFF
#: Protocol overhead bits subject to stuffing (standard / extended format).
_OVERHEAD_BITS = {False: 34, True: 54}
#: Non-stuffed trailer bits (CRC delimiter, ACK, EOF) + interframe space.
_TRAILER_BITS = 13
#: Worst-case error frame + recovery, in bits.
ERROR_FRAME_BITS = 31


def frame_bits(dlc: int, extended: bool = False,
               worst_case_stuffing: bool = True) -> int:
    """Number of bit times a frame with ``dlc`` payload bytes occupies.

    ``worst_case_stuffing`` adds the maximal stuff-bit count (one per four
    bits of the stuffable region); otherwise no stuffing is assumed, giving
    the best-case length.
    """
    if not 0 <= dlc <= 8:
        raise ConfigurationError(f"CAN dlc must be 0..8, got {dlc}")
    g = _OVERHEAD_BITS[extended]
    stuffable = g + 8 * dlc
    bits = stuffable + _TRAILER_BITS
    if worst_case_stuffing:
        bits += (stuffable - 1) // 4
    return bits


def frame_time(dlc: int, bitrate_bps: int, extended: bool = False,
               worst_case_stuffing: bool = True) -> int:
    """Wire time (ns) of one frame."""
    return frame_bits(dlc, extended, worst_case_stuffing) * bit_time(
        bitrate_bps)


class CanFrameSpec:
    """Static description of a CAN frame (an AUTOSAR I-PDU on CAN)."""

    def __init__(self, name: str, can_id: int, dlc: int = 8,
                 period: Optional[int] = None, deadline: Optional[int] = None,
                 extended: bool = False, jitter: int = 0):
        limit = MAX_EXTENDED_ID if extended else MAX_STANDARD_ID
        if not 0 <= can_id <= limit:
            raise ConfigurationError(
                f"frame {name}: id {can_id:#x} out of range")
        if not 0 <= dlc <= 8:
            raise ConfigurationError(f"frame {name}: dlc must be 0..8")
        if period is not None and period <= 0:
            raise ConfigurationError(f"frame {name}: period must be > 0")
        self.name = name
        self.can_id = can_id
        self.dlc = dlc
        self.period = period
        self.deadline = deadline if deadline is not None else period
        self.extended = extended
        self.jitter = jitter

    def bits(self, worst_case_stuffing: bool = True) -> int:
        """Wire length of the frame in bit times."""
        return frame_bits(self.dlc, self.extended, worst_case_stuffing)

    def __repr__(self) -> str:
        return f"<CanFrameSpec {self.name} id={self.can_id:#x} dlc={self.dlc}>"


class CanController:
    """One node's CAN controller: priority-ordered transmit queue plus
    receive callbacks.  Created via :meth:`CanBus.attach`."""

    def __init__(self, bus: "CanBus", node: str):
        self.bus = bus
        self.node = node
        self._queue: list[tuple[int, int, CanFrameSpec, Message]] = []
        self._rx_callbacks: list[Callable[[CanFrameSpec, Message], None]] = []
        self.bus_off = False
        self.tx_count = 0
        self.rx_count = 0

    def send(self, spec: CanFrameSpec, payload=None) -> Message:
        """Queue a frame for transmission.  Within one controller the queue
        is ordered by CAN id (priority-ordered transmit buffers)."""
        msg = Message(spec.name, self.node, payload, spec.dlc,
                      enqueue_time=self.bus.sim.now)
        if self.bus_off:
            self.bus.trace.log(self.bus.sim.now, "can.tx_rejected", spec.name,
                               node=self.node, reason="bus_off")
            return msg
        heapq.heappush(self._queue, (spec.can_id, msg.seq, spec, msg))
        self.bus.trace.log(self.bus.sim.now, "can.enqueue", spec.name,
                           node=self.node, can_id=spec.can_id)
        self.bus._try_start()
        return msg

    def on_receive(self, callback: Callable[[CanFrameSpec, Message], None]
                   ) -> None:
        """Register a callback invoked for every frame from *other* nodes."""
        self._rx_callbacks.append(callback)

    def set_bus_off(self, off: bool = True) -> None:
        """Coarse bus-off model: a bus-off controller neither sends nor
        queues; pending frames are flushed."""
        self.bus_off = off
        if off:
            self._queue.clear()

    def flush(self) -> int:
        """Drop all queued frames (controller reset); returns the count."""
        count = len(self._queue)
        self._queue.clear()
        return count

    @property
    def pending(self) -> int:
        """Frames waiting in the transmit queue."""
        return len(self._queue)

    def _head(self):
        return self._queue[0] if self._queue else None

    def _pop_head(self):
        return heapq.heappop(self._queue)

    def _deliver(self, spec: CanFrameSpec, msg: Message) -> None:
        self.rx_count += 1
        for callback in self._rx_callbacks:
            callback(spec, msg)

    def __repr__(self) -> str:
        return f"<CanController {self.node} pending={self.pending}>"


class CanBus:
    """The shared CAN medium.

    ``error_model`` is an optional callable ``(spec, message) -> bool``
    evaluated at transmission start; returning True destroys this
    transmission attempt (error frame + automatic retransmission).
    """

    def __init__(self, sim: Simulator, bitrate_bps: int = 500_000,
                 trace: Optional[Trace] = None, name: str = "CAN",
                 error_model: Optional[Callable] = None,
                 worst_case_stuffing: bool = True):
        self.sim = sim
        self.bitrate_bps = bitrate_bps
        self.bit_time = bit_time(bitrate_bps)
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self.error_model = error_model
        self.worst_case_stuffing = worst_case_stuffing
        self.controllers: dict[str, CanController] = {}
        self.busy_until = 0
        self._current: Optional[tuple] = None
        self._start_pending = False
        self.frames_delivered = 0
        self.error_count = 0

    def attach(self, node: str) -> CanController:
        """Attach a node; returns its controller."""
        if node in self.controllers:
            raise ConfigurationError(
                f"{self.name}: node {node!r} already attached")
        controller = CanController(self, node)
        self.controllers[node] = controller
        return controller

    @property
    def idle(self) -> bool:
        """Whether no transmission is in progress."""
        return self._current is None and self.sim.now >= self.busy_until

    # ------------------------------------------------------------------
    def _try_start(self) -> None:
        """Coalesce an arbitration attempt at the current instant (after
        all same-time enqueues have happened)."""
        if self._start_pending:
            return
        self._start_pending = True
        self.sim.schedule(0, self._arbitrate, priority=50)

    def _arbitrate(self) -> None:
        self._start_pending = False
        if not self.idle:
            return
        contenders = [(c._head()[0], c._head()[1], c)
                      for c in self.controllers.values() if c._head()]
        if not contenders:
            return
        __, __, winner = min(contenders)
        can_id, __, spec, msg = winner._pop_head()
        obs.count("can.arbitrations")
        self._transmit(winner, spec, msg)

    def _transmit(self, controller: CanController, spec: CanFrameSpec,
                  msg: Message) -> None:
        now = self.sim.now
        msg.tx_start = now
        duration = spec.bits(self.worst_case_stuffing) * self.bit_time
        corrupted = (self.error_model is not None
                     and self.error_model(spec, msg))
        if corrupted:
            self.error_count += 1
            obs.count("can.error_frames")
            recovery = ERROR_FRAME_BITS * self.bit_time
            self.trace.log(now, "can.error", spec.name,
                           node=controller.node, bus=self.name)
            self._current = None
            self.busy_until = now + recovery
            # Automatic retransmission: requeue and retry after recovery.
            heapq.heappush(controller._queue,
                           (spec.can_id, msg.seq, spec, msg))
            self.sim.schedule_at(self.busy_until, self._try_start)
            return
        self._current = (controller, spec, msg)
        self.busy_until = now + duration
        self.trace.log(now, "can.tx_start", spec.name, node=controller.node,
                       can_id=spec.can_id, bus=self.name)
        self.sim.schedule_at(self.busy_until, self._complete)

    def _complete(self) -> None:
        controller, spec, msg = self._current
        self._current = None
        now = self.sim.now
        msg.rx_time = now
        controller.tx_count += 1
        self.frames_delivered += 1
        obs.count("can.frames_delivered")
        if obs.enabled() and msg.latency is not None:
            # Frame latency is simulated time — deterministic by
            # construction, so it participates in the telemetry digest.
            obs.observe("can.frame_latency_ns", msg.latency)
        self.trace.log(now, "can.rx", spec.name, node=controller.node,
                       latency=msg.latency, bus=self.name)
        for node, peer in self.controllers.items():
            if peer is not controller:
                peer._deliver(spec, msg)
        self._try_start()

    def records(self, category: str, subject=None) -> list:
        """This bus's trace records (the trace may be shared with other
        buses in multi-domain systems)."""
        return self.trace.records(
            category, subject,
            predicate=lambda r: r.data.get("bus") == self.name)

    def latencies(self, frame_name: str) -> list[int]:
        """Observed enqueue-to-reception latencies for a frame.

        Records without a ``latency`` key are skipped."""
        return [r.data["latency"]
                for r in self.records("can.rx", frame_name)
                if "latency" in r.data]

    def utilization(self, horizon: Optional[int] = None) -> float:
        """Fraction of wire time occupied by completed frames (error frames
        excluded).  Successive tx_start/rx trace records bracket each frame."""
        span = horizon if horizon is not None else self.sim.now
        if span <= 0:
            return 0.0
        starts = self.records("can.tx_start")
        ends = self.records("can.rx")
        busy_ns = sum(e.time - s.time for s, e in zip(starts, ends))
        return min(1.0, busy_ns / span)

    def __repr__(self) -> str:
        return (f"<CanBus {self.name} {self.bitrate_bps // 1000}kbit/s "
                f"nodes={len(self.controllers)}>")
