"""Bus guardian: independent enforcement of a node's transmission windows.

The paper (Section 4) attributes fault containment in time-triggered
architectures to guardians that hold an *independent* copy of the schedule:
even a babbling-idiot controller cannot disturb other nodes' slots because
the guardian physically gates its transmit path.  :class:`SlotGuardian` is
the reusable window check used by the TTP model (and available to any
TDMA-style medium).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class SlotGuardian:
    """Knows the periodic windows in which one node may transmit.

    ``windows`` are ``(start, length)`` pairs within a period of
    ``period`` ns.  A guardian with ``enabled=False`` is a pass-through —
    the baseline against which containment is measured.
    """

    def __init__(self, node: str, windows: list[tuple[int, int]],
                 period: int, enabled: bool = True):
        if period <= 0:
            raise ConfigurationError("guardian period must be > 0")
        for start, length in windows:
            if length <= 0 or start < 0 or start + length > period:
                raise ConfigurationError(
                    f"guardian window ({start},{length}) outside period")
        self.node = node
        self.windows = sorted(windows)
        self.period = period
        self.enabled = enabled
        self.blocked_count = 0

    def in_window(self, time: int) -> bool:
        """Whether the node's schedule permits transmission at ``time``."""
        phase = time % self.period
        return any(s <= phase < s + length for s, length in self.windows)

    def permit(self, time: int) -> bool:
        """Gate a transmission attempt: True = allowed onto the medium.

        A disabled guardian always permits.  Blocked attempts are counted
        for the containment monitors.
        """
        if not self.enabled or self.in_window(time):
            return True
        self.blocked_count += 1
        return False

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "DISABLED"
        return f"<SlotGuardian {self.node} {state} windows={self.windows}>"
