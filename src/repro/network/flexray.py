"""FlexRay bus simulation (protocol spec v2.1 structure).

A FlexRay communication cycle consists of

* a **static segment**: ``n_static_slots`` equal TDMA slots, each statically
  owned by one (node, frame) pair — this is the interference-free,
  composable part;
* a **dynamic segment**: ``n_minislots`` minislots arbitrated by frame ID
  (lower ID = earlier transmission opportunity); a dynamic frame consumes
  as many minislots as its transmission needs, and is postponed to the next
  cycle when the remaining minislots cannot hold it;
* (symbol window and NIT are folded into the cycle remainder).

Static frames support cycle multiplexing via ``base_cycle`` /
``repetition`` over the 64-cycle matrix, as in the real schedule tables.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro import obs
from repro.errors import ConfigurationError, ProtocolError
from repro.network.message import Message
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.units import bit_time

CYCLE_COUNT_MAX = 64


class FlexRayConfig:
    """Timing parameters of one FlexRay cluster."""

    def __init__(self, slot_length: int, n_static_slots: int,
                 minislot_length: int = 0, n_minislots: int = 0,
                 nit_length: int = 0, bitrate_bps: int = 10_000_000):
        if slot_length <= 0 or n_static_slots <= 0:
            raise ConfigurationError("static segment must be non-empty")
        if minislot_length < 0 or n_minislots < 0:
            raise ConfigurationError("negative dynamic segment parameters")
        if n_minislots > 0 and minislot_length <= 0:
            raise ConfigurationError("minislots need a positive length")
        self.slot_length = slot_length
        self.n_static_slots = n_static_slots
        self.minislot_length = minislot_length
        self.n_minislots = n_minislots
        self.nit_length = nit_length
        self.bitrate_bps = bitrate_bps

    @property
    def static_segment_length(self) -> int:
        """Duration of the static TDMA segment."""
        return self.slot_length * self.n_static_slots

    @property
    def dynamic_segment_length(self) -> int:
        """Duration of the dynamic (minislot) segment."""
        return self.minislot_length * self.n_minislots

    @property
    def cycle_length(self) -> int:
        """Duration of one full communication cycle."""
        return (self.static_segment_length + self.dynamic_segment_length
                + self.nit_length)

    def payload_capacity_bytes(self) -> int:
        """Payload bytes that fit a static slot (frame overhead ~ 80 bits:
        header 40 + trailer 24 + TSS/FES margins)."""
        bits = self.slot_length // bit_time(self.bitrate_bps)
        return max(0, (bits - 80) // 8)

    def __repr__(self) -> str:
        return (f"<FlexRayConfig {self.n_static_slots}x{self.slot_length}ns"
                f" + {self.n_minislots} minislots>")


class StaticSlotAssignment:
    """Ownership of one static slot by a frame of a node."""

    def __init__(self, slot: int, node: str, frame_name: str,
                 base_cycle: int = 0, repetition: int = 1):
        if repetition not in (1, 2, 4, 8, 16, 32, 64):
            raise ConfigurationError(
                f"slot {slot}: repetition must be a power of two <= 64")
        if not 0 <= base_cycle < repetition:
            raise ConfigurationError(
                f"slot {slot}: base_cycle must be < repetition")
        self.slot = slot
        self.node = node
        self.frame_name = frame_name
        self.base_cycle = base_cycle
        self.repetition = repetition

    def active_in_cycle(self, cycle: int) -> bool:
        """Whether the cycle-multiplexing selects this cycle."""
        return cycle % self.repetition == self.base_cycle

    def __repr__(self) -> str:
        return (f"<StaticSlot {self.slot} {self.node}/{self.frame_name} "
                f"{self.base_cycle}/{self.repetition}>")


class DynamicFrameSpec:
    """A frame transmitted in the dynamic segment."""

    def __init__(self, name: str, frame_id: int, size_bytes: int = 8):
        if frame_id <= 0:
            raise ConfigurationError(f"frame {name}: frame_id must be > 0")
        if size_bytes < 0:
            raise ConfigurationError(f"frame {name}: negative size")
        self.name = name
        self.frame_id = frame_id
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return f"<DynamicFrameSpec {self.name} id={self.frame_id}>"


class FlexRayController:
    """Node-local controller: transmit buffers + receive callbacks."""

    def __init__(self, bus: "FlexRayBus", node: str):
        self.bus = bus
        self.node = node
        self._static_buffers: dict[int, Message] = {}
        self._dynamic_queue: list[tuple[int, int, DynamicFrameSpec, Message]] = []
        self._rx_callbacks: list[Callable] = []
        self.tx_count = 0

    def send_static(self, slot: int, payload=None) -> Message:
        """Update the transmit buffer of an owned static slot.  The newest
        value is sent at the next slot occurrence (sender overwrites)."""
        assignment = self.bus._slot_table.get(slot)
        if assignment is None or assignment.node != self.node:
            raise ProtocolError(
                f"node {self.node} does not own static slot {slot}")
        msg = Message(assignment.frame_name, self.node, payload,
                      enqueue_time=self.bus.sim.now)
        self._static_buffers[slot] = msg
        return msg

    def queue_dynamic(self, spec: DynamicFrameSpec, payload=None) -> Message:
        """Queue a frame for the dynamic segment."""
        msg = Message(spec.name, self.node, payload, spec.size_bytes,
                      enqueue_time=self.bus.sim.now)
        self._dynamic_queue.append((spec.frame_id, msg.seq, spec, msg))
        self._dynamic_queue.sort()
        return msg

    def on_receive(self, callback: Callable) -> None:
        """Register a reception callback (frame name, message, slot)."""
        self._rx_callbacks.append(callback)

    def _deliver(self, frame_name: str, msg: Message, slot) -> None:
        for callback in self._rx_callbacks:
            callback(frame_name, msg, slot)

    def __repr__(self) -> str:
        return f"<FlexRayController {self.node}>"


class FlexRayBus:
    """The cluster: slot table, cycle engine, delivery.

    ``fault_model`` optionally decides per static slot whether the owning
    node's transmission is lost (``(assignment, cycle) -> bool``); used by
    the fault-injection experiments.
    """

    def __init__(self, sim: Simulator, config: FlexRayConfig,
                 trace: Optional[Trace] = None, name: str = "FlexRay",
                 fault_model: Optional[Callable] = None):
        self.sim = sim
        self.config = config
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self.fault_model = fault_model
        self.controllers: dict[str, FlexRayController] = {}
        self._slot_table: dict[int, StaticSlotAssignment] = {}
        self.cycle = 0
        self._started = False

    def attach(self, node: str) -> FlexRayController:
        """Attach a node; returns its controller."""
        if node in self.controllers:
            raise ConfigurationError(
                f"{self.name}: node {node!r} already attached")
        controller = FlexRayController(self, node)
        self.controllers[node] = controller
        return controller

    def assign_slot(self, assignment: StaticSlotAssignment) -> None:
        """Install a static-slot ownership; slots are exclusive per
        (slot, cycle-multiplex) — this simplified table is exclusive per
        slot outright."""
        if not 1 <= assignment.slot <= self.config.n_static_slots:
            raise ConfigurationError(
                f"slot {assignment.slot} outside 1.."
                f"{self.config.n_static_slots}")
        if assignment.slot in self._slot_table:
            raise ConfigurationError(
                f"slot {assignment.slot} already assigned")
        if assignment.node not in self.controllers:
            raise ConfigurationError(
                f"unknown node {assignment.node!r} for slot "
                f"{assignment.slot}")
        self._slot_table[assignment.slot] = assignment

    def start(self) -> None:
        """Begin cycle 0 at the current simulation time."""
        if self._started:
            raise ConfigurationError(f"{self.name} already started")
        self._started = True
        self._cycle_start(self.sim.now)

    # ------------------------------------------------------------------
    def _cycle_start(self, t0: int) -> None:
        self.trace.log(t0, "flexray.cycle", self.name, cycle=self.cycle)
        for slot in range(1, self.config.n_static_slots + 1):
            slot_end = t0 + slot * self.config.slot_length
            assignment = self._slot_table.get(slot)
            if assignment is not None and assignment.active_in_cycle(
                    self.cycle % CYCLE_COUNT_MAX):
                self.sim.schedule_at(
                    slot_end,
                    lambda a=assignment: self._static_slot_end(a))
        dyn_start = t0 + self.config.static_segment_length
        if self.config.n_minislots > 0:
            self.sim.schedule_at(dyn_start, self._run_dynamic_segment)
        next_cycle = t0 + self.config.cycle_length
        self.sim.schedule_at(next_cycle, lambda: self._advance_cycle())

    def _advance_cycle(self) -> None:
        self.cycle += 1
        self._cycle_start(self.sim.now)

    def _static_slot_end(self, assignment: StaticSlotAssignment) -> None:
        now = self.sim.now
        controller = self.controllers[assignment.node]
        msg = controller._static_buffers.pop(assignment.slot, None)
        if self.fault_model is not None and self.fault_model(assignment,
                                                             self.cycle):
            self.trace.log(now, "flexray.slot_lost", assignment.frame_name,
                           node=assignment.node, slot=assignment.slot)
            return
        if msg is None:
            # Null frame: the slot elapses, peers observe absence.
            self.trace.log(now, "flexray.null_frame", assignment.frame_name,
                           node=assignment.node, slot=assignment.slot)
            return
        msg.tx_start = now - self.config.slot_length
        msg.rx_time = now
        controller.tx_count += 1
        obs.count("flexray.static_tx")
        self.trace.log(now, "flexray.rx", assignment.frame_name,
                       node=assignment.node, slot=assignment.slot,
                       latency=msg.latency)
        for node, peer in self.controllers.items():
            if peer is not controller:
                peer._deliver(assignment.frame_name, msg, assignment.slot)

    def _run_dynamic_segment(self) -> None:
        """Arbitrate the whole dynamic segment at its start.

        Minislot counting is evaluated eagerly: frame IDs are visited in
        ascending order; each queued frame consumes ``ceil(tx_time /
        minislot)`` minislots if they fit, otherwise it stays queued for the
        next cycle (its minislots are *not* consumed — matching the
        protocol's per-ID slot counting).
        """
        t0 = self.sim.now
        tbit = bit_time(self.config.bitrate_bps)
        pending = []
        for controller in self.controllers.values():
            pending.extend(controller._dynamic_queue)
        pending.sort()
        used = 0
        sent = []
        for frame_id, seq, spec, msg in pending:
            frame_ns = (spec.size_bytes * 8 + 80) * tbit
            need = max(1, math.ceil(frame_ns / self.config.minislot_length))
            if used + need > self.config.n_minislots:
                # This and (per ID order) later frames wait; continue
                # scanning — a smaller later frame may still not fit since
                # minislot counting is strictly ID-ordered.
                break
            start = t0 + used * self.config.minislot_length
            end = start + need * self.config.minislot_length
            used += need
            sent.append((spec, msg, start, end))
        for spec, msg, start, end in sent:
            controller = self.controllers[msg.sender]
            controller._dynamic_queue.remove(
                (spec.frame_id, msg.seq, spec, msg))
            self.sim.schedule_at(
                end, lambda s=spec, m=msg, st=start: self._dynamic_rx(s, m, st))

    def _dynamic_rx(self, spec: DynamicFrameSpec, msg: Message,
                    start: int) -> None:
        now = self.sim.now
        msg.tx_start = start
        msg.rx_time = now
        controller = self.controllers[msg.sender]
        controller.tx_count += 1
        obs.count("flexray.dynamic_tx")
        self.trace.log(now, "flexray.rx_dynamic", spec.name, node=msg.sender,
                       frame_id=spec.frame_id, latency=msg.latency)
        for node, peer in self.controllers.items():
            if peer is not controller:
                peer._deliver(spec.name, msg, None)

    # ------------------------------------------------------------------
    def latencies(self, frame_name: str) -> list[int]:
        """Observed latencies of a frame (static and dynamic).

        Records without a ``latency`` key are skipped."""
        recs = (self.trace.records("flexray.rx", frame_name)
                + self.trace.records("flexray.rx_dynamic", frame_name))
        return [r.data["latency"] for r in recs if "latency" in r.data]

    def __repr__(self) -> str:
        return f"<FlexRayBus {self.name} cycle={self.cycle}>"
