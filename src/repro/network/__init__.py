"""Automotive communication substrates.

Event-triggered: :mod:`repro.network.can`.
Time-triggered: :mod:`repro.network.flexray`, :mod:`repro.network.ttp`,
:mod:`repro.network.tte`; guardians in :mod:`repro.network.guardian`.
"""

from repro.network.can import (CanBus, CanController, CanFrameSpec,
                               ERROR_FRAME_BITS, frame_bits, frame_time)
from repro.network.flexray import (CYCLE_COUNT_MAX, DynamicFrameSpec,
                                   FlexRayBus, FlexRayConfig,
                                   FlexRayController, StaticSlotAssignment)
from repro.network.guardian import SlotGuardian
from repro.network.message import Message
from repro.network.ttp import TtpCluster, TtpNode
from repro.network.tte import (TtEthernetSwitch, TtFrameSpec, TtWindow,
                               ethernet_frame_time)

__all__ = [
    "CanBus", "CanController", "CanFrameSpec", "ERROR_FRAME_BITS",
    "frame_bits", "frame_time",
    "CYCLE_COUNT_MAX", "DynamicFrameSpec", "FlexRayBus", "FlexRayConfig",
    "FlexRayController", "StaticSlotAssignment",
    "SlotGuardian", "Message", "TtpCluster", "TtpNode",
    "TtEthernetSwitch", "TtFrameSpec", "TtWindow", "ethernet_frame_time",
]
