"""TTP/C-style time-triggered cluster (Kopetz & Grünsteidl [12]).

Structure: a TDMA **round** gives every node exactly one slot; the cluster
repeats rounds indefinitely (the cluster cycle is one round here — cycle
multiplexing of different messages is left to the layer above).  Modelled
protocol mechanisms:

* **state broadcast**: each node transmits its buffer in its slot, every
  round, whether or not new data arrived (time-triggered semantics);
* **membership**: every node maintains a membership vector; a node that is
  silent (crashed) or whose slot is destroyed by interference drops out of
  the vector at its slot end and reintegrates after its next good slot;
* **bus guardian**: an independent :class:`~repro.network.guardian.SlotGuardian`
  per node gates transmissions to the node's own slot.  With guardians
  enabled a babbling node is contained; with guardians disabled its
  out-of-slot traffic destroys the slots of well-behaved nodes — the
  failure the paper's integrated architecture must exclude.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.network.guardian import SlotGuardian
from repro.network.message import Message
from repro.sim.clock import DriftingClock
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace


class TtpNode:
    """One cluster node: transmit buffer, fault flags, receive callbacks."""

    def __init__(self, cluster: "TtpCluster", name: str, slot_index: int):
        self.cluster = cluster
        self.name = name
        self.slot_index = slot_index
        self.guardian: Optional[SlotGuardian] = None
        self.clock = None  # DriftingClock, set by the cluster
        self.crashed = False
        self.babbling = False
        self._payload = None
        self._payload_time: Optional[int] = None
        self._rx_callbacks: list[Callable[[str, Message], None]] = []
        self.tx_count = 0

    def set_payload(self, payload) -> None:
        """Install the state this node broadcasts each round."""
        self._payload = payload
        self._payload_time = self.cluster.sim.now

    def on_receive(self, callback: Callable[[str, Message], None]) -> None:
        """Register a callback for other nodes' state broadcasts."""
        self._rx_callbacks.append(callback)

    def crash(self) -> None:
        """Fail-silent from now on."""
        self.crashed = True

    def recover(self) -> None:
        """End a fail-silent (crash) episode."""
        self.crashed = False

    def start_babbling(self) -> None:
        """Become a babbling idiot: transmit continuously, including in
        other nodes' slots (contained only by an enabled guardian)."""
        self.babbling = True

    def stop_babbling(self) -> None:
        """End a babbling-idiot episode."""
        self.babbling = False

    def _deliver(self, sender: str, msg: Message) -> None:
        for callback in self._rx_callbacks:
            callback(sender, msg)

    def __repr__(self) -> str:
        flags = []
        if self.crashed:
            flags.append("crashed")
        if self.babbling:
            flags.append("babbling")
        return f"<TtpNode {self.name} slot={self.slot_index} {flags}>"


class TtpCluster:
    """The TDMA round engine plus membership service."""

    def __init__(self, sim: Simulator, node_names: list[str],
                 slot_length: int, trace: Optional[Trace] = None,
                 name: str = "TTP", guardians_enabled: bool = True,
                 clock_drift_ppm: Optional[dict[str, float]] = None,
                 guard_time: Optional[int] = None,
                 resync_every_rounds: int = 1):
        if len(node_names) < 2:
            raise ConfigurationError("a TTP cluster needs >= 2 nodes")
        if len(set(node_names)) != len(node_names):
            raise ConfigurationError("duplicate node names")
        if slot_length <= 0:
            raise ConfigurationError("slot_length must be > 0")
        if resync_every_rounds <= 0:
            raise ConfigurationError("resync_every_rounds must be > 0")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self.slot_length = slot_length
        #: idle margin at each end of a slot; a node whose local clock
        #: strays beyond it transmits into a neighbour's slot.
        self.guard_time = (guard_time if guard_time is not None
                           else slot_length // 20)
        if not 0 <= 2 * self.guard_time < slot_length:
            raise ConfigurationError(
                f"guard_time {self.guard_time} too large for slot "
                f"{slot_length}")
        self.resync_every_rounds = resync_every_rounds
        self.nodes: dict[str, TtpNode] = {}
        drifts = clock_drift_ppm or {}
        for index, node_name in enumerate(node_names):
            node = TtpNode(self, node_name, index)
            node.clock = DriftingClock(drifts.get(node_name, 0.0))
            node.guardian = SlotGuardian(
                node_name,
                [(index * slot_length, slot_length)],
                period=slot_length * len(node_names),
                enabled=guardians_enabled)
            self.nodes[node_name] = node
        self._order = list(node_names)
        self.membership: set[str] = set(node_names)
        self.round = 0
        self.sync_errors = 0
        self._started = False

    @property
    def round_length(self) -> int:
        """Duration of one TDMA round over all nodes."""
        return self.slot_length * len(self._order)

    def node(self, name: str) -> TtpNode:
        """Look up a cluster node by name."""
        return self.nodes[name]

    def set_guardians(self, enabled: bool) -> None:
        """Enable/disable every node's bus guardian."""
        for node in self.nodes.values():
            node.guardian.enabled = enabled

    def start(self) -> None:
        """Begin the TDMA rounds at the current time."""
        if self._started:
            raise ConfigurationError(f"{self.name} already started")
        self._started = True
        self._schedule_slot(0)

    # ------------------------------------------------------------------
    def _schedule_slot(self, slot_in_round: int) -> None:
        self.sim.schedule(self.slot_length,
                          lambda: self._slot_end(slot_in_round))

    def _slot_end(self, slot_in_round: int) -> None:
        now = self.sim.now
        owner = self.nodes[self._order[slot_in_round]]
        slot_start = now - self.slot_length
        interference = self._interference(owner, slot_start)
        if owner.crashed:
            self._observe_silence(owner, now, reason="crash")
        elif interference:
            self.trace.log(now, "ttp.collision", owner.name,
                           caused_by=interference)
            self._observe_silence(owner, now, reason="collision")
        elif not self._clock_ok(owner, slot_start):
            self.sync_errors += 1
            self.trace.log(now, "ttp.sync_error", owner.name,
                           error=owner.clock.error_at(slot_start))
            self._observe_silence(owner, now, reason="sync_error")
        else:
            self._deliver_slot(owner, slot_start, now)
        next_slot = (slot_in_round + 1) % len(self._order)
        if next_slot == 0:
            self.round += 1
            if self.round % self.resync_every_rounds == 0:
                self._resynchronize(now)
        self._schedule_slot(next_slot)

    def _clock_ok(self, owner: TtpNode, slot_start: int) -> bool:
        """A node's transmission stays in its slot iff its local clock
        error is within the guard margin."""
        if owner.clock is None:
            return True
        return owner.clock.error_at(slot_start) <= self.guard_time

    def _resynchronize(self, now: int) -> None:
        """Clock synchronization round: members cancel their accumulated
        offsets (the rate error remains — precision grows again until
        the next resync)."""
        for node in self.nodes.values():
            if node.clock is not None and not node.crashed:
                node.clock.resynchronize(now)

    def _interference(self, owner: TtpNode, slot_start: int) -> Optional[str]:
        """Name of a babbling node whose traffic destroys this slot, if
        any.  A babbler transmitting in its *own* slot is legal."""
        for node in self.nodes.values():
            if node is owner or not node.babbling or node.crashed:
                continue
            if node.guardian.permit(slot_start):
                return node.name
            self.trace.log(slot_start, "ttp.guardian_block", node.name)
        return None

    def _deliver_slot(self, owner: TtpNode, slot_start: int,
                      now: int) -> None:
        msg = Message(f"{owner.name}.state", owner.name, owner._payload,
                      enqueue_time=owner._payload_time
                      if owner._payload_time is not None else slot_start)
        msg.tx_start = slot_start
        msg.rx_time = now
        owner.tx_count += 1
        self.trace.log(now, "ttp.rx", owner.name, round=self.round,
                       latency=msg.latency)
        if owner.name not in self.membership:
            self.membership.add(owner.name)
            self.trace.log(now, "ttp.membership_join", owner.name)
        for node in self.nodes.values():
            if node is not owner and not node.crashed:
                node._deliver(owner.name, msg)

    def _observe_silence(self, owner: TtpNode, now: int,
                         reason: str) -> None:
        if owner.name in self.membership:
            self.membership.remove(owner.name)
            self.trace.log(now, "ttp.membership_drop", owner.name,
                           reason=reason)

    # ------------------------------------------------------------------
    def reception_times(self, node_name: str) -> list[int]:
        """Timestamps at which a node's broadcasts were received."""
        return self.trace.times("ttp.rx", node_name)

    def __repr__(self) -> str:
        return (f"<TtpCluster {self.name} nodes={len(self.nodes)} "
                f"membership={sorted(self.membership)}>")
