"""Holistic distributed schedulability analysis.

The paper's Section 3 requires assessing end-to-end latencies "based on
distributed real-time schedulability analysis for FlexRay- and CAN
bus-based target architectures".  For event-driven chains this is the
classic holistic (jitter-propagation) analysis: a data-triggered task's
release jitter equals the worst-case response of whatever produces its
input, so per-resource analyses (task RTA per ECU, message RTA on the
bus) are iterated until the jitters reach a fixpoint.

Model:

* tasks live on named ECUs (fixed-priority per ECU);
* frames live on one CAN bus;
* a *link* ``producer -> consumer`` states that the consumer (task or
  frame) is released by the producer's completion, inheriting the
  producer's period and taking the producer's WCRT as release jitter;
* a *transaction* is a named chain of linked elements; because each
  element's jitter is measured from the transaction's external release,
  the final element's response time IS the end-to-end latency bound.

Monotonicity of the RTA recurrences in the jitter terms guarantees the
iteration converges (or provably diverges past a deadline/validity
bound, reported as unschedulable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.errors import AnalysisError
from repro.analysis import can_rta, rta
from repro.analysis.sensitivity import replace_spec
from repro.network.can import CanFrameSpec
from repro.osek.task import TaskSpec

MAX_ITERATIONS = 100


@dataclass
class HolisticResult:
    """Fixpoint outcome: per-element WCRTs and transaction latencies."""
    converged: bool
    iterations: int
    schedulable: bool
    task_wcrt: dict[str, int] = field(default_factory=dict)
    frame_wcrt: dict[str, int] = field(default_factory=dict)
    transaction_latency: dict[str, int] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)

    def wcrt(self, element: str) -> int:
        """WCRT of a task or frame by element name."""
        if element in self.task_wcrt:
            return self.task_wcrt[element]
        return self.frame_wcrt[element]


class HolisticModel:
    """A distributed system for holistic analysis."""

    def __init__(self, bitrate_bps: int = 500_000):
        self.bitrate_bps = bitrate_bps
        self._tasks: dict[str, tuple[str, TaskSpec]] = {}
        self._frames: dict[str, CanFrameSpec] = {}
        #: consumer element -> producer element.
        self._producer_of: dict[str, str] = {}
        self._transactions: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def add_task(self, ecu: str, spec: TaskSpec) -> None:
        """Register a task on an ECU (names are global across elements)."""
        if spec.name in self._tasks or spec.name in self._frames:
            raise AnalysisError(f"duplicate element {spec.name!r}")
        self._tasks[spec.name] = (ecu, spec)

    def add_frame(self, spec: CanFrameSpec) -> None:
        """Register a CAN frame on the shared bus."""
        if spec.name in self._tasks or spec.name in self._frames:
            raise AnalysisError(f"duplicate element {spec.name!r}")
        self._frames[spec.name] = spec

    def link(self, producer: str, consumer: str) -> None:
        """Declare that ``consumer`` is released by ``producer``'s
        completion (task->frame, frame->task, or task->task on
        different ECUs)."""
        for name in (producer, consumer):
            if name not in self._tasks and name not in self._frames:
                raise AnalysisError(f"unknown element {name!r}")
        if consumer in self._producer_of:
            raise AnalysisError(
                f"element {consumer!r} already has a producer")
        self._producer_of[consumer] = producer

    def transaction(self, name: str, elements: list[str]) -> None:
        """Declare a chain; consecutive elements must be linked."""
        if len(elements) < 1:
            raise AnalysisError(f"transaction {name}: empty chain")
        for producer, consumer in zip(elements, elements[1:]):
            if self._producer_of.get(consumer) != producer:
                raise AnalysisError(
                    f"transaction {name}: {producer!r} -> {consumer!r} "
                    f"is not a declared link")
        self._transactions[name] = list(elements)

    # ------------------------------------------------------------------
    def _inherited_period(self, element: str,
                          seen: Optional[set] = None) -> int:
        """Period of the chain head (linked elements inherit it)."""
        seen = seen if seen is not None else set()
        if element in seen:
            raise AnalysisError(f"link cycle through {element!r}")
        seen.add(element)
        producer = self._producer_of.get(element)
        if producer is not None:
            return self._inherited_period(producer, seen)
        if element in self._tasks:
            period = self._tasks[element][1].period
        else:
            period = self._frames[element].period
        if period is None:
            raise AnalysisError(
                f"chain head {element!r} needs a period")
        return period

    def solve(self, max_iterations: int = MAX_ITERATIONS
              ) -> HolisticResult:
        """Iterate per-resource analyses to the jitter fixpoint."""
        with obs.span("holistic.solve", category="analysis"):
            result = self._solve(max_iterations)
        obs.count("holistic.rounds", result.iterations)
        obs.count("holistic.solves")
        return result

    def _solve(self, max_iterations: int) -> HolisticResult:
        jitter: dict[str, int] = {
            name: (self._tasks[name][1].jitter if name in self._tasks
                   else self._frames[name].jitter)
            for name in list(self._tasks) + list(self._frames)}
        periods = {name: self._inherited_period(name)
                   for name in jitter}
        result = HolisticResult(converged=False, iterations=0,
                                schedulable=True)
        for iteration in range(1, max_iterations + 1):
            result.iterations = iteration
            result.failures = []
            task_wcrt, frame_wcrt = self._analyse_once(jitter, periods,
                                                       result)
            if result.failures:
                result.schedulable = False
                result.task_wcrt = task_wcrt
                result.frame_wcrt = frame_wcrt
                return result
            new_jitter = dict(jitter)
            for consumer, producer in self._producer_of.items():
                produced_wcrt = (task_wcrt.get(producer)
                                 if producer in self._tasks
                                 else frame_wcrt.get(producer))
                base = (self._tasks[consumer][1].jitter
                        if consumer in self._tasks
                        else self._frames[consumer].jitter)
                new_jitter[consumer] = base + produced_wcrt
            if new_jitter == jitter:
                result.converged = True
                result.task_wcrt = task_wcrt
                result.frame_wcrt = frame_wcrt
                self._fill_transactions(result)
                self._check_deadlines(result)
                return result
            jitter = new_jitter
        result.failures.append("no fixpoint within iteration budget")
        result.schedulable = False
        return result

    def _analyse_once(self, jitter, periods, result):
        task_wcrt: dict[str, int] = {}
        by_ecu: dict[str, list[TaskSpec]] = {}
        for name, (ecu, spec) in self._tasks.items():
            adjusted = replace_spec(spec, period=periods[name],
                                    jitter=jitter[name],
                                    deadline=spec.deadline)
            by_ecu.setdefault(ecu, []).append(adjusted)
        for ecu, specs in by_ecu.items():
            for spec in specs:
                try:
                    task_wcrt[spec.name] = rta.response_time(spec, specs)
                except AnalysisError as exc:
                    result.failures.append(f"task {spec.name}: {exc}")
        frames = [CanFrameSpec(f.name, f.can_id, dlc=f.dlc,
                               period=periods[name],
                               deadline=f.deadline, extended=f.extended,
                               jitter=jitter[name])
                  for name, f in self._frames.items()]
        frame_wcrt: dict[str, int] = {}
        for frame in frames:
            try:
                frame_wcrt[frame.name] = can_rta.response_time(
                    frame, frames, self.bitrate_bps)
            except AnalysisError as exc:
                result.failures.append(f"frame {frame.name}: {exc}")
        return task_wcrt, frame_wcrt

    def _fill_transactions(self, result: HolisticResult) -> None:
        for name, elements in self._transactions.items():
            result.transaction_latency[name] = result.wcrt(elements[-1])

    def _check_deadlines(self, result: HolisticResult) -> None:
        for name, (__, spec) in self._tasks.items():
            if spec.deadline is not None and \
                    result.task_wcrt[name] > spec.deadline:
                result.schedulable = False
                result.failures.append(
                    f"task {name}: WCRT {result.task_wcrt[name]} exceeds "
                    f"deadline {spec.deadline}")

    def __repr__(self) -> str:
        return (f"<HolisticModel tasks={len(self._tasks)} "
                f"frames={len(self._frames)} "
                f"transactions={len(self._transactions)}>")
