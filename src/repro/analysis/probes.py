"""Runtime probes for end-to-end latency measurement.

Analytic chain bounds (:mod:`repro.analysis.e2e`) need a measured
counterpart to be validated against.  A :class:`ChainProbe` timestamps a
datum where it is produced and observes it where it is consumed; the
observed latency distribution can then be compared with a
:class:`~repro.analysis.e2e.Chain` bound via :meth:`check_against`.

Typical use inside runnables (the probe is platform-agnostic — the same
code instruments a VFB run and a deployed run)::

    probe = ChainProbe("pedal-to-caliper")

    def sense(ctx):                       # producer runnable
        seq = next_sequence_number(ctx)
        probe.stamp(seq, ctx.now)
        ctx.write("out", "v", seq)

    def actuate(ctx):                     # consumer runnable
        probe.observe(ctx.read("in", "v"), ctx.now)
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.e2e import Chain
from repro.errors import AnalysisError
from repro.sim.trace import summarize


class ChainProbe:
    """Correlates production and consumption timestamps by key."""

    def __init__(self, name: str = "chain", max_pending: int = 100_000):
        self.name = name
        self.max_pending = max_pending
        self._stamps: dict = {}
        self.latencies: list[int] = []
        self.duplicates = 0
        self.unmatched = 0

    def stamp(self, key, now: int) -> None:
        """Record that datum ``key`` was produced at ``now``."""
        if key in self._stamps:
            self.duplicates += 1
        self._stamps[key] = now
        if len(self._stamps) > self.max_pending:
            raise AnalysisError(
                f"probe {self.name}: {self.max_pending} unconsumed stamps "
                f"— is the consumer wired?")

    def observe(self, key, now: int) -> Optional[int]:
        """Record consumption; returns the measured latency (None when
        the key was never stamped, e.g. an initial default value)."""
        produced = self._stamps.pop(key, None)
        if produced is None:
            self.unmatched += 1
            return None
        latency = now - produced
        self.latencies.append(latency)
        return latency

    @property
    def worst(self) -> Optional[int]:
        """Largest latency measured so far (None before any observation)."""
        return max(self.latencies) if self.latencies else None

    def summary(self) -> dict:
        """min/avg/max summary of the measured latencies."""
        return summarize(self.latencies)

    def check_against(self, chain: Chain) -> dict:
        """Compare measurements with an analytic chain bound."""
        if not self.latencies:
            raise AnalysisError(f"probe {self.name}: no measurements")
        bound = chain.worst_case_latency()
        worst = self.worst
        return {
            "probe": self.name,
            "chain": chain.name,
            "observed_max": worst,
            "analytic_bound": bound,
            "bound_holds": worst <= bound,
            "tightness": bound / worst if worst else None,
        }

    def __repr__(self) -> str:
        return (f"<ChainProbe {self.name} n={len(self.latencies)} "
                f"worst={self.worst}>")
