"""End-to-end latency analysis over distributed cause-effect chains.

Section 3's goal: "assess realizability of end-to-end latencies at system
level".  A chain is a sequence of :class:`Stage` objects — task
executions and bus transmissions — each with a worst-case response bound
(from :mod:`repro.analysis.rta` / ``can_rta`` / ``flexray_rta``) and an
activation semantics:

* ``EVENT`` — the stage is activated by its predecessor's output (data-
  driven task, direct-mode frame): it contributes its response bound;
* ``SAMPLED`` — the stage runs on its own periodic clock and *samples*
  the predecessor's output (implicit-communication periodic task,
  periodic frame): the value may just miss a sampling point, adding one
  full period on top of the response bound.

The composition rule gives the classic worst-case data-age bound for
mixed event/time-triggered chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AnalysisError

EVENT = "event"
SAMPLED = "sampled"


@dataclass(frozen=True)
class Stage:
    """One hop of a cause-effect chain."""

    name: str
    response_bound: int
    semantics: str = EVENT
    period: Optional[int] = None
    best_case: int = 0

    def __post_init__(self):
        if self.semantics not in (EVENT, SAMPLED):
            raise AnalysisError(
                f"stage {self.name}: unknown semantics "
                f"{self.semantics!r}")
        if self.response_bound < 0:
            raise AnalysisError(
                f"stage {self.name}: negative response bound")
        if self.semantics == SAMPLED and (self.period is None
                                          or self.period <= 0):
            raise AnalysisError(
                f"stage {self.name}: sampled stages need a period")
        if not 0 <= self.best_case <= self.response_bound:
            raise AnalysisError(
                f"stage {self.name}: need 0 <= best_case <= "
                f"response_bound")


class Chain:
    """A named end-to-end cause-effect chain."""

    def __init__(self, name: str, stages: list[Stage]):
        if not stages:
            raise AnalysisError(f"chain {name}: needs at least one stage")
        self.name = name
        self.stages = list(stages)

    def worst_case_latency(self) -> int:
        """Upper bound on input-event to output latency (data age)."""
        total = 0
        for stage in self.stages:
            total += stage.response_bound
            if stage.semantics == SAMPLED:
                total += stage.period
        return total

    def best_case_latency(self) -> int:
        """Lower bound: every stage at its best case, perfect sampling."""
        return sum(stage.best_case for stage in self.stages)

    def breakdown(self) -> list[dict]:
        """Per-stage contribution table for reports."""
        rows = []
        for stage in self.stages:
            sampling = stage.period if stage.semantics == SAMPLED else 0
            rows.append({
                "stage": stage.name,
                "semantics": stage.semantics,
                "response": stage.response_bound,
                "sampling": sampling,
                "total": stage.response_bound + sampling,
            })
        return rows

    def check_budget(self, budget: int) -> bool:
        """Realizability check against an end-to-end latency budget."""
        return self.worst_case_latency() <= budget

    def dominant_stage(self) -> str:
        """The stage contributing most to the bound — where to optimize."""
        rows = self.breakdown()
        return max(rows, key=lambda r: r["total"])["stage"]

    def __repr__(self) -> str:
        return (f"<Chain {self.name} stages={len(self.stages)} "
                f"wc={self.worst_case_latency()}>")
