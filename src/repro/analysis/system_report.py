"""Prior-to-implementation timing report for system models.

Paper, Section 2, limitation 2: "the handling of timing and scheduling
requirements is mandatory … the extension of the AUTOSAR meta-model and
the templates is a must for the implementation of system generators
enabling the possibility for prior to implementation system configuration
checks."

:func:`timing_report` is that system generator's analysis half: from a
validated :class:`~repro.core.system.SystemModel` — *before anything is
built or simulated* — it derives exactly the artefacts the RTE generator
would produce (tasks with RM priorities, one I-PDU per cross-ECU source
port with deterministic CAN ids), assembles the holistic model with the
cause-effect links implied by the connectors and the runnables' declared
write accesses, and solves it.  The result reports per-task and per-frame
WCRTs, end-to-end latencies for every cross-ECU data path, and the
issues that block analysis (missing periods, undeclared writers — the
very template data the paper says is missing from AUTOSAR).

Scope: single-domain CAN deployments (the analysis target of Section 3's
CAN branch); other configurations are reported as not analysable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.holistic import HolisticModel, HolisticResult
from repro.core.interface import SenderReceiverInterface
from repro.core.runnable import DataReceivedEvent, TimingEvent
from repro.core.rte import FIRST_CAN_ID, assign_rm_priorities
from repro.errors import AnalysisError
from repro.network.can import CanFrameSpec
from repro.osek.task import TaskSpec


@dataclass
class TimingReport:
    """Outcome of the prior-to-implementation analysis."""

    analysable: bool
    schedulable: bool = False
    task_wcrt: dict[str, int] = field(default_factory=dict)
    frame_wcrt: dict[str, int] = field(default_factory=dict)
    #: "<writer task> -> <frame> -> <consumer task>" -> latency bound.
    chain_latency: dict[str, int] = field(default_factory=dict)
    issues: list[str] = field(default_factory=list)
    iterations: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.analysable and self.schedulable


def timing_report(system) -> TimingReport:
    """Analyse a system model without building it."""
    report = TimingReport(analysable=True)
    issues = system.validate()
    if issues:
        return TimingReport(analysable=False,
                            issues=[f"configuration: {i}" for i in issues])
    domains = {spec.domain for spec in system.ecus.values()}
    kinds = {system._domain_kind(domain) for domain in domains}
    if len(domains) > 1 or (kinds - {None} and kinds != {"can"}):
        return TimingReport(
            analysable=False,
            issues=["timing report currently supports single-domain CAN "
                    "deployments only"])
    bitrate = system.bus_params.get("bitrate_bps", 500_000) \
        if system.bus_kind == "can" else 500_000

    instances, connectors = system.root.flatten()
    by_name = {i.name: i for i in instances}
    model = HolisticModel(bitrate)

    # --- plan the cross-ECU PDUs, writers and consumers ------------------
    cross_ports: dict[tuple, list] = {}
    local_connectors: list = []
    for connector in connectors:
        src = by_name[connector.source.instance]
        port = src.port(connector.source.port)
        if not isinstance(port.interface, SenderReceiverInterface):
            continue  # remote C/S request frames are not chain-analysed
        src_ecu = system.mapping[connector.source.instance]
        dst_ecu = system.mapping[connector.target.instance]
        if src_ecu == dst_ecu:
            local_connectors.append(connector)
            continue
        key = (connector.source.instance, connector.source.port)
        cross_ports.setdefault(key, []).append(connector.target)
    if not cross_ports:
        report.issues.append("no cross-ECU sender-receiver traffic; "
                             "per-ECU task analysis only")

    next_id = FIRST_CAN_ID
    used = set(system.can_ids.values())
    frames: dict[str, CanFrameSpec] = {}
    writer_of_pdu: dict[str, str] = {}
    consumers_of_pdu: dict[str, list[str]] = {}
    for (instance_name, port_name), targets in sorted(cross_ports.items()):
        pdu_name = f"{instance_name}.{port_name}"
        instance = by_name[instance_name]
        port = instance.port(port_name)
        bits = sum(t.width_bits + 1
                   for t in port.interface.elements.values())
        can_id = system.can_ids.get(pdu_name)
        if can_id is None:
            while next_id in used:
                next_id += 1
            can_id = next_id
            used.add(can_id)
        elements = sorted(port.interface.elements)
        writer = instance.component.writer_of(port_name, elements[0])
        if writer is None:
            report.issues.append(
                f"{pdu_name}: no runnable declares writing "
                f"{port_name}.{elements[0]} — add `writes=` template "
                f"data to analyse this chain (frame excluded)")
            continue
        frames[pdu_name] = CanFrameSpec(pdu_name, can_id,
                                        dlc=min(8, (bits + 7) // 8))
        writer_of_pdu[pdu_name] = f"{instance_name}.{writer.name}"
        for target in targets:
            target_instance = by_name[target.instance]
            for runnable in target_instance.component.runnables:
                trigger = runnable.trigger
                if (isinstance(trigger, DataReceivedEvent)
                        and trigger.port == target.port):
                    consumers_of_pdu.setdefault(pdu_name, []).append(
                        f"{target.instance}.{runnable.name}")
    # Same-ECU data-triggered consumers are anchored by a direct
    # task -> task link (no bus hop).
    local_links: list[tuple[str, str]] = []
    for connector in local_connectors:
        instance = by_name[connector.source.instance]
        port = instance.port(connector.source.port)
        elements = sorted(port.interface.elements)
        writer = instance.component.writer_of(connector.source.port,
                                              elements[0])
        if writer is None:
            report.issues.append(
                f"{connector.source}: no declared writer — local chain "
                f"through it not analysed")
            continue
        writer_task = f"{connector.source.instance}.{writer.name}"
        target_instance = by_name[connector.target.instance]
        for runnable in target_instance.component.runnables:
            trigger = runnable.trigger
            if (isinstance(trigger, DataReceivedEvent)
                    and trigger.port == connector.target.port):
                local_links.append(
                    (writer_task,
                     f"{connector.target.instance}.{runnable.name}"))

    anchored_consumers = {consumer
                          for consumers in consumers_of_pdu.values()
                          for consumer in consumers}
    anchored_consumers |= {consumer for __, consumer in local_links}

    # --- tasks, with the RTE's priority assignment -----------------------
    plans: dict[str, list] = {}
    for instance in instances:
        ecu = system.mapping[instance.name]
        for runnable in instance.component.runnables:
            plans.setdefault(ecu, []).append((instance.name, runnable))
    for ecu, plan in plans.items():
        priorities = assign_rm_priorities(system.ecus[ecu].priorities,
                                          plan)
        for instance_name, runnable in plan:
            task_name = f"{instance_name}.{runnable.name}"
            trigger = runnable.trigger
            if isinstance(trigger, TimingEvent):
                spec = TaskSpec(task_name, wcet=runnable.wcet,
                                period=trigger.period,
                                offset=trigger.offset,
                                priority=priorities[task_name])
            elif task_name in anchored_consumers:
                spec = TaskSpec(task_name, wcet=runnable.wcet,
                                priority=priorities[task_name],
                                deadline=None)
            else:
                report.issues.append(
                    f"{task_name}: event-activated with no analysable "
                    f"activation source; excluded — remaining WCRTs do "
                    f"not account for its interference")
                continue
            model.add_task(ecu, spec)

    # --- local task -> task links -----------------------------------------
    for writer_task, consumer_task in sorted(set(local_links)):
        try:
            model.link(writer_task, consumer_task)
        except AnalysisError:
            report.issues.append(
                f"{consumer_task}: fed by more than one producer; chain "
                f"kept for its first producer")
            continue
        model.transaction(f"{writer_task} -> {consumer_task}",
                          [writer_task, consumer_task])

    # --- frames, links and transactions ----------------------------------
    for pdu_name, frame in sorted(frames.items()):
        model.add_frame(frame)
        writer_task = writer_of_pdu[pdu_name]
        model.link(writer_task, pdu_name)
        for consumer_task in consumers_of_pdu.get(pdu_name, []):
            try:
                model.link(pdu_name, consumer_task)
            except AnalysisError:
                report.issues.append(
                    f"{consumer_task}: fed by more than one frame; "
                    f"chain kept for its first producer")
                continue
            model.transaction(
                f"{writer_task} -> {pdu_name} -> {consumer_task}",
                [writer_task, pdu_name, consumer_task])

    result: HolisticResult = model.solve()
    report.schedulable = result.schedulable and result.converged
    report.iterations = result.iterations
    report.task_wcrt = result.task_wcrt
    report.frame_wcrt = result.frame_wcrt
    report.chain_latency = result.transaction_latency
    report.issues.extend(result.failures)
    return report


# ---------------------------------------------------------------------------
# Robustness reporting (fault-campaign results)
# ---------------------------------------------------------------------------
def robustness_report(campaign) -> dict:
    """Condense a fault-campaign outcome into report rows.

    Takes a :class:`~repro.faults.campaign.CampaignReport` and returns
    the summary plus a per-fault-kind breakdown — the robustness
    counterpart of :func:`timing_report`: where the timing report proves
    deadlines *before* implementation, this proves detection,
    containment and recovery *after* injection.

    The row carries the campaign's order-independent ``digest``, so an
    archived report identifies the exact cell outcomes it was built
    from — the same digest any executor (serial, ``--jobs N``, resumed)
    prints for those cells.
    """
    from repro.sim.trace import summarize

    by_kind: dict[str, dict] = {}
    for result in campaign.results:
        bucket = by_kind.setdefault(result.cell.kind, {
            "cells": 0, "detected": 0, "contained": 0, "recoverable": 0,
            "recovered": 0, "latencies": []})
        bucket["cells"] += 1
        bucket["detected"] += result.detected
        bucket["contained"] += result.contained
        if result.cell.duration is not None:
            bucket["recoverable"] += 1
            bucket["recovered"] += result.recovered
        if result.detection_latency is not None:
            bucket["latencies"].append(result.detection_latency)
    kinds = {
        kind: {
            "cells": b["cells"],
            "detected": b["detected"],
            "contained": b["contained"],
            "recovered": (f"{b['recovered']}/{b['recoverable']}"
                          if b["recoverable"] else "n/a"),
            "detection_latency": summarize(b["latencies"]),
        }
        for kind, b in sorted(by_kind.items())
    }
    return {"summary": campaign.summary(), "by_kind": kinds,
            "digest": campaign.digest()}


def format_robustness(report: dict) -> str:
    """Human-readable rendering of :func:`robustness_report` output."""
    from repro.units import fmt_time

    summary = report["summary"]

    def rate(value) -> str:
        return "n/a" if value is None else f"{100 * value:.0f}%"

    lines = [
        f"cells              : {summary['cells']}",
        f"detection rate     : {rate(summary['detection_rate'])}",
        f"containment rate   : {rate(summary['containment_rate'])}",
        f"recovery rate      : {rate(summary['recovery_rate'])}",
    ]
    latency = summary["detection_latency"]
    if latency["count"]:
        lines.append(f"detection latency  : max "
                     f"{fmt_time(latency['max'])}, "
                     f"avg {fmt_time(round(latency['avg']))}")
    recovery = summary["recovery_latency"]
    if recovery["count"]:
        lines.append(f"recovery latency   : max "
                     f"{fmt_time(recovery['max'])}")
    if summary["undetected"]:
        lines.append(f"UNDETECTED         : {summary['undetected']}")
    if summary["escaped"]:
        lines.append(f"escaped containment: {summary['escaped']}")
    lines.append("per-kind:")
    for kind, row in report["by_kind"].items():
        latency = row["detection_latency"]
        worst = fmt_time(latency["max"]) if latency["count"] else "-"
        lines.append(
            f"  {kind:<16} cells={row['cells']} "
            f"detected={row['detected']}/{row['cells']} "
            f"contained={row['contained']}/{row['cells']} "
            f"recovered={row['recovered']} worst-detect={worst}")
    return "\n".join(lines)
