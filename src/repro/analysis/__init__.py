"""Timing analysis: task/message schedulability, isolation bounds,
end-to-end latency, sensitivity, and TT schedule synthesis."""

from repro.analysis import can_rta, flexray_rta, rta
from repro.analysis.e2e import Chain, EVENT, SAMPLED, Stage
from repro.analysis.holistic import HolisticModel, HolisticResult
from repro.analysis.probes import ChainProbe
from repro.analysis.system_report import (TimingReport, format_robustness,
                                          robustness_report, timing_report)
from repro.analysis.rta import (RtaResult, analyze, blocking_time,
                                liu_layland_bound, response_time,
                                utilization)
from repro.analysis.sensitivity import (admissible_new_frame,
                                        admissible_new_task,
                                        critical_bitrate,
                                        critical_scaling_factor,
                                        replace_spec, task_slack)
from repro.analysis.tdma_bound import (periodic_server_supply,
                                       response_bound,
                                       server_response_bound, tdma_supply,
                                       tdma_response_bound)
from repro.analysis.ttschedule import (TtEntry, TtPlacement, TtSchedule,
                                       build_schedule, conflict_free)

__all__ = [
    "can_rta", "flexray_rta", "rta",
    "Chain", "ChainProbe", "EVENT", "SAMPLED", "Stage",
    "HolisticModel", "HolisticResult", "TimingReport", "timing_report",
    "format_robustness", "robustness_report",
    "RtaResult", "analyze", "blocking_time", "liu_layland_bound",
    "response_time", "utilization",
    "admissible_new_frame", "admissible_new_task", "critical_bitrate",
    "critical_scaling_factor", "replace_spec", "task_slack",
    "periodic_server_supply", "response_bound", "server_response_bound",
    "tdma_supply", "tdma_response_bound",
    "TtEntry", "TtPlacement", "TtSchedule", "build_schedule",
    "conflict_free",
]
