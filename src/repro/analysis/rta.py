"""Fixed-priority response-time analysis for ECU task sets.

Classic Joseph/Pandya recurrence with release jitter and blocking:

    w_i = C_i + B_i + sum_{j in hp(i)} ceil((w_i + J_j) / T_j) * C_j
    R_i = w_i + J_i

valid for constrained deadlines (``R_i <= T_i``); the analyser raises
:class:`~repro.errors.AnalysisError` when the recurrence leaves that
validity region instead of returning an optimistic number.

Inputs are the same :class:`~repro.osek.task.TaskSpec` objects the
simulated kernel runs, so analytic bounds and simulated traces are always
about the same task set (experiment E4 cross-checks them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.errors import AnalysisError
from repro.osek.resource import OsekResource
from repro.osek.task import TaskSpec

MAX_ITERATIONS = 10_000


@dataclass
class RtaResult:
    """Per-task WCRT bounds plus schedulability verdict."""

    wcrt: dict[str, int] = field(default_factory=dict)
    schedulable: bool = True
    unschedulable_tasks: list[str] = field(default_factory=list)

    def slack(self, spec: TaskSpec) -> Optional[int]:
        """Deadline minus WCRT (None when the task has no deadline)."""
        if spec.deadline is None:
            return None
        return spec.deadline - self.wcrt[spec.name]


def utilization(tasks: list[TaskSpec]) -> float:
    """Total CPU utilization of the periodic tasks."""
    return sum(t.utilization for t in tasks)


def blocking_time(task: TaskSpec, tasks: list[TaskSpec],
                  critical_sections: Optional[dict[str, list[tuple]]] = None
                  ) -> int:
    """ICPP blocking bound: the longest critical section of any
    lower-priority task on a resource whose ceiling reaches ``task``.

    ``critical_sections`` maps task name -> list of
    ``(resource, duration)`` pairs.
    """
    if not critical_sections:
        return 0
    worst = 0
    for other in tasks:
        if other.priority >= task.priority:
            continue
        for resource, duration in critical_sections.get(other.name, []):
            ceiling = (resource.ceiling if isinstance(resource, OsekResource)
                       else resource)
            if ceiling >= task.priority:
                worst = max(worst, duration)
    return worst


def response_time(task: TaskSpec, tasks: list[TaskSpec],
                  blocking: int = 0) -> int:
    """WCRT of ``task`` among ``tasks`` under preemptive fixed priority.

    Raises :class:`AnalysisError` if the recurrence exceeds the task's
    period (analysis validity) or deadline ceiling, or fails to converge.
    """
    if task.period is None:
        raise AnalysisError(
            f"task {task.name}: response-time analysis needs a period "
            f"(model sporadic tasks with their minimum inter-arrival)")
    higher = [t for t in tasks
              if t.name != task.name and t.priority > task.priority]
    for t in higher:
        if t.period is None:
            raise AnalysisError(
                f"task {t.name}: interfering task needs a period")
    ceiling = task.period
    w = task.wcet + blocking
    # ``rta.fixpoint_iterations`` counts iterations on *every* exit —
    # convergence and both divergence paths — so fixpoint-cost and
    # cache-hit-rate metrics see pathological task sets instead of
    # under-reporting exactly the expensive cases.  Divergent exits
    # additionally bump ``rta.divergences`` (and never
    # ``rta.tasks_analyzed``, which stays a success counter).
    for iteration in range(1, MAX_ITERATIONS + 1):
        interference = sum(
            -(-(w + t.jitter) // t.period) * t.wcet for t in higher)
        w_next = task.wcet + blocking + interference
        if w_next > ceiling:
            obs.count("rta.fixpoint_iterations", iteration)
            obs.count("rta.divergences")
            raise AnalysisError(
                f"task {task.name}: busy period exceeds its period "
                f"({w_next} > {ceiling}); the task set is unschedulable "
                f"at this priority or needs busy-period analysis")
        if w_next == w:
            obs.count("rta.fixpoint_iterations", iteration)
            obs.count("rta.tasks_analyzed")
            return w + task.jitter
        w = w_next
    obs.count("rta.fixpoint_iterations", MAX_ITERATIONS)
    obs.count("rta.divergences")
    raise AnalysisError(
        f"task {task.name}: recurrence did not converge")


def analyze(tasks: list[TaskSpec],
            critical_sections: Optional[dict] = None) -> RtaResult:
    """Analyse a whole task set; never raises for individual
    unschedulable tasks — they are reported in the result."""
    result = RtaResult()
    for task in tasks:
        blocking = blocking_time(task, tasks, critical_sections)
        try:
            wcrt = response_time(task, tasks, blocking)
        except AnalysisError:
            result.schedulable = False
            result.unschedulable_tasks.append(task.name)
            result.wcrt[task.name] = -1
            continue
        result.wcrt[task.name] = wcrt
        if task.deadline is not None and wcrt > task.deadline:
            result.schedulable = False
            result.unschedulable_tasks.append(task.name)
    return result


def liu_layland_bound(n: int) -> float:
    """Rate-monotonic utilization bound ``n(2^{1/n} - 1)``."""
    if n <= 0:
        raise AnalysisError("need at least one task")
    return n * (2 ** (1.0 / n) - 1)
