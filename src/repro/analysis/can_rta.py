"""CAN message response-time analysis.

The schedulability analysis for CAN the paper's Section 3 relies on for
"distributed real-time schedulability analysis for … CAN bus-based target
architectures".  For a frame ``m``:

    w_m = B_m + sum_{k in hp(m)} ceil((w_m + J_k + t_bit) / T_k) * C_k
    R_m = J_m + w_m + C_m

where ``B_m`` is the longest lower-priority frame (non-preemptive
blocking) and ``C_m`` the worst-case stuffed transmission time.  The
recurrence is exact for ``R_m <= T_m`` (Davis et al. corrected analysis,
first instance of the busy period); outside that region the analyser
raises rather than report an optimistic bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.network.can import CanFrameSpec
from repro.units import bit_time

MAX_ITERATIONS = 10_000


@dataclass
class CanRtaResult:
    """Per-frame WCRT bounds plus bus-level verdicts."""
    wcrt: dict[str, int] = field(default_factory=dict)
    schedulable: bool = True
    unschedulable_frames: list[str] = field(default_factory=list)
    utilization: float = 0.0


def transmission_time(frame: CanFrameSpec, bitrate_bps: int) -> int:
    """Worst-case (fully stuffed) wire time of one frame."""
    return frame.bits() * bit_time(bitrate_bps)


def bus_utilization(frames: list[CanFrameSpec], bitrate_bps: int) -> float:
    """Fraction of wire time the periodic frame set consumes."""
    total = 0.0
    for frame in frames:
        if frame.period is None:
            raise AnalysisError(
                f"frame {frame.name}: needs a period for utilization")
        total += transmission_time(frame, bitrate_bps) / frame.period
    return total


def blocking_time(frame: CanFrameSpec, frames: list[CanFrameSpec],
                  bitrate_bps: int) -> int:
    """Longest lower-priority frame that may be mid-transmission."""
    lower = [transmission_time(f, bitrate_bps) for f in frames
             if f.can_id > frame.can_id]
    return max(lower, default=0)


def response_time(frame: CanFrameSpec, frames: list[CanFrameSpec],
                  bitrate_bps: int) -> int:
    """WCRT of one frame (queueing + transmission, including its own
    jitter)."""
    if frame.period is None:
        raise AnalysisError(f"frame {frame.name}: needs a period")
    tbit = bit_time(bitrate_bps)
    c_m = transmission_time(frame, bitrate_bps)
    higher = [f for f in frames
              if f.can_id < frame.can_id and f.name != frame.name]
    for f in higher:
        if f.period is None:
            raise AnalysisError(f"frame {f.name}: needs a period")
    w = blocking_time(frame, frames, bitrate_bps)
    for __ in range(MAX_ITERATIONS):
        interference = sum(
            -(-(w + f.jitter + tbit) // f.period)
            * transmission_time(f, bitrate_bps)
            for f in higher)
        w_next = blocking_time(frame, frames, bitrate_bps) + interference
        if w_next + c_m + frame.jitter > frame.period:
            raise AnalysisError(
                f"frame {frame.name}: response exceeds its period; the "
                f"simple recurrence is only exact for R <= T")
        if w_next == w:
            return frame.jitter + w + c_m
        w = w_next
    raise AnalysisError(f"frame {frame.name}: recurrence did not converge")


def analyze(frames: list[CanFrameSpec], bitrate_bps: int) -> CanRtaResult:
    """Analyse a frame set; per-frame failures are reported, not raised."""
    ids = [f.can_id for f in frames]
    if len(set(ids)) != len(ids):
        raise AnalysisError("duplicate CAN identifiers in the frame set")
    result = CanRtaResult()
    result.utilization = bus_utilization(frames, bitrate_bps)
    for frame in frames:
        try:
            wcrt = response_time(frame, frames, bitrate_bps)
        except AnalysisError:
            result.schedulable = False
            result.unschedulable_frames.append(frame.name)
            result.wcrt[frame.name] = -1
            continue
        result.wcrt[frame.name] = wcrt
        deadline = frame.deadline if frame.deadline is not None \
            else frame.period
        if wcrt > deadline:
            result.schedulable = False
            result.unschedulable_frames.append(frame.name)
    return result
