"""Response-time bounds under temporal partitioning.

Strict TDMA CPU partitions and deferrable servers deliver *supply bound
functions* (sbf): the minimum CPU time a partition receives in any window
of length ``t``.  A demand ``C`` is served within the smallest ``t`` with
``sbf(t) >= C`` — a bound that is independent of every other partition's
behaviour, which is the analytical face of timing isolation (experiments
E1/E2 quantify the latency cost).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import AnalysisError
from repro.osek.tdma import TdmaScheduler


def tdma_supply(scheduler: TdmaScheduler, partition: str
                ) -> Callable[[int], int]:
    """Supply bound function of one partition of a TDMA schedule.

    Computed exactly by sliding the interval start over every phase at
    which supply can be minimal (window edges) across one major frame.
    """
    windows = [w for w in scheduler.windows if w.partition == partition]
    if not windows:
        raise AnalysisError(f"partition {partition!r} owns no window")
    frame = scheduler.major_frame

    def supplied(start: int, length: int) -> int:
        """CPU time granted in [start, start+length) (absolute phase)."""
        total = 0
        first_frame = start // frame
        last_frame = (start + length) // frame
        for k in range(first_frame, last_frame + 1):
            base = k * frame
            for window in windows:
                lo = max(start, base + window.start)
                hi = min(start + length, base + window.end)
                if hi > lo:
                    total += hi - lo
        return total

    candidate_phases = sorted({w.end % frame for w in windows}
                              | {w.start % frame for w in windows})

    def sbf(t: int) -> int:
        if t <= 0:
            return 0
        return min(supplied(phase, t) for phase in candidate_phases)

    return sbf


def periodic_server_supply(budget: int, period: int
                           ) -> Callable[[int], int]:
    """Classic sbf of a periodic/deferrable server ``(Q, P)``:

        sbf(t) = max(0, floor((t - (P - Q)) / P) * Q
                     + min(Q, (t - (P - Q)) mod P ... ))

    implemented in the standard piecewise linear form with the worst-case
    initial blackout of ``2(P - Q)``.
    """
    if not 0 < budget <= period:
        raise AnalysisError("need 0 < budget <= period")
    blackout = 2 * (period - budget)

    def sbf(t: int) -> int:
        if t <= blackout:
            return 0
        remaining = t - blackout
        full = remaining // period
        partial = min(budget, remaining - full * period)
        return full * budget + partial

    return sbf


def response_bound(demand: int, sbf: Callable[[int], int],
                   horizon: int) -> int:
    """Smallest ``t <= horizon`` with ``sbf(t) >= demand``.

    Binary search over the (non-decreasing) supply function.
    """
    if demand <= 0:
        raise AnalysisError("demand must be > 0")
    if sbf(horizon) < demand:
        raise AnalysisError(
            f"demand {demand} not supplied within horizon {horizon}")
    lo, hi = 1, horizon
    while lo < hi:
        mid = (lo + hi) // 2
        if sbf(mid) >= demand:
            hi = mid
        else:
            lo = mid + 1
    return lo


def tdma_response_bound(scheduler: TdmaScheduler, partition: str,
                        demand: int, period: Optional[int] = None,
                        max_activations: int = 1) -> int:
    """WCRT of the highest-priority task of a TDMA partition via a
    multi-activation busy window over the partition supply.

    With ``max_activations == 1`` this is the classic single-demand
    bound: the smallest ``t`` with ``sbf(t) >= demand``.  With queued
    re-activations allowed (``max_activations > 1``) that bound is
    *unsound* under partition overload: when one period's supply falls
    short of ``demand``, backlog accumulates across major frames and a
    later activation's response exceeds the single-demand figure.  The
    busy-window iteration charges ``q`` queued activations at once —
    ``F_q = min{t : sbf(t) >= q * demand}`` — and the response of the
    ``q``-th activation, released ``(q-1) * period`` into the window,
    is ``F_q - (q-1) * period``.  The window closes at the first ``q``
    with ``F_q <= q * period`` (supply caught up before the next
    release).  If it never closes within ``max_activations``, ``F_N``
    (``N = max_activations``) is still sound: the kernel sheds any
    activation arriving while ``N`` jobs are pending, so every
    *admitted* job waits behind at most ``N * demand`` of same-task
    work, all of it supplied within ``F_N`` of the backlog's start.
    """
    windows = [w for w in scheduler.windows if w.partition == partition]
    if not windows:
        raise AnalysisError(f"partition {partition!r} owns no window")
    if max_activations < 1:
        raise AnalysisError("max_activations must be >= 1")
    capacity_per_frame = sum(w.length for w in windows)
    sbf = tdma_supply(scheduler, partition)

    def finish_time(q: int) -> int:
        total = q * demand
        frames_needed = -(-total // capacity_per_frame) + 2
        return response_bound(total, sbf,
                              frames_needed * scheduler.major_frame)

    if max_activations == 1:
        return finish_time(1)
    if period is None:
        # No release period known: charge the full shedding-capped
        # backlog in one go (conservative but sound).
        return finish_time(max_activations)
    worst = 0
    f_q = 0
    for q in range(1, max_activations + 1):
        f_q = finish_time(q)
        worst = max(worst, f_q - (q - 1) * period)
        if f_q <= q * period:
            return worst
    # Busy window never closed: shedding caps the backlog at
    # max_activations jobs, and F_N dominates every F_q - (q-1)*period.
    return f_q


def server_response_bound(budget: int, period: int, demand: int) -> int:
    """WCRT of a demand served by a deferrable server ``(Q, P)``."""
    frames_needed = -(-demand // budget) + 3
    horizon = frames_needed * period + 2 * period
    return response_bound(demand, periodic_server_supply(budget, period),
                          horizon)
