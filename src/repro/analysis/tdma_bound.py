"""Response-time bounds under temporal partitioning.

Strict TDMA CPU partitions and deferrable servers deliver *supply bound
functions* (sbf): the minimum CPU time a partition receives in any window
of length ``t``.  A demand ``C`` is served within the smallest ``t`` with
``sbf(t) >= C`` — a bound that is independent of every other partition's
behaviour, which is the analytical face of timing isolation (experiments
E1/E2 quantify the latency cost).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AnalysisError
from repro.osek.tdma import TdmaScheduler


def tdma_supply(scheduler: TdmaScheduler, partition: str
                ) -> Callable[[int], int]:
    """Supply bound function of one partition of a TDMA schedule.

    Computed exactly by sliding the interval start over every phase at
    which supply can be minimal (window edges) across one major frame.
    """
    windows = [w for w in scheduler.windows if w.partition == partition]
    if not windows:
        raise AnalysisError(f"partition {partition!r} owns no window")
    frame = scheduler.major_frame

    def supplied(start: int, length: int) -> int:
        """CPU time granted in [start, start+length) (absolute phase)."""
        total = 0
        first_frame = start // frame
        last_frame = (start + length) // frame
        for k in range(first_frame, last_frame + 1):
            base = k * frame
            for window in windows:
                lo = max(start, base + window.start)
                hi = min(start + length, base + window.end)
                if hi > lo:
                    total += hi - lo
        return total

    candidate_phases = sorted({w.end % frame for w in windows}
                              | {w.start % frame for w in windows})

    def sbf(t: int) -> int:
        if t <= 0:
            return 0
        return min(supplied(phase, t) for phase in candidate_phases)

    return sbf


def periodic_server_supply(budget: int, period: int
                           ) -> Callable[[int], int]:
    """Classic sbf of a periodic/deferrable server ``(Q, P)``:

        sbf(t) = max(0, floor((t - (P - Q)) / P) * Q
                     + min(Q, (t - (P - Q)) mod P ... ))

    implemented in the standard piecewise linear form with the worst-case
    initial blackout of ``2(P - Q)``.
    """
    if not 0 < budget <= period:
        raise AnalysisError("need 0 < budget <= period")
    blackout = 2 * (period - budget)

    def sbf(t: int) -> int:
        if t <= blackout:
            return 0
        remaining = t - blackout
        full = remaining // period
        partial = min(budget, remaining - full * period)
        return full * budget + partial

    return sbf


def response_bound(demand: int, sbf: Callable[[int], int],
                   horizon: int) -> int:
    """Smallest ``t <= horizon`` with ``sbf(t) >= demand``.

    Binary search over the (non-decreasing) supply function.
    """
    if demand <= 0:
        raise AnalysisError("demand must be > 0")
    if sbf(horizon) < demand:
        raise AnalysisError(
            f"demand {demand} not supplied within horizon {horizon}")
    lo, hi = 1, horizon
    while lo < hi:
        mid = (lo + hi) // 2
        if sbf(mid) >= demand:
            hi = mid
        else:
            lo = mid + 1
    return lo


def tdma_response_bound(scheduler: TdmaScheduler, partition: str,
                        demand: int) -> int:
    """WCRT of a demand of ``demand`` ns inside a TDMA partition
    (single task or highest-priority task of the partition)."""
    windows = [w for w in scheduler.windows if w.partition == partition]
    if not windows:
        raise AnalysisError(f"partition {partition!r} owns no window")
    capacity_per_frame = sum(w.length for w in windows)
    frames_needed = -(-demand // capacity_per_frame) + 2
    horizon = frames_needed * scheduler.major_frame
    return response_bound(demand, tdma_supply(scheduler, partition),
                          horizon)


def server_response_bound(budget: int, period: int, demand: int) -> int:
    """WCRT of a demand served by a deferrable server ``(Q, P)``."""
    frames_needed = -(-demand // budget) + 3
    horizon = frames_needed * period + 2 * period
    return response_bound(demand, periodic_server_supply(budget, period),
                          horizon)
