"""Time-triggered schedule synthesis.

Building a TT schedule means placing periodic slots ``(offset, duration,
period)`` on a shared timeline so that no two occurrences ever overlap.
Two periodic slots are conflict-free iff, with ``g = gcd(T1, T2)``:

    d1 <= (o2 - o1) mod g   and   d2 <= (o1 - o2) mod g

(the classic single-resource periodic non-overlap condition).  The
synthesizer places entries first-fit by scanning offsets; an optional
*reserved window* keeps part of every base period free for future
extension — the "optimize resource availability against future changes"
planning the paper attributes to time-triggered architectures
(experiment E8 measures what the reservation buys).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import AnalysisError, SchedulingError


@dataclass(frozen=True)
class TtEntry:
    """A request: give ``name`` a slot of ``duration`` every ``period``."""

    name: str
    period: int
    duration: int

    def __post_init__(self):
        if self.period <= 0 or self.duration <= 0:
            raise AnalysisError(
                f"entry {self.name}: period and duration must be > 0")
        if self.duration > self.period:
            raise AnalysisError(
                f"entry {self.name}: duration exceeds period")


@dataclass(frozen=True)
class TtPlacement:
    """A placed slot: entry parameters plus the chosen offset."""
    name: str
    period: int
    duration: int
    offset: int


def conflict_free(a: TtPlacement, b: TtPlacement) -> bool:
    """Exact periodic non-overlap test."""
    g = math.gcd(a.period, b.period)
    da = (b.offset - a.offset) % g
    db = (a.offset - b.offset) % g
    return a.duration <= da and b.duration <= db


class TtSchedule:
    """A set of non-overlapping periodic placements."""

    def __init__(self, reserved: Optional[tuple[int, int, int]] = None):
        """``reserved`` = (offset, duration, period): a window kept free
        for future tasks (modelled as a phantom placement)."""
        self.placements: list[TtPlacement] = []
        self.reserved = None
        if reserved is not None:
            offset, duration, period = reserved
            self.reserved = TtPlacement("__reserved__", period, duration,
                                        offset)

    def _obstacles(self, include_reserved: bool) -> list[TtPlacement]:
        obstacles = list(self.placements)
        if include_reserved and self.reserved is not None:
            obstacles.append(self.reserved)
        return obstacles

    def fits(self, candidate: TtPlacement,
             respect_reservation: bool = True) -> bool:
        """Whether a candidate placement conflicts with nothing placed."""
        return all(conflict_free(candidate, existing)
                   for existing in self._obstacles(respect_reservation))

    def place(self, entry: TtEntry, respect_reservation: bool = True,
              step: int = 1) -> TtPlacement:
        """First-fit placement; raises :class:`SchedulingError` when no
        offset works."""
        for offset in range(0, entry.period, step):
            candidate = TtPlacement(entry.name, entry.period,
                                    entry.duration, offset)
            if self.fits(candidate, respect_reservation):
                self.placements.append(candidate)
                return candidate
        raise SchedulingError(
            f"no feasible offset for {entry.name} "
            f"({entry.duration}/{entry.period})")

    def try_place(self, entry: TtEntry, respect_reservation: bool = True,
                  step: int = 1) -> Optional[TtPlacement]:
        """Like :meth:`place` but returns None instead of raising."""
        try:
            return self.place(entry, respect_reservation, step)
        except SchedulingError:
            return None

    def remove(self, name: str) -> None:
        """Remove all placements with the given name."""
        self.placements = [p for p in self.placements if p.name != name]

    def utilization(self) -> float:
        """Total fraction of the timeline the placements occupy."""
        return sum(p.duration / p.period for p in self.placements)

    def hyperperiod(self) -> int:
        """Least common multiple of all placed periods."""
        result = 1
        for placement in self.placements:
            result = result * placement.period // math.gcd(result,
                                                           placement.period)
        return result

    def verify(self) -> None:
        """Re-check the pairwise invariant (defence in depth; raises on
        violation)."""
        for i, a in enumerate(self.placements):
            for b in self.placements[i + 1:]:
                if not conflict_free(a, b):
                    raise SchedulingError(
                        f"placements {a.name} and {b.name} overlap")

    def __repr__(self) -> str:
        return (f"<TtSchedule {len(self.placements)} placements "
                f"u={self.utilization():.3f}>")


def build_schedule(entries: list[TtEntry],
                   reserved: Optional[tuple[int, int, int]] = None,
                   step: int = 1) -> TtSchedule:
    """Place all entries (longest-duration first — better first-fit
    packing) on a fresh schedule."""
    schedule = TtSchedule(reserved)
    for entry in sorted(entries, key=lambda e: (-e.duration, e.period,
                                                e.name)):
        schedule.place(entry, step=step)
    schedule.verify()
    return schedule
