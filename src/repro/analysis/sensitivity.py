"""Sensitivity analysis: how much headroom a design has.

Used to "explore the design space of possible system configurations"
(Section 3): given a schedulable configuration, how far can execution
times grow before deadlines break (robustness to WCET underestimation),
and how much slack does each individual task have for future extension?
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AnalysisError
from repro.analysis.rta import analyze
from repro.osek.task import TaskSpec


def _scaled(tasks: list[TaskSpec], factor: float) -> list[TaskSpec]:
    scaled = []
    for task in tasks:
        wcet = max(1, round(task.wcet * factor))
        scaled.append(replace_spec(task, wcet=wcet))
    return scaled


def replace_spec(spec: TaskSpec, **changes) -> TaskSpec:
    """Copy a TaskSpec with field changes (TaskSpec is a mutable
    dataclass with __post_init__ defaults; rebuild cleanly)."""
    kwargs = dict(
        name=spec.name, wcet=spec.wcet, period=spec.period,
        offset=spec.offset, deadline=spec.deadline, priority=spec.priority,
        partition=spec.partition, max_activations=spec.max_activations,
        budget=spec.budget, jitter=spec.jitter, bcet=min(spec.bcet,
                                                         spec.wcet),
        criticality=spec.criticality)
    kwargs.update(changes)
    if "wcet" in changes and "bcet" not in changes:
        kwargs["bcet"] = min(kwargs["bcet"], kwargs["wcet"])
    return TaskSpec(**kwargs)


def critical_scaling_factor(tasks: list[TaskSpec],
                            critical_sections: Optional[dict] = None,
                            precision: float = 0.001) -> float:
    """Largest uniform WCET scaling factor keeping the set schedulable.

    Binary search; a factor of 1.25 means every WCET may be 25% worse
    than estimated before any deadline is missed.
    """
    if not analyze(tasks, critical_sections).schedulable:
        return 0.0
    lo, hi = 1.0, 1.0
    while analyze(_scaled(tasks, hi * 2), critical_sections).schedulable:
        hi *= 2
        if hi > 1024:
            raise AnalysisError("scaling factor diverges (no busy CPU?)")
    hi *= 2
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if analyze(_scaled(tasks, mid), critical_sections).schedulable:
            lo = mid
        else:
            hi = mid
    return lo


def task_slack(tasks: list[TaskSpec], task_name: str,
               critical_sections: Optional[dict] = None) -> int:
    """Maximum additional WCET (ns) task ``task_name`` can absorb while
    the whole set stays schedulable (binary search)."""
    index = next((i for i, t in enumerate(tasks) if t.name == task_name),
                 None)
    if index is None:
        raise AnalysisError(f"unknown task {task_name!r}")
    if not analyze(tasks, critical_sections).schedulable:
        return 0

    def ok(extra: int) -> bool:
        trial = list(tasks)
        trial[index] = replace_spec(trial[index],
                                    wcet=trial[index].wcet + extra)
        return analyze(trial, critical_sections).schedulable

    lo, hi = 0, tasks[index].period or 10 ** 12
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def critical_bitrate(frames, current_bitrate_bps: int) -> int:
    """Smallest bus bitrate (bps) at which the CAN frame set remains
    schedulable — how much headroom a bus-speed downgrade has, or
    conversely how close the design is to needing a faster bus."""
    from repro.analysis import can_rta

    if not can_rta.analyze(frames, current_bitrate_bps).schedulable:
        raise AnalysisError(
            "frame set is not schedulable at the current bitrate")
    lo, hi = 1_000, current_bitrate_bps
    while lo < hi:
        mid = (lo + hi) // 2
        if can_rta.analyze(frames, mid).schedulable:
            hi = mid
        else:
            lo = mid + 1
    return lo


def admissible_new_frame(frames, bitrate_bps: int, period: int,
                         can_id: int) -> Optional[int]:
    """Largest DLC (0..8) a *new* frame with the given id/period could
    have without breaking any existing frame; None when even an empty
    frame does not fit."""
    from repro.analysis import can_rta
    from repro.network.can import CanFrameSpec

    if any(f.can_id == can_id for f in frames):
        raise AnalysisError(f"CAN id {can_id:#x} already in use")
    best = None
    for dlc in range(0, 9):
        probe = CanFrameSpec("__probe__", can_id, dlc=dlc, period=period)
        if can_rta.analyze(frames + [probe], bitrate_bps).schedulable:
            best = dlc
        else:
            break
    return best


def admissible_new_task(tasks: list[TaskSpec], period: int, priority: int,
                        deadline: Optional[int] = None) -> int:
    """Largest WCET a *new* task with the given parameters could bring
    to this ECU without breaking anyone — the extensibility headroom the
    consolidation DSE uses."""
    def ok(wcet: int) -> bool:
        trial = tasks + [TaskSpec("__probe__", wcet=wcet, period=period,
                                  priority=priority, deadline=deadline)]
        return analyze(trial).schedulable

    if not analyze(tasks).schedulable or not ok(1):
        return 0
    lo, hi = 1, period
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo
