"""FlexRay latency bounds.

Static segment: a frame in slot ``s`` with cycle multiplexing
``(base_cycle, repetition)`` is delivered at the end of its slot, once per
``repetition`` cycles.  A value written at the worst instant (just after
its buffer was sampled into the slot) waits almost one full repetition
period plus the slot position:

    R_max = repetition * cycle_length + s * slot_length

The bound is *load-independent* — the quantitative form of the paper's
"sub-channels free of temporal interference" claim; the benchmark for E4
cross-checks it against simulation.

Dynamic segment: a conservative bound counting the minislot consumption of
all lower-ID frames that may precede a frame in each cycle.
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError
from repro.network.flexray import (DynamicFrameSpec, FlexRayConfig,
                                   StaticSlotAssignment)
from repro.units import bit_time


def static_latency_bound(config: FlexRayConfig,
                         assignment: StaticSlotAssignment) -> int:
    """Worst-case write-to-reception latency for a static frame."""
    if not 1 <= assignment.slot <= config.n_static_slots:
        raise AnalysisError(
            f"slot {assignment.slot} outside the static segment")
    wait = assignment.repetition * config.cycle_length
    return wait + assignment.slot * config.slot_length


def static_latency_best_case(config: FlexRayConfig,
                             assignment: StaticSlotAssignment) -> int:
    """Best case: written just before its slot transmits."""
    return config.slot_length


def minislots_needed(frame: DynamicFrameSpec, config: FlexRayConfig) -> int:
    """Minislots one dynamic frame consumes."""
    if config.n_minislots <= 0:
        raise AnalysisError("configuration has no dynamic segment")
    tbit = bit_time(config.bitrate_bps)
    frame_ns = (frame.size_bytes * 8 + 80) * tbit
    return max(1, math.ceil(frame_ns / config.minislot_length))


def dynamic_latency_bound(frame: DynamicFrameSpec,
                          competitors: list[DynamicFrameSpec],
                          config: FlexRayConfig) -> int:
    """Conservative bound for a dynamic frame.

    Per cycle, all lower-ID competitors may transmit first; the frame goes
    out in the first cycle whose remaining minislots fit it.  Raises when
    even an empty cycle cannot fit the frame.
    """
    own = minislots_needed(frame, config)
    if own > config.n_minislots:
        raise AnalysisError(
            f"frame {frame.name} needs {own} minislots; the dynamic "
            f"segment only has {config.n_minislots}")
    ahead = sum(minislots_needed(f, config) for f in competitors
                if f.frame_id < frame.frame_id)
    # Cycles fully consumed by higher-priority traffic before room appears.
    cycles_waited = 0
    remaining_ahead = ahead
    while remaining_ahead + own > config.n_minislots:
        consumed = min(remaining_ahead, config.n_minislots)
        remaining_ahead -= consumed
        cycles_waited += 1
        if cycles_waited > len(competitors) + 1:
            raise AnalysisError(
                f"frame {frame.name}: no bound (higher-priority demand "
                f"exceeds the dynamic segment every cycle)")
    offset_in_cycle = (config.static_segment_length
                       + (remaining_ahead + own) * config.minislot_length)
    # Worst case: enqueued just after this cycle's dynamic arbitration.
    return (cycles_waited + 1) * config.cycle_length + offset_in_cycle
