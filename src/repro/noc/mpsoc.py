"""MPSoC: IP cores hosting DAS components over an on-chip interconnect.

Section 4: "the advent of Multiprocessor MPSoCs that link a number of
independent IP Cores on a single chip by a proper Network on Chip provides
an execution environment where each component of a DAS can be hosted on
its own IP-Core … such that fault-isolation and error containment, both
in the logical and temporal domain, are achieved by design.  Since the
IP-Cores communicate solely by the exchange of messages …"

An :class:`IpCore` therefore has *no* shared-memory access to its peers —
its only I/O is ``send``/``on_receive`` through the interconnect, plus
fault controls used by the containment experiments.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.noc.interconnect import Interconnect, TdmaNoc
from repro.sim.kernel import Simulator


class IpCore:
    """One IP core: a named compute element with message-only I/O."""

    def __init__(self, mpsoc: "Mpsoc", index: int, name: str):
        self.mpsoc = mpsoc
        self.index = index
        self.name = name
        self.sent = 0
        self.received = 0
        self._babbling_handle = None
        mpsoc.interconnect.on_receive(index, self._on_message)
        self._callbacks: list[Callable] = []

    def send(self, dst: "IpCore", payload=None, size_bytes: int = 32,
             priority: int = 0):
        """Send one message to another core."""
        self.sent += 1
        return self.mpsoc.interconnect.send(self.index, dst.index, payload,
                                            size_bytes, priority)

    def send_periodic(self, dst: "IpCore", period: int, payload=None,
                      size_bytes: int = 32, priority: int = 0) -> None:
        """Install a periodic sender (first send immediately)."""

        def fire():
            self.send(dst, payload, size_bytes, priority)
            self.mpsoc.sim.schedule(period, fire)

        self.mpsoc.sim.schedule(0, fire)

    def on_receive(self, callback: Callable) -> None:
        """Register a callback for messages addressed to this core."""
        self._callbacks.append(callback)

    def _on_message(self, msg) -> None:
        self.received += 1
        for callback in self._callbacks:
            callback(msg)

    # ------------------------------------------------------------------
    # Fault behaviours (driven by repro.faults)
    # ------------------------------------------------------------------
    def start_babbling(self, dst: "IpCore", interval: int,
                       size_bytes: int = 256, priority: int = 10 ** 6
                       ) -> None:
        """Flood the interconnect as fast as ``interval`` allows, at the
        highest priority the (broken) software can request."""
        if self._babbling_handle is not None:
            return

        def babble():
            self.send(dst, payload="garbage", size_bytes=size_bytes,
                      priority=priority)
            self._babbling_handle = self.mpsoc.sim.schedule(interval,
                                                            babble)

        self._babbling_handle = self.mpsoc.sim.schedule(0, babble)

    def stop_babbling(self) -> None:
        """End a babbling episode."""
        if self._babbling_handle is not None:
            self._babbling_handle.cancel()
            self._babbling_handle = None

    def __repr__(self) -> str:
        return f"<IpCore {self.name}@{self.index}>"


class Mpsoc:
    """A mesh of IP cores over a pluggable interconnect."""

    def __init__(self, sim: Simulator, interconnect: Interconnect,
                 core_names: Optional[list[str]] = None):
        self.sim = sim
        self.interconnect = interconnect
        size = interconnect.topology.size
        names = core_names if core_names is not None else [
            f"core{i}" for i in range(size)]
        if len(names) != size:
            raise ConfigurationError(
                f"need {size} core names, got {len(names)}")
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate core names")
        self.cores = [IpCore(self, i, name)
                      for i, name in enumerate(names)]
        self._by_name = {core.name: core for core in self.cores}

    def core(self, name: str) -> IpCore:
        """Look up a core by name."""
        core = self._by_name.get(name)
        if core is None:
            raise ConfigurationError(f"unknown core {name!r}")
        return core

    def start(self) -> None:
        """Start time-triggered interconnects (no-op for shared bus)."""
        if isinstance(self.interconnect, TdmaNoc):
            self.interconnect.start()

    def __repr__(self) -> str:
        return (f"<Mpsoc cores={len(self.cores)} "
                f"interconnect={self.interconnect.name}>")
