"""MPSoC execution platform: mesh topology, interconnects, IP cores."""

from repro.noc.interconnect import (Interconnect, MAX_MESSAGE_BYTES,
                                    SharedBusInterconnect, TdmaNoc)
from repro.noc.mpsoc import IpCore, Mpsoc
from repro.noc.topology import MeshTopology

__all__ = [
    "Interconnect", "MAX_MESSAGE_BYTES", "SharedBusInterconnect", "TdmaNoc",
    "IpCore", "Mpsoc", "MeshTopology",
]
