"""On-chip interconnects: shared bus (baseline) vs time-triggered NoC.

Section 4 requires the NoC to satisfy four composability requirements;
the two interconnects here differ exactly on requirements 3 and 4:

* :class:`SharedBusInterconnect` — one transaction at a time, priority or
  FIFO arbitration.  A hot sender *does* delay everyone else (temporal
  interference), and a babbling core can starve the chip.
* :class:`TdmaNoc` — each core owns a periodic transmission slot enforced
  by its network interface (the on-chip analogue of the bus guardian).  A
  core's worst-case latency depends only on the schedule; out-of-slot
  traffic from a faulty core is physically gated.

Both present the same message-passing interface, so the same workload
runs on either (experiment E6 is precisely that comparison).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.network.message import Message
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.units import bit_time

MAX_MESSAGE_BYTES = 4096


class Interconnect:
    """Common message-passing surface of both interconnects."""

    def __init__(self, sim: Simulator, topology: MeshTopology,
                 trace: Optional[Trace] = None, name: str = "NOC"):
        self.sim = sim
        self.topology = topology
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self._rx_callbacks: dict[int, list[Callable]] = {
            core: [] for core in range(topology.size)}
        self.delivered = 0

    def on_receive(self, core: int, callback: Callable) -> None:
        """Register a message callback for a core."""
        self._check_core(core)
        self._rx_callbacks[core].append(callback)

    def send(self, src: int, dst: int, payload=None,
             size_bytes: int = 32, priority: int = 0) -> Message:
        """Send a message core-to-core (subclass responsibility)."""
        raise NotImplementedError

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.topology.size:
            raise ConfigurationError(
                f"{self.name}: core {core} outside the mesh")

    def _check_message(self, src: int, dst: int, size_bytes: int) -> None:
        """Requirement 1: precise interface specification — malformed
        traffic is rejected at the network interface."""
        self._check_core(src)
        self._check_core(dst)
        if src == dst:
            raise ProtocolError(f"{self.name}: core {src} sending to "
                                f"itself")
        if not 0 < size_bytes <= MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"{self.name}: message size {size_bytes} outside "
                f"1..{MAX_MESSAGE_BYTES}")

    def _deliver(self, dst: int, msg: Message, category: str) -> None:
        msg.rx_time = self.sim.now
        self.delivered += 1
        self.trace.log(self.sim.now, category, msg.name,
                       latency=msg.latency)
        for callback in self._rx_callbacks[dst]:
            callback(msg)

    def latencies(self, category: str, name: Optional[str] = None
                  ) -> list[int]:
        """Observed latencies from the trace, by category and name."""
        return [r.data["latency"]
                for r in self.trace.records(category, name)]


class SharedBusInterconnect(Interconnect):
    """Baseline: one shared medium, store-and-forward, single transaction
    at a time."""

    def __init__(self, sim: Simulator, topology: MeshTopology,
                 bandwidth_bps: int = 1_000_000_000,
                 arbitration: str = "priority",
                 overhead: int = 50, trace: Optional[Trace] = None,
                 name: str = "SHARED-BUS"):
        super().__init__(sim, topology, trace, name)
        if arbitration not in ("priority", "fifo"):
            raise ConfigurationError(
                f"unknown arbitration {arbitration!r}")
        self.bandwidth_bps = bandwidth_bps
        self.arbitration = arbitration
        self.overhead = overhead
        self._queue: list[tuple] = []
        self._busy = False
        self._seq = 0

    def send(self, src: int, dst: int, payload=None,
             size_bytes: int = 32, priority: int = 0) -> Message:
        """Queue a message; arbitration per the configured policy."""
        self._check_message(src, dst, size_bytes)
        msg = Message(f"core{src}->core{dst}", f"core{src}", payload,
                      size_bytes, enqueue_time=self.sim.now)
        self._seq += 1
        order = (-priority, self._seq) if self.arbitration == "priority" \
            else (self._seq,)
        self._queue.append((order, msg, dst))
        self._queue.sort(key=lambda item: item[0])
        self._pump()
        return msg

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        __, msg, dst = self._queue.pop(0)
        self._busy = True
        msg.tx_start = self.sim.now
        duration = (msg.size_bytes * 8 * bit_time(self.bandwidth_bps)
                    + self.overhead)

        def complete():
            self._busy = False
            self._deliver(dst, msg, "noc.rx_bus")
            self._pump()

        self.sim.schedule(duration, complete)

    @property
    def backlog(self) -> int:
        """Messages queued and not yet on the medium."""
        return len(self._queue)


class TdmaNoc(Interconnect):
    """Time-triggered NoC: one slot per core per round, NI-enforced.

    In its slot a core transmits the head of its outbound queue; the
    message then traverses its XY route at ``hop_latency`` per hop.
    Slots are globally exclusive, so routes never contend.  ``gate(core)``
    models the NI guardian: a gated (faulty) core's slot passes unused
    and its queue is discarded — error containment by design.
    """

    def __init__(self, sim: Simulator, topology: MeshTopology,
                 slot_length: int = 1_000, hop_latency: int = 100,
                 trace: Optional[Trace] = None, name: str = "TT-NOC"):
        super().__init__(sim, topology, trace, name)
        if slot_length <= 0 or hop_latency < 0:
            raise ConfigurationError("bad slot_length/hop_latency")
        self.slot_length = slot_length
        self.hop_latency = hop_latency
        self._queues: dict[int, deque] = {
            core: deque() for core in range(topology.size)}
        self._gated: set[int] = set()
        self.gated_drops = 0
        self._started = False

    @property
    def round_length(self) -> int:
        """Duration of one slot round over all cores."""
        return self.slot_length * self.topology.size

    def start(self) -> None:
        """Begin the TDMA slot rotation."""
        if self._started:
            raise ConfigurationError(f"{self.name} already started")
        self._started = True
        self._schedule_slot(0)

    def send(self, src: int, dst: int, payload=None,
             size_bytes: int = 32, priority: int = 0) -> Message:
        """Queue a message; ``priority`` is accepted for interface
        symmetry but ignored — TT arbitration is by schedule, not
        priority."""
        self._check_message(src, dst, size_bytes)
        msg = Message(f"core{src}->core{dst}", f"core{src}", payload,
                      size_bytes, enqueue_time=self.sim.now)
        if src in self._gated:
            self.gated_drops += 1
            self.trace.log(self.sim.now, "noc.gated_drop", msg.name)
            return msg
        self._queues[src].append((msg, dst))
        return msg

    def gate(self, core: int) -> None:
        """NI guardian action: isolate a faulty core (requirement 4)."""
        self._check_core(core)
        self._gated.add(core)
        dropped = len(self._queues[core])
        self.gated_drops += dropped
        self._queues[core].clear()
        self.trace.log(self.sim.now, "noc.gate", f"core{core}",
                       dropped=dropped)

    def ungate(self, core: int) -> None:
        """Lift a core's NI gate (after repair)."""
        self._gated.discard(core)

    def _schedule_slot(self, slot: int) -> None:
        self.sim.schedule(self.slot_length, lambda: self._slot_end(slot))

    def _slot_end(self, slot: int) -> None:
        owner = slot
        if owner not in self._gated and self._queues[owner]:
            msg, dst = self._queues[owner].popleft()
            msg.tx_start = self.sim.now - self.slot_length
            hops = max(1, self.topology.hops(owner, dst))
            arrival_delay = hops * self.hop_latency
            self.sim.schedule(arrival_delay,
                              lambda m=msg, d=dst:
                              self._deliver(d, m, "noc.rx_tt"))
        self._schedule_slot((slot + 1) % self.topology.size)

    def worst_case_latency(self, src: int, dst: int) -> int:
        """Analytic bound for an empty queue: miss your slot by a whole
        round, then traverse."""
        hops = max(1, self.topology.hops(src, dst))
        return self.round_length + self.slot_length \
            + hops * self.hop_latency
