"""NoC topologies.

A :class:`MeshTopology` places IP cores on a 2-D grid with dimension-order
(XY) routing — the standard NoC arrangement the paper's MPSoC vision
assumes.  Only the hop count matters for the timing models; link-level
detail lives in the interconnect classes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class MeshTopology:
    """A ``width x height`` mesh of core positions."""

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ConfigurationError("mesh dimensions must be positive")
        self.width = width
        self.height = height

    @property
    def size(self) -> int:
        """Total number of core positions."""
        return self.width * self.height

    def position(self, index: int) -> tuple[int, int]:
        """(x, y) of the core with the given linear index (row-major)."""
        if not 0 <= index < self.size:
            raise ConfigurationError(
                f"core index {index} outside 0..{self.size - 1}")
        return (index % self.width, index // self.width)

    def index(self, x: int, y: int) -> int:
        """Linear index of the core at (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(f"position ({x},{y}) outside mesh")
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance: hop count under XY routing."""
        sx, sy = self.position(src)
        dx, dy = self.position(dst)
        return abs(sx - dx) + abs(sy - dy)

    def xy_route(self, src: int, dst: int) -> list[int]:
        """Core indices along the XY route (exclusive of src, inclusive
        of dst)."""
        sx, sy = self.position(src)
        dx, dy = self.position(dst)
        route = []
        x, y = sx, sy
        while x != dx:
            x += 1 if dx > x else -1
            route.append(self.index(x, y))
        while y != dy:
            y += 1 if dy > y else -1
            route.append(self.index(x, y))
        return route

    def __repr__(self) -> str:
        return f"<MeshTopology {self.width}x{self.height}>"
