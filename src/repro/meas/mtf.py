"""MTF: a chunked, columnar, MDF-like mass-trace store.

JSONL spill (:func:`repro.sim.trace.jsonl_spill`) writes one JSON
object per record — simple, greppable, and far too slow and too flat
once campaigns produce millions of records.  Real automotive
measurement tooling logs to MDF: column-oriented, chunked, indexed, so
a reader can pull *one signal over one time range* without touching
the rest of the file.  MTF is that idea at this library's scale:

* records are grouped by **signal** (``category:subject``) and written
  in column blocks — one packed ``int64`` array of timestamps plus one
  JSON-encoded list of payloads per block — so the per-record Python
  cost is amortised over the whole block;
* a **directory** at the end of the file indexes every block by
  signal and time range (``t_min``/``t_max``), and a fixed-size
  trailer stores the directory's offset, so a reader opens the file
  with two seeks and resolves any ``(signal, time-range)`` query to
  the exact blocks that overlap it — no scan of the data region;
* the writer is **append-only** and duck-types both sink protocols of
  this library: it is a :class:`~repro.sim.trace.Trace` spill target
  (``write_batch``/``close``) and a DAQ sink for
  :class:`repro.meas.service.MeasurementService`.

File layout::

    MTF1 <u16 version> | block... | directory JSON | trailer
    trailer = <u64 directory offset> <u64 directory length> "MTFINDEX"
"""

from __future__ import annotations

import json
import struct
import zlib
from array import array
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.sim.trace import Record

MAGIC = b"MTF1"
VERSION = 1
_HEADER = struct.Struct("<4sH")
_TRAILER = struct.Struct("<QQ8s")
TRAILER_MAGIC = b"MTFINDEX"

#: Records buffered per signal before a column block is flushed.
DEFAULT_CHUNK_RECORDS = 4096

RecordLike = Union[Record, tuple]


def _parts(record: RecordLike) -> tuple[int, str, str, dict]:
    """(time, category, subject, data) of a Record or a 4-tuple."""
    if isinstance(record, Record):
        return record.time, record.category, record.subject, record.data
    time, category, subject, data = record
    return time, category, subject, data


class MtfWriter:
    """Append-only columnar writer.

    Records are buffered per signal; once a signal's buffer reaches
    ``chunk_records`` it is flushed as one column block.  ``close()``
    flushes every remaining buffer, writes the directory and the
    trailer, and is idempotent.  Usable as a context manager and as a
    ``Trace`` spill target.
    """

    def __init__(self, path: str,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS):
        if chunk_records < 1:
            raise ConfigurationError(
                f"chunk_records must be >= 1, got {chunk_records}")
        self.path = path
        self.chunk_records = chunk_records
        self._handle = open(path, "wb")
        self._handle.write(_HEADER.pack(MAGIC, VERSION))
        self._offset = _HEADER.size
        self._buffers: dict[str, tuple[array, list]] = {}
        self._directory: list[dict] = []
        self._closed = False
        #: total records accepted (buffered + flushed).
        self.records_written = 0

    # -- sink protocols ------------------------------------------------
    def write_batch(self, records: list[RecordLike]) -> None:
        """Append a batch of records (Trace spill / DAQ sink entry)."""
        if self._closed:
            raise ConfigurationError(f"{self.path}: writer is closed")
        for record in records:
            time, category, subject, data = _parts(record)
            signal = f"{category}:{subject}"
            buffer = self._buffers.get(signal)
            if buffer is None:
                buffer = (array("q"), [])
                self._buffers[signal] = buffer
            buffer[0].append(time)
            buffer[1].append(data)
            self.records_written += 1
            if len(buffer[0]) >= self.chunk_records:
                self._flush_signal(signal)

    __call__ = write_batch  # also usable as a plain spill callable

    def _flush_signal(self, signal: str) -> None:
        times, values = self._buffers.pop(signal)
        times_bytes = times.tobytes()
        values_bytes = json.dumps(values, sort_keys=True,
                                  separators=(",", ":"),
                                  default=str).encode("utf-8")
        self._handle.write(times_bytes)
        self._handle.write(values_bytes)
        self._directory.append({
            "signal": signal,
            "count": len(times),
            "t_min": times[0],
            "t_max": times[-1],
            "times_offset": self._offset,
            "times_length": len(times_bytes),
            "values_offset": self._offset + len(times_bytes),
            "values_length": len(values_bytes),
            # Packed int64 timestamps have no syntax to violate, so
            # mid-file damage there is otherwise undetectable: the
            # checksum covers the whole block (times + values).
            "crc": zlib.crc32(times_bytes + values_bytes),
        })
        self._offset += len(times_bytes) + len(values_bytes)

    def close(self) -> None:
        """Flush remaining buffers, write directory + trailer."""
        if self._closed:
            return
        for signal in sorted(self._buffers):
            self._flush_signal(signal)
        directory = json.dumps(
            {"version": VERSION, "records": self.records_written,
             "blocks": self._directory},
            sort_keys=True, separators=(",", ":")).encode("utf-8")
        self._handle.write(directory)
        self._handle.write(_TRAILER.pack(self._offset, len(directory),
                                         TRAILER_MAGIC))
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "MtfWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<MtfWriter {self.path} records={self.records_written} "
                f"blocks={len(self._directory)}>")


class MtfReader:
    """Directory-first reader: two seeks to open, then only the blocks
    overlapping a query are read.

    :attr:`blocks_read` counts data blocks actually fetched — the
    seek-cost observable the round-trip tests assert on (a narrow
    time-range query must not touch the whole file).
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "rb")
        try:
            self._open_directory()
        except ConfigurationError:
            self._handle.close()
            raise
        #: data blocks fetched so far (directory reads excluded).
        self.blocks_read = 0

    def _open_directory(self) -> None:
        size = self._handle.seek(0, 2)
        self._handle.seek(0)
        header = self._handle.read(_HEADER.size)
        if len(header) < _HEADER.size \
                or _HEADER.unpack(header)[0] != MAGIC:
            raise ConfigurationError(f"{self.path}: not an MTF file")
        version = _HEADER.unpack(header)[1]
        if version != VERSION:
            raise ConfigurationError(
                f"{self.path}: unsupported MTF version {version}")
        if size < _HEADER.size + _TRAILER.size:
            raise ConfigurationError(
                f"{self.path}: truncated MTF file "
                f"({size} bytes, no room for a trailer — "
                f"was the writer closed?)")
        self._handle.seek(size - _TRAILER.size)
        dir_offset, dir_length, trailer_magic = _TRAILER.unpack(
            self._handle.read(_TRAILER.size))
        if trailer_magic != TRAILER_MAGIC:
            raise ConfigurationError(
                f"{self.path}: truncated MTF file (bad trailer)")
        if dir_offset + dir_length > size - _TRAILER.size \
                or dir_offset < _HEADER.size:
            raise ConfigurationError(
                f"{self.path}: corrupt MTF trailer (directory at "
                f"{dir_offset}+{dir_length} is outside the file)")
        self._handle.seek(dir_offset)
        try:
            directory = json.loads(self._handle.read(dir_length))
            self.records = directory["records"]
            blocks = directory["blocks"]
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{self.path}: corrupt MTF directory ({exc})")
        self._blocks: dict[str, list[dict]] = {}
        for block in blocks:
            if block["values_offset"] + block["values_length"] \
                    > dir_offset:
                raise ConfigurationError(
                    f"{self.path}: corrupt MTF directory (block "
                    f"'{block['signal']}' points past the data region)")
            self._blocks.setdefault(block["signal"], []).append(block)
        for blocks in self._blocks.values():
            blocks.sort(key=lambda b: b["t_min"])

    # -- queries -------------------------------------------------------
    def signals(self) -> list[str]:
        return sorted(self._blocks)

    def block_count(self, signal: Optional[str] = None) -> int:
        if signal is not None:
            return len(self._blocks.get(signal, []))
        return sum(len(blocks) for blocks in self._blocks.values())

    def read(self, signal: str, start: Optional[int] = None,
             end: Optional[int] = None) -> list[tuple[int, dict]]:
        """All ``(time, data)`` samples of ``signal`` with
        ``start <= time <= end`` (bounds optional).  Only blocks whose
        ``[t_min, t_max]`` range overlaps the query are read."""
        out: list[tuple[int, dict]] = []
        for block in self._blocks.get(signal, []):
            if start is not None and block["t_max"] < start:
                continue
            if end is not None and block["t_min"] > end:
                break
            times, values = self._fetch(block)
            for time, value in zip(times, values):
                if start is not None and time < start:
                    continue
                if end is not None and time > end:
                    break
                out.append((time, value))
        return out

    def _fetch(self, block: dict) -> tuple[array, list]:
        self._handle.seek(block["times_offset"])
        times_bytes = self._handle.read(block["times_length"])
        values_bytes = self._handle.read(block["values_length"])
        crc = block.get("crc")  # absent in pre-checksum files
        if crc is not None \
                and zlib.crc32(times_bytes + values_bytes) != crc:
            raise ConfigurationError(
                f"{self.path}: corrupt MTF block "
                f"('{block['signal']}' at offset "
                f"{block['times_offset']} fails its checksum — "
                f"the file was damaged after writing)")
        times = array("q")
        try:
            times.frombytes(times_bytes)
            values = json.loads(values_bytes)
        except ValueError as exc:
            raise ConfigurationError(
                f"{self.path}: corrupt MTF block "
                f"('{block['signal']}' at offset "
                f"{block['values_offset']}: {exc})")
        self.blocks_read += 1
        return times, values

    def summary(self) -> dict[str, dict]:
        """Per-signal ``{count, t_min, t_max, blocks}`` from the
        directory alone — no data block is read."""
        return {
            signal: {
                "count": sum(b["count"] for b in blocks),
                "t_min": blocks[0]["t_min"],
                "t_max": max(b["t_max"] for b in blocks),
                "blocks": len(blocks),
            }
            for signal, blocks in sorted(self._blocks.items())
        }

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "MtfReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<MtfReader {self.path} records={self.records} "
                f"signals={len(self._blocks)}>")


def is_mtf_file(path: str) -> bool:
    """True when ``path`` starts with the MTF magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def summarize_mtf(path: str) -> str:
    """Directory-only summary table (the ``repro stats`` renderer)."""
    with MtfReader(path) as reader:
        rows = reader.summary()
        lines = [f"{path}: MTF store, {reader.records} records, "
                 f"{len(rows)} signal(s), {reader.block_count()} block(s)"]
        width = max((len(s) for s in rows), default=6)
        lines.append(f"  {'signal':<{width}}  {'count':>8} "
                     f"{'t_min':>12} {'t_max':>12} {'blocks':>6}")
        for signal, row in rows.items():
            lines.append(f"  {signal:<{width}}  {row['count']:>8} "
                         f"{row['t_min']:>12} {row['t_max']:>12} "
                         f"{row['blocks']:>6}")
    return "\n".join(lines)
