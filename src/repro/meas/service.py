"""XCP-like in-process measurement & calibration service.

A :class:`MeasurementService` attaches to one *running* simulation the
way an XCP master attaches to a real ECU: clients ``connect()``, then
read/poll named measurements, write named characteristics, and run
cyclic **DAQ lists** — sampling lists synchronized to simulated time.

Write access is gated by configuration class exactly as the paper's
Section 2 prescribes: pre-compile and link-time characteristics are
frozen in the linked stage and the write is *refused*
(:class:`~repro.errors.ConfigurationError` from the underlying
:class:`~repro.core.config.ConfigurationSet`); post-build
characteristics are validated, applied to the live object graph, and
**freeze-frame logged** through a DEM
:class:`~repro.bsw.errors.ErrorManager` event (``meas.calibration``)
plus a DLT record — every calibration of a running ECU leaves an
auditable trail.

DAQ samples are plain ``[time, list, entry, value]`` rows; they are
picklable (so campaign workers can return them through the exec
engine's plan-order merge) and canonically JSON-serializable (so
:meth:`MeasurementService.samples_digest` is byte-identical across
``--jobs 1``/``--jobs N`` and ``--resume``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.bsw.errors import FAILED, SEVERITY_LOW, ErrorEvent, ErrorManager
from repro.core.config import ConfigurationSet
from repro.errors import ConfigurationError, MeasurementError
from repro.meas.registry import (CALIB_PREFIX, CHARACTERISTIC, MEASUREMENT,
                                 MeasurementRegistry, build_registry,
                                 calibration_set)
from repro.sim.trace import Trace, as_spill_sink
from repro.units import ms

#: The DEM event every applied calibration write reports against.
CALIBRATION_EVENT = "meas.calibration"
CALIBRATION_DTC = 0xCA11

#: Sampler events run *after* ordinary activity of the same instant.
DAQ_PRIORITY = 1000

#: Default DAQ period when a CLI flag asks for sampling without one.
DEFAULT_DAQ_PERIOD = ms(1)


@dataclass(frozen=True)
class DaqList:
    """One cyclic sampling list: named entries sampled every
    ``period`` ns of simulated time, starting at ``offset``."""

    name: str
    entries: tuple
    period: int
    offset: int = 0

    def __post_init__(self):
        if self.period <= 0:
            raise ConfigurationError(
                f"daq list {self.name}: period must be > 0")
        if self.offset < 0:
            raise ConfigurationError(
                f"daq list {self.name}: negative offset")
        if not self.entries:
            raise ConfigurationError(
                f"daq list {self.name}: no entries")


def default_daq(registry: MeasurementRegistry, period: int,
                name: str = "daq0") -> DaqList:
    """A DAQ list over every measurement of ``registry``."""
    return DaqList(name, tuple(registry.names(MEASUREMENT)), period)


class MeasurementService:
    """The in-process XCP stand-in for one simulation."""

    def __init__(self, sim, registry: MeasurementRegistry,
                 accessors: dict[str, Callable[[], object]],
                 config: Optional[ConfigurationSet] = None,
                 appliers: Optional[dict[str, Callable]] = None,
                 node: str = "MEAS"):
        self.sim = sim
        self.registry = registry
        self.config = config
        self.node = node
        self._accessors = dict(accessors)
        self._appliers = dict(appliers or {})
        self.trace = Trace()
        self.dem = ErrorManager(node, trace=self.trace,
                                now=lambda: sim.now)
        self.dem.register(ErrorEvent(
            CALIBRATION_EVENT, dtc=CALIBRATION_DTC,
            severity=SEVERITY_LOW, threshold=1))
        self._connected = False
        self._daq: dict[str, dict] = {}
        #: plain rows [time, list, entry, value], in sampling order.
        self.samples: list[list] = []
        self.reads = 0
        self.writes_applied = 0
        self.writes_refused = 0

    # -- attachment ----------------------------------------------------
    @classmethod
    def attach(cls, built, system,
               config: Optional[ConfigurationSet] = None,
               registry: Optional[MeasurementRegistry] = None
               ) -> "MeasurementService":
        """Attach to a live :class:`~repro.verify.oracle.BuiltSystem`.

        Builds the calibration set and the registry when not supplied,
        binds every measurement to its live accessor, and wires the
        post-build appliers that poke the running object graph."""
        if config is None:
            config = calibration_set(system)
        if registry is None:
            registry = build_registry(system, config)
        accessors = bind_accessors(built, system)
        appliers = bind_appliers(built, system)
        return cls(built.sim, registry, accessors, config, appliers,
                   node=f"MEAS:{system.name}")

    # -- connection gate -----------------------------------------------
    def connect(self) -> None:
        self._connected = True

    def disconnect(self) -> None:
        self._connected = False

    @property
    def connected(self) -> bool:
        return self._connected

    def _require_connected(self) -> None:
        if not self._connected:
            raise MeasurementError(
                f"{self.node}: not connected (call connect() first)")

    # -- read / poll ---------------------------------------------------
    def read(self, name: str):
        """Current value of one named entry (measurement or
        characteristic)."""
        self._require_connected()
        entry = self.registry.entry(name)
        self.reads += 1
        if entry.kind == CHARACTERISTIC:
            if self.config is None:
                raise MeasurementError(
                    f"{self.node}: no configuration set attached")
            return self.config.get(name[len(CALIB_PREFIX):])
        accessor = self._accessors.get(name)
        if accessor is None:
            raise MeasurementError(
                f"{self.node}: measurement {name!r} has no live "
                f"accessor (registry built without a simulation?)")
        return accessor()

    def poll(self, names: Optional[list[str]] = None) -> dict:
        """One-shot sample of ``names`` (default: every measurement)."""
        names = names if names is not None \
            else self.registry.names(MEASUREMENT)
        return {name: self.read(name) for name in names}

    # -- calibration write ---------------------------------------------
    def write(self, name: str, value) -> None:
        """Write one characteristic, enforcing its configuration class.

        Pre-compile/link-time characteristics are frozen in the linked
        stage — the underlying set refuses the write and the prior
        value stays.  Post-build writes are validated, applied (to the
        configuration *and* the live object graph), and freeze-frame
        logged through the DEM ``meas.calibration`` event + DLT.
        """
        self._require_connected()
        entry = self.registry.entry(name)
        if entry.kind != CHARACTERISTIC:
            raise MeasurementError(
                f"{self.node}: {name!r} is a measurement (read-only)")
        if self.config is None:
            raise MeasurementError(
                f"{self.node}: no configuration set attached")
        parameter = name[len(CALIB_PREFIX):]
        old = self.config.get(parameter)
        try:
            self.config.set(parameter, value)
        except ConfigurationError:
            self.writes_refused += 1
            raise
        applier = self._appliers.get(parameter)
        if applier is not None:
            applier(value)
        self.writes_applied += 1
        now = self.sim.now
        self.dem.report(CALIBRATION_EVENT, FAILED, context={
            "parameter": parameter, "old": old, "new": value,
            "address": entry.address})
        self.trace.log(now, "meas.write", parameter, old=old, new=value)
        if obs.enabled():
            obs.count("meas.writes")
            obs.dlt(now, obs.INFO, self.node, "MEAS", parameter,
                    "meas.write", old=old, new=value,
                    address=entry.address)

    # -- DAQ -----------------------------------------------------------
    def start_daq(self, daq: DaqList, sink=None) -> None:
        """Start a cyclic sampling list.

        ``sink`` (optional) receives each tick's records — a callable
        or a writer object with ``write_batch()`` (e.g. an
        :class:`~repro.meas.mtf.MtfWriter`); samples are also retained
        in :attr:`samples` for the digest.
        """
        self._require_connected()
        if daq.name in self._daq:
            raise MeasurementError(
                f"{self.node}: daq list {daq.name!r} already running")
        for entry in daq.entries:
            self.registry.entry(entry)  # raises on unknown names
        run = {"daq": daq, "sink": as_spill_sink(sink),
               "sink_target": sink, "active": True, "ticks": 0}
        self._daq[daq.name] = run
        self.sim.schedule_at(self.sim.now + daq.offset,
                             lambda: self._tick(run),
                             priority=DAQ_PRIORITY)

    def _tick(self, run: dict) -> None:
        if not run["active"]:
            return
        daq = run["daq"]
        now = self.sim.now
        batch = []
        for entry in daq.entries:
            accessor = self._accessors.get(entry)
            value = accessor() if accessor is not None else None
            self.samples.append([now, daq.name, entry, value])
            if run["sink"] is not None:
                batch.append((now, f"daq.{daq.name}", entry,
                              {"value": value}))
        if batch and run["sink"] is not None:
            run["sink"](batch)
        run["ticks"] += 1
        if obs.enabled():
            obs.count("meas.daq.samples", len(daq.entries))
        self.sim.schedule(daq.period, lambda: self._tick(run),
                          priority=DAQ_PRIORITY)

    def stop_daq(self, name: str) -> None:
        """Stop one sampling list, sealing its sink when the sink is a
        writer with ``close()`` (e.g. an MTF store's directory)."""
        run = self._daq.pop(name, None)
        if run is None:
            raise MeasurementError(
                f"{self.node}: no running daq list {name!r}")
        run["active"] = False
        closer = getattr(run["sink_target"], "close", None)
        if callable(closer):
            closer()

    def detach(self) -> None:
        """Stop every DAQ list and disconnect."""
        for name in list(self._daq):
            self.stop_daq(name)
        self.disconnect()

    # -- determinism ---------------------------------------------------
    def sample_rows(self) -> list[list]:
        """The retained DAQ rows (picklable, JSON-native)."""
        return list(self.samples)

    def samples_digest(self) -> str:
        """SHA-256 over the canonical JSON of the sample rows."""
        return samples_digest(self.samples)

    def __repr__(self) -> str:
        return (f"<MeasurementService {self.node} "
                f"entries={len(self.registry)} "
                f"daq={sorted(self._daq)} samples={len(self.samples)}>")


def samples_digest(rows: list) -> str:
    """Canonical digest of DAQ rows (shared by service and reports)."""
    body = json.dumps(rows, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Live-graph binding
# ----------------------------------------------------------------------
def bind_accessors(built, system) -> dict[str, Callable[[], object]]:
    """Accessor per measurement of :func:`build_registry`, bound to the
    live handles of one :class:`~repro.verify.oracle.BuiltSystem`."""
    sim = built.sim
    accessors: dict[str, Callable[[], object]] = {
        "sim.now": lambda: sim.now,
        "sim.executed": lambda: sim.executed,
    }
    for ecu, kernel in built.kernels.items():
        accessors[f"ecu.{ecu}.busy_ns"] = \
            (lambda k: lambda: k.busy_ns)(kernel)
        for name, task in kernel.tasks.items():
            accessors[f"task.{name}.completions"] = \
                (lambda t: lambda: t.jobs_completed)(task)
    chain = system.chain
    if chain is not None and built.rx_stack is not None:
        rx = built.rx_stack
        accessors[f"signal.{chain.signal_name}"] = \
            lambda: rx.read_signal(chain.signal_name)
        accessors[f"signal.{chain.signal_name}.age"] = \
            lambda: rx.signal_age(chain.signal_name)
    if chain is not None and built.receiver is not None:
        accessors[f"e2e.{chain.pdu_name}.errors"] = \
            lambda: built.receiver.error_count
    if chain is not None and built.probe is not None:
        accessors[f"chain.{chain.pdu_name}.deliveries"] = \
            lambda: len(built.probe.latencies)
    return accessors


def bind_appliers(built, system) -> dict[str, Callable]:
    """Post-build appliers: poke the live object graph so an applied
    calibration write takes effect mid-run (the E2E profile object is
    shared by protector and receiver, so both ends see the change)."""
    appliers: dict[str, Callable] = {}
    receiver = built.receiver
    if receiver is not None:
        def set_timeout(value, profile=receiver.profile):
            profile.timeout = value

        def set_max_delta(value, profile=receiver.profile):
            profile.max_delta_counter = value

        appliers["chain.timeout"] = set_timeout
        appliers["chain.max_delta_counter"] = set_max_delta
    return appliers


# ----------------------------------------------------------------------
# Generic attachment (campaign worlds and other duck-typed sims)
# ----------------------------------------------------------------------
def attach_world(world, node: str = "MEAS:world") -> MeasurementService:
    """Attach to any object exposing ``sim`` (and optionally ``trace``,
    ``receiver``) — the fault-campaign ``ReferenceWorld`` shape.  Only
    generic measurements are registered; there is no calibration set."""
    accessors: dict[str, Callable[[], object]] = {
        "sim.now": lambda: world.sim.now,
        "sim.executed": lambda: world.sim.executed,
    }
    trace = getattr(world, "trace", None)
    if trace is not None:
        accessors["trace.records"] = lambda: len(trace) + trace.spilled
    receiver = getattr(world, "receiver", None)
    if receiver is not None:
        accessors["e2e.errors"] = lambda: receiver.error_count
    registry = MeasurementRegistry(node)
    for name in accessors:
        registry.add(name, MEASUREMENT,
                     unit="ns" if name == "sim.now" else "count")
    registry.finalize()
    return MeasurementService(world.sim, registry, accessors, node=node)
