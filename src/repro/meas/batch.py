"""Campaign-scale measurement: DAQ over the parallel exec engine.

``measure_models`` fans systems out over :mod:`repro.exec` exactly
like :func:`repro.model.build.verify_models` does: each worker builds
the live simulation, attaches a :class:`MeasurementService`, runs the
default DAQ list to the horizon, and returns its plain sample rows.
Results merge in plan order, so the aggregate
:meth:`MeasurementReport.digest` is byte-identical for ``jobs=1``,
``jobs=N`` and ``--resume`` — the determinism contract every other
report of this library already honours.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.meas.service import (DEFAULT_DAQ_PERIOD, MeasurementService,
                                default_daq, samples_digest)
from repro.verify.oracle import build_system, default_horizon


@dataclass
class MeasurementReport:
    """Aggregate DAQ result over a batch of systems."""

    period: int
    horizon: Optional[int]
    #: per-system ``(name, rows)`` in plan order.
    results: list = field(default_factory=list)

    @property
    def sample_count(self) -> int:
        return sum(len(rows) for __, rows in self.results)

    def digest(self) -> str:
        """Canonical digest over per-system rows, sorted by system
        name — stable under any executor and completion order."""
        ordered = sorted(self.results, key=lambda pair: pair[0])
        return samples_digest([[name, rows] for name, rows in ordered])

    def format(self) -> str:
        lines = [f"daq measurement: systems={len(self.results)} "
                 f"period={self.period} horizon={self.horizon}"]
        width = max((len(name) for name, __ in self.results), default=4)
        for name, rows in sorted(self.results, key=lambda p: p[0]):
            ticks = len({row[0] for row in rows})
            lines.append(f"  {name:<{width}}  samples={len(rows):>7} "
                         f"ticks={ticks}")
        lines.append(f"measurement digest: sha256:{self.digest()}")
        return "\n".join(lines)


def _daq_worker(horizon: Optional[int], period: int, system,
                seed: int) -> tuple:
    """Plan worker (module-level, picklable): build, attach, sample.

    ``seed`` is the engine's spawn-derived per-item seed; the system
    spec is already fully determined, so it is unused — same contract
    as the verify worker."""
    built = build_system(system)
    service = MeasurementService.attach(built, system)
    service.connect()
    service.start_daq(default_daq(service.registry, period))
    built.sim.run_until(horizon if horizon is not None
                        else default_horizon(system))
    service.detach()
    return system.name, service.sample_rows()


def measure_models(models: Sequence, period: int = DEFAULT_DAQ_PERIOD,
                   horizon: Optional[int] = None, jobs: int = 1,
                   checkpoint=None, resume: bool = False,
                   retries: int = 1, progress=None) -> MeasurementReport:
    """Run the default DAQ list against every model (or system).

    Accepts :class:`~repro.model.build.Model` objects or raw
    :class:`~repro.verify.generator.GeneratedSystem` specs."""
    from repro.exec import Plan, execute

    systems = tuple(model.build() if hasattr(model, "to_json")
                    else model for model in models)
    plan = Plan(f"meas-daq:n={len(systems)}:period={period}"
                f":horizon={horizon}",
                functools.partial(_daq_worker, horizon, period),
                systems, base_seed=0)
    outcome = execute(plan, jobs=jobs, retries=retries,
                      checkpoint=checkpoint, resume=resume,
                      progress=progress)
    outcome.raise_on_failure()
    return MeasurementReport(period, horizon, list(outcome.results))
