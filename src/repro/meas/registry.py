"""A2L-like measurement & calibration registry.

Real automotive tooling describes an ECU's measurable signals and
calibratable characteristics in an A2L file: every entry has a name, a
memory address, a datatype, a unit and — for characteristics — the
configuration class that says when the value may still change.  This
module mirrors that for *simulated* ECUs: a
:class:`MeasurementRegistry` is generated from a
:class:`~repro.verify.generator.GeneratedSystem` (or a
:class:`~repro.model.build.Model`) plus, optionally, the live
calibration :class:`~repro.core.config.ConfigurationSet`, and carries

* **measurements** — read-only live quantities (signal values, kernel
  busy time, E2E verdict counters, chain latencies, sim clock);
* **characteristics** — the post-build/link-time/pre-compile
  :class:`~repro.core.config.ConfigParameter` catalog, of which only
  the post-build class is writable at runtime (paper Section 2).

Addresses are synthetic but **stable**: entries of each kind are
numbered in sorted-name order from a per-kind base with a fixed
stride, so the same system always produces the same address map and
:meth:`MeasurementRegistry.digest` is deterministic — the property the
CI ``meas-smoke`` job pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.core.config import (LINK_TIME, POST_BUILD, PRE_COMPILE,
                               ConfigurationSet)
from repro.errors import ConfigurationError

#: Entry kinds.
MEASUREMENT = "measurement"
CHARACTERISTIC = "characteristic"

#: Synthetic address spaces (disjoint per kind), A2L-style hex map.
CHARACTERISTIC_BASE = 0x1000_0000
MEASUREMENT_BASE = 0x2000_0000
ADDRESS_STRIDE = 0x10

#: Characteristic entry names are the parameter name under this prefix.
CALIB_PREFIX = "calib."


@dataclass(frozen=True)
class RegistryEntry:
    """One named, addressable entry of the registry."""

    name: str
    kind: str
    address: int
    datatype: str = "sint64"
    unit: str = ""
    description: str = ""
    #: configuration class for characteristics, "" for measurements.
    config_class: str = ""

    @property
    def writable(self) -> bool:
        """Only post-build characteristics may change at runtime."""
        return self.kind == CHARACTERISTIC \
            and self.config_class == POST_BUILD

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "address": self.address, "datatype": self.datatype,
                "unit": self.unit, "description": self.description,
                "config_class": self.config_class}


class MeasurementRegistry:
    """The catalog: name -> :class:`RegistryEntry`, with stable
    addresses and a deterministic digest."""

    def __init__(self, system_name: str = ""):
        self.system_name = system_name
        self._entries: dict[str, RegistryEntry] = {}

    # -- construction --------------------------------------------------
    def add(self, name: str, kind: str, datatype: str = "sint64",
            unit: str = "", description: str = "",
            config_class: str = "") -> None:
        """Stage one entry.  Addresses are (re)assigned on
        :meth:`finalize`, so insertion order never leaks into them."""
        if kind not in (MEASUREMENT, CHARACTERISTIC):
            raise ConfigurationError(
                f"registry entry {name!r}: unknown kind {kind!r}")
        if name in self._entries:
            raise ConfigurationError(
                f"registry: duplicate entry {name!r}")
        self._entries[name] = RegistryEntry(
            name, kind, 0, datatype, unit, description, config_class)

    def finalize(self) -> "MeasurementRegistry":
        """Assign addresses: per kind, sorted-name order from the
        kind's base with :data:`ADDRESS_STRIDE`; returns self."""
        for kind, base in ((CHARACTERISTIC, CHARACTERISTIC_BASE),
                           (MEASUREMENT, MEASUREMENT_BASE)):
            names = sorted(n for n, e in self._entries.items()
                           if e.kind == kind)
            for index, name in enumerate(names):
                entry = self._entries[name]
                self._entries[name] = RegistryEntry(
                    entry.name, entry.kind, base + index * ADDRESS_STRIDE,
                    entry.datatype, entry.unit, entry.description,
                    entry.config_class)
        return self

    # -- lookup --------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise ConfigurationError(
                f"registry: unknown entry {name!r}")
        return entry

    def names(self, kind: Optional[str] = None) -> list[str]:
        """Sorted entry names, optionally filtered by kind."""
        return sorted(n for n, e in self._entries.items()
                      if kind is None or e.kind == kind)

    def measurements(self) -> list[RegistryEntry]:
        return [self._entries[n] for n in self.names(MEASUREMENT)]

    def characteristics(self) -> list[RegistryEntry]:
        return [self._entries[n] for n in self.names(CHARACTERISTIC)]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- export --------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """Canonical rows: sorted by name."""
        return [self._entries[n].to_dict() for n in self.names()]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of all entries — identical
        for identical systems, regardless of construction order."""
        body = json.dumps({"system": self.system_name,
                           "entries": self.to_dicts()},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def format_table(self) -> str:
        """Human-readable A2L-style listing."""
        lines = [f"registry: {self.system_name or '(unnamed)'} "
                 f"({len(self)} entries)"]
        width = max((len(n) for n in self.names()), default=4)
        for entry in (*self.characteristics(), *self.measurements()):
            klass = entry.config_class or "-"
            lines.append(
                f"  {entry.address:#010x}  {entry.name:<{width}}  "
                f"{entry.kind:<14} {entry.datatype:<7} "
                f"{entry.unit or '-':<6} {klass}")
        lines.append(f"registry digest: sha256:{self.digest()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MeasurementRegistry {self.system_name} "
                f"entries={len(self)}>")


# ----------------------------------------------------------------------
# Generation from a system description
# ----------------------------------------------------------------------
def _as_system(source):
    """Accept a GeneratedSystem or a Model (anything with .build())."""
    build = getattr(source, "build", None)
    if callable(build) and not hasattr(source, "tasksets"):
        return build()
    return source


def calibration_set(source) -> ConfigurationSet:
    """The calibration :class:`ConfigurationSet` of one system.

    Declares every tunable the generated system carries with its
    paper-faithful configuration class, then runs ``compile()`` and
    ``link()`` so the set reaches the *linked* stage a live ECU is in:
    pre-compile and link-time parameters are frozen, post-build
    characteristics stay writable (with validators, so a bad
    calibration write is rejected and the prior value survives).
    """
    system = _as_system(source)
    config = ConfigurationSet(f"calib:{system.name}")
    for ecu in system.fp_ecus:
        for spec in system.tasksets[ecu]:
            config.declare(f"task.{spec.name}.period", spec.period,
                           PRE_COMPILE,
                           description=f"activation period of {spec.name}")
            config.declare(f"task.{spec.name}.wcet", spec.wcet,
                           PRE_COMPILE,
                           description=f"budgeted WCET of {spec.name}")
    if system.can is not None:
        config.declare("can.bitrate_bps", system.can.bitrate_bps,
                       LINK_TIME, description="CAN bus bitrate")
    if system.tdma is not None:
        config.declare("tdma.major_frame", system.tdma.major_frame,
                       PRE_COMPILE, description="TDMA major frame length")
    chain = system.chain
    if chain is not None:
        config.declare("chain.data_id", chain.data_id, PRE_COMPILE,
                       description="E2E CRC salt of the chain PDU")
        config.declare("chain.counter_bits", chain.counter_bits,
                       PRE_COMPILE,
                       description="alive counter width in bits")
        modulo = 1 << chain.counter_bits
        config.declare(
            "chain.max_delta_counter", chain.max_delta_counter,
            POST_BUILD,
            validator=lambda v: isinstance(v, int) and 1 <= v < modulo - 1,
            description="largest tolerated alive-counter jump")
        config.declare(
            "chain.timeout", chain.timeout, POST_BUILD,
            validator=lambda v: isinstance(v, int) and v > 0,
            description="reception supervision window [ns]")
    config.declare(
        "dem.debounce_threshold", 1, POST_BUILD,
        validator=lambda v: isinstance(v, int) and 1 <= v <= 10,
        description="DEM debounce confirmation threshold")
    config.compile()
    config.link()
    return config


def build_registry(source,
                   config: Optional[ConfigurationSet] = None
                   ) -> MeasurementRegistry:
    """Generate the registry of one system (a
    :class:`~repro.verify.generator.GeneratedSystem` or a
    :class:`~repro.model.build.Model`).

    Measurements cover the quantities the live object graph exposes
    (see :func:`repro.meas.service.bind_accessors`); characteristics
    mirror ``config`` (built via :func:`calibration_set` when not
    given).  Identical systems yield byte-identical registries.
    """
    system = _as_system(source)
    if config is None:
        config = calibration_set(system)
    registry = MeasurementRegistry(system.name)

    # -- characteristics from the configuration set --------------------
    for param in config.parameters():
        datatype = "float64" if isinstance(param.value, float) else "sint64"
        unit = "ns" if param.name.endswith(
            ("period", "timeout", "major_frame")) else \
            ("bps" if param.name.endswith("bitrate_bps") else "")
        registry.add(CALIB_PREFIX + param.name, CHARACTERISTIC,
                     datatype=datatype, unit=unit,
                     description=param.description,
                     config_class=param.config_class)

    # -- measurements from the system description ----------------------
    registry.add("sim.now", MEASUREMENT, unit="ns",
                 description="simulated clock")
    registry.add("sim.executed", MEASUREMENT, unit="count",
                 description="dispatched simulation events")
    ecus = list(system.fp_ecus)
    if system.tdma is not None:
        ecus.append(system.tdma.ecu)
    for ecu in ecus:
        registry.add(f"ecu.{ecu}.busy_ns", MEASUREMENT, unit="ns",
                     description=f"accumulated CPU busy time of {ecu}")
    for spec in system.all_task_specs():
        registry.add(f"task.{spec.name}.completions", MEASUREMENT,
                     unit="count",
                     description=f"jobs completed by {spec.name}")
    chain = system.chain
    if chain is not None and system.can is not None:
        registry.add(f"signal.{chain.signal_name}", MEASUREMENT,
                     description="last received chain signal value")
        registry.add(f"signal.{chain.signal_name}.age", MEASUREMENT,
                     unit="ns",
                     description="time since last chain signal update")
        registry.add(f"e2e.{chain.pdu_name}.errors", MEASUREMENT,
                     unit="count",
                     description="E2E verdicts other than OK")
        registry.add(f"chain.{chain.pdu_name}.deliveries", MEASUREMENT,
                     unit="count",
                     description="end-to-end chain deliveries observed")
    return registry.finalize()
