"""The ``repro meas`` subcommand: measurement & calibration tooling.

==============================  ======================================
``registry PATH|NAME ...``       print each model's A2L-like registry
                                 (addresses, units, config classes)
                                 and its deterministic digest
``daq PATH|NAME ...``            run the default DAQ list against each
                                 model on the exec engine
                                 (``--jobs/--checkpoint/--resume``),
                                 print the jobs/resume-invariant
                                 measurement digest, optionally stream
                                 samples to an MTF file (``--mtf-out``)
``mtf PATH``                     summarize an MTF store from its
                                 directory (no data scan), or read one
                                 signal over a time range
                                 (``--signal/--start/--end``)
==============================  ======================================

Exit codes follow the ``repro model`` convention: ``0`` ok, ``1`` an
operation failed, ``2`` an input could not be read.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError, ReproError
from repro.meas.batch import measure_models
from repro.meas.mtf import MtfReader, MtfWriter, is_mtf_file, summarize_mtf
from repro.meas.registry import build_registry
from repro.meas.service import DEFAULT_DAQ_PERIOD
from repro.units import ms, us

EXIT_OK, EXIT_FAILED, EXIT_UNREADABLE = 0, 1, 2


def _models(refs: list[str]):
    from repro.model.cli import model_from_ref
    return [model_from_ref(ref) for ref in refs]


def _load_status(exc: ConfigurationError) -> int:
    """1 for a readable-but-invalid document, 2 for unreadable input —
    the ``repro model`` convention."""
    from repro.model.schema import ModelValidationError
    return EXIT_FAILED if isinstance(exc, ModelValidationError) \
        else EXIT_UNREADABLE


def _registry(refs: list[str]) -> int:
    try:
        models = _models(refs)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return _load_status(exc)
    for model in models:
        print(build_registry(model).format_table())
    return EXIT_OK


def _daq(options) -> int:
    try:
        models = _models(options.refs)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return _load_status(exc)
    period = us(options.period_us) if options.period_us else \
        DEFAULT_DAQ_PERIOD
    horizon = ms(options.horizon_ms) if options.horizon_ms else None
    progress = None
    if options.progress:
        from repro.exec import ProgressMeter
        progress = ProgressMeter(
            len(models), len(models),
            emit=lambda line: print(line, file=sys.stderr))
    try:
        report = measure_models(models, period=period, horizon=horizon,
                                jobs=options.jobs,
                                checkpoint=options.checkpoint,
                                resume=options.resume,
                                progress=progress)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FAILED
    print(report.format())
    if options.mtf_out:
        with MtfWriter(options.mtf_out) as writer:
            for name, rows in sorted(report.results,
                                     key=lambda pair: pair[0]):
                writer.write_batch([
                    (time, f"daq.{daq_name}", f"{name}:{entry}",
                     {"value": value})
                    for time, daq_name, entry, value in rows])
        print(f"wrote {options.mtf_out} "
              f"({report.sample_count} samples)")
    return EXIT_OK


def _mtf(options) -> int:
    if not is_mtf_file(options.path):
        print(f"{options.path}: not an MTF file", file=sys.stderr)
        return EXIT_UNREADABLE
    try:
        if options.signal is None:
            print(summarize_mtf(options.path))
            return EXIT_OK
        with MtfReader(options.path) as reader:
            samples = reader.read(options.signal, options.start,
                                  options.end)
            for time, data in samples:
                print(f"{time} {data}")
            print(f"{len(samples)} sample(s) from {reader.blocks_read} "
                  f"block(s) of {reader.block_count(options.signal)} "
                  f"for {options.signal!r}", file=sys.stderr)
    except ConfigurationError as exc:
        # A damaged store (truncated, corrupt directory or block) is
        # an unreadable input, reported — not a traceback.
        print(str(exc), file=sys.stderr)
        return EXIT_UNREADABLE
    return EXIT_OK


def meas_command(args: list[str]) -> int:
    """Entry point for ``repro meas ...`` (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro meas",
        description="A2L-like registries, XCP-style DAQ runs and "
                    "MTF mass-trace stores for simulated ECUs")
    commands = parser.add_subparsers(dest="command", required=True)

    sub = commands.add_parser(
        "registry", help="print each model's measurement & calibration "
                         "registry and digest")
    sub.add_argument("refs", nargs="+", metavar="PATH|NAME")

    sub = commands.add_parser(
        "daq", help="run the default DAQ list against each model")
    sub.add_argument("refs", nargs="+", metavar="PATH|NAME")
    sub.add_argument("--period-us", type=int, default=0,
                     help="sampling period in µs (default 1000)")
    sub.add_argument("--horizon-ms", type=int, default=0,
                     help="simulation horizon in ms (default: per "
                          "system, 4x its longest period)")
    sub.add_argument("--jobs", type=int, default=1)
    sub.add_argument("--checkpoint", metavar="PATH")
    sub.add_argument("--resume", action="store_true")
    sub.add_argument("--progress", action="store_true")
    sub.add_argument("--mtf-out", metavar="PATH",
                     help="also write every sample to this MTF store")

    sub = commands.add_parser(
        "mtf", help="summarize an MTF store or read one signal")
    sub.add_argument("path", metavar="PATH")
    sub.add_argument("--signal", metavar="NAME",
                     help="read this signal instead of summarizing")
    sub.add_argument("--start", type=int, default=None, metavar="NS")
    sub.add_argument("--end", type=int, default=None, metavar="NS")

    options = parser.parse_args(args)
    if options.command == "registry":
        return _registry(options.refs)
    if options.command == "daq":
        return _daq(options)
    return _mtf(options)
