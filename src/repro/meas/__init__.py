"""repro.meas — the measurement & calibration plane.

Mirrors the tooling stack real automotive ECUs are developed with
(ROADMAP item 3): an **A2L-like registry** of named measurements and
calibration characteristics generated from a system description
(:mod:`repro.meas.registry`), an **XCP-like runtime service** for
live read/write/poll and cyclic DAQ sampling against a running
simulation with configuration-class write gating and freeze-frame
audit logging (:mod:`repro.meas.service`), a **columnar MDF-like
mass-trace store** with time-indexed per-signal blocks and a two-seek
reader (:mod:`repro.meas.mtf`), and a campaign-scale batch runner on
the parallel exec engine whose measurement digest is jobs/resume-
invariant (:mod:`repro.meas.batch`).

Where :mod:`repro.obs` observes the *harness* (counters, spans, logs
of the verification machinery itself), :mod:`repro.meas` observes the
*simulated ECUs*: signal values, kernel state, DEM state, and the
post-build characteristics the paper's Section 2 configuration
classes leave writable after link time.
"""

from repro.meas.batch import MeasurementReport, measure_models
from repro.meas.mtf import (MtfReader, MtfWriter, is_mtf_file,
                            summarize_mtf)
from repro.meas.registry import (CHARACTERISTIC, MEASUREMENT,
                                 MeasurementRegistry, RegistryEntry,
                                 build_registry, calibration_set)
from repro.meas.service import (DEFAULT_DAQ_PERIOD, DaqList,
                                MeasurementService, attach_world,
                                default_daq, samples_digest)

__all__ = [
    "MEASUREMENT", "CHARACTERISTIC",
    "RegistryEntry", "MeasurementRegistry",
    "build_registry", "calibration_set",
    "MeasurementService", "DaqList", "default_daq", "attach_world",
    "samples_digest", "DEFAULT_DAQ_PERIOD",
    "MtfWriter", "MtfReader", "is_mtf_file", "summarize_mtf",
    "MeasurementReport", "measure_models",
]
