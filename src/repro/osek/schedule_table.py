"""Schedule tables: statically planned, time-triggered task activation.

OSEKtime / AUTOSAR OS provide *schedule tables*: a repeating timeline of
expiry points, each activating tasks or setting events at a fixed offset
— the activation-side counterpart of TDMA execution windows, and the
mechanism mode management uses to change an ECU's temporal behaviour
atomically (``next_table`` switches take effect only at a cycle
boundary, so a mode change never tears a cycle in half).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError


class ExpiryPoint:
    """One expiry point: actions fired at ``offset`` into each cycle."""

    def __init__(self, offset: int,
                 activate: Optional[list] = None,
                 set_events: Optional[list] = None,
                 callback: Optional[Callable[[], None]] = None):
        if offset < 0:
            raise ConfigurationError("expiry offset must be >= 0")
        self.offset = offset
        self.activate = list(activate or [])
        self.set_events = list(set_events or [])
        self.callback = callback

    def fire(self, kernel) -> None:
        """Execute the expiry actions against the kernel."""
        for task in self.activate:
            kernel.activate(task)
        for event in self.set_events:
            event.set()
        if self.callback is not None:
            self.callback()

    def __repr__(self) -> str:
        return (f"<ExpiryPoint @{self.offset} "
                f"activates={[t.name for t in self.activate]}>")


class ScheduleTable:
    """A cyclic activation timeline bound to a kernel."""

    def __init__(self, kernel, name: str, duration: int,
                 expiry_points: list[ExpiryPoint],
                 repeating: bool = True):
        if duration <= 0:
            raise ConfigurationError(
                f"table {name}: duration must be > 0")
        if not expiry_points:
            raise ConfigurationError(
                f"table {name}: needs at least one expiry point")
        points = sorted(expiry_points, key=lambda p: p.offset)
        offsets = [p.offset for p in points]
        if len(set(offsets)) != len(offsets):
            raise ConfigurationError(
                f"table {name}: duplicate expiry offsets")
        if points[-1].offset >= duration:
            raise ConfigurationError(
                f"table {name}: expiry offset {points[-1].offset} "
                f"outside duration {duration}")
        self.kernel = kernel
        self.name = name
        self.duration = duration
        self.points = points
        self.repeating = repeating
        self.state = "stopped"
        self.cycles = 0
        self._next: Optional["ScheduleTable"] = None
        self._pending: list = []

    # ------------------------------------------------------------------
    def start_rel(self, delay: int = 0) -> None:
        """Start the table ``delay`` ns from now (OSEK
        ``StartScheduleTableRel``)."""
        if self.state != "stopped":
            raise ConfigurationError(
                f"table {self.name}: already {self.state}")
        self.state = "running"
        self._schedule_cycle(self.kernel.sim.now + delay)

    def stop(self) -> None:
        """Stop immediately; pending expiries of this cycle are
        cancelled (OSEK ``StopScheduleTable``)."""
        self.state = "stopped"
        for handle in self._pending:
            handle.cancel()
        self._pending.clear()

    def next_table(self, table: "ScheduleTable") -> None:
        """Switch to ``table`` at the end of the current cycle (OSEK
        ``NextScheduleTable``): the running cycle completes untouched."""
        if self.state != "running":
            raise ConfigurationError(
                f"table {self.name}: next_table needs a running table")
        if table.state != "stopped":
            raise ConfigurationError(
                f"table {table.name}: switch target must be stopped")
        self._next = table

    # ------------------------------------------------------------------
    def _schedule_cycle(self, cycle_start: int) -> None:
        self._pending.clear()
        for point in self.points:
            handle = self.kernel.sim.schedule_at(
                cycle_start + point.offset,
                lambda p=point: self._fire(p))
            self._pending.append(handle)
        self._pending.append(self.kernel.sim.schedule_at(
            cycle_start + self.duration,
            lambda: self._cycle_end(cycle_start + self.duration)))

    def _fire(self, point: ExpiryPoint) -> None:
        if self.state != "running":
            return
        self.kernel.trace.log(self.kernel.sim.now, "schedtable.expiry",
                              self.name, offset=point.offset)
        point.fire(self.kernel)

    def _cycle_end(self, at: int) -> None:
        if self.state != "running":
            return
        self.cycles += 1
        if self._next is not None:
            successor, self._next = self._next, None
            self.state = "stopped"
            self.kernel.trace.log(at, "schedtable.switch", self.name,
                                  to=successor.name)
            successor.state = "running"
            successor._schedule_cycle(at)
            return
        if not self.repeating:
            self.state = "stopped"
            return
        self._schedule_cycle(at)

    def __repr__(self) -> str:
        return (f"<ScheduleTable {self.name} {self.state} "
                f"points={len(self.points)} duration={self.duration}>")
