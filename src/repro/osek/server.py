"""Reservation-based scheduling: deferrable servers.

Each partition gets a *server* with a budget ``Q`` replenished every period
``P`` and a fixed priority.  Tasks of the partition execute at the server's
priority while the server has budget; when the budget is exhausted they are
suspended until the next replenishment.  This is the "resource reservation
policy" of the paper's Section 1: a misbehaving or newly-integrated partition
can consume at most ``Q`` every ``P`` of the CPU, bounding its interference
on other partitions while remaining more flexible (work-conserving within
the budget) than strict TDMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.osek.scheduler import Scheduler
from repro.osek.task import Job


@dataclass
class ServerSpec:
    """Reservation parameters for one partition."""

    partition: str
    budget: int
    period: int
    priority: int

    def __post_init__(self):
        if self.budget <= 0:
            raise ConfigurationError(
                f"server {self.partition}: budget must be > 0")
        if self.period < self.budget:
            raise ConfigurationError(
                f"server {self.partition}: period < budget")

    @property
    def utilization(self) -> float:
        """Reserved bandwidth (budget / period)."""
        return self.budget / self.period


class _ServerState:
    """Mutable runtime state (capacity, counters) of one server."""

    def __init__(self, spec: ServerSpec):
        self.spec = spec
        self.capacity = spec.budget
        self.replenishments = 0
        self.exhaustions = 0


class DeferrableServerScheduler(Scheduler):
    """Fixed-priority scheduling among deferrable servers.

    Jobs whose partition has no server run at their own task priority and
    compete directly — this models legacy/house tasks next to reserved
    partitions on the same ECU.
    """

    def __init__(self, servers: list[ServerSpec]):
        partitions = [s.partition for s in servers]
        if len(set(partitions)) != len(partitions):
            raise ConfigurationError("duplicate server partitions")
        self._servers = {s.partition: _ServerState(s) for s in servers}

    def attach(self, kernel) -> None:
        """Bind to the kernel and start the replenishment timers."""
        super().attach(kernel)
        for state in self._servers.values():
            self._schedule_replenishment(state)

    def _schedule_replenishment(self, state: _ServerState) -> None:
        def replenish():
            state.capacity = state.spec.budget
            state.replenishments += 1
            self._schedule_replenishment(state)
            self.kernel.request_dispatch()

        self.kernel.sim.schedule(state.spec.period, replenish)

    def server_of(self, job: Job) -> Optional[_ServerState]:
        """The server backing a job's partition (None = unreserved)."""
        partition = job.task.spec.partition
        if partition is None:
            return None
        return self._servers.get(partition)

    def _priority_of(self, job: Job) -> int:
        server = self.server_of(job)
        if server is None:
            return job.effective_priority
        return server.spec.priority

    def select(self, runnable, running, now):
        """Highest-priority server with budget and a runnable job."""
        eligible = []
        for job in runnable:
            server = self.server_of(job)
            if server is not None and server.capacity <= 0:
                continue
            eligible.append(job)
        if not eligible:
            return None
        return min(eligible, key=lambda j: (-self._priority_of(j), j.seq))

    def max_segment(self, job: Job, now: int) -> Optional[int]:
        """Bound the segment by the server's remaining capacity."""
        server = self.server_of(job)
        if server is None:
            return None
        return server.capacity

    def account(self, job: Job, consumed: int, now: int) -> None:
        """Charge consumed CPU time against the job's server budget."""
        server = self.server_of(job)
        if server is None:
            return
        server.capacity -= consumed
        if server.capacity <= 0:
            server.capacity = 0
            server.exhaustions += 1

    def capacity(self, partition: str) -> int:
        """Remaining budget of a partition's server (for tests/monitors)."""
        return self._servers[partition].capacity

    def stats(self) -> dict:
        """Per-partition replenishment/exhaustion counters."""
        return {
            name: {
                "replenishments": state.replenishments,
                "exhaustions": state.exhaustions,
                "capacity": state.capacity,
            }
            for name, state in self._servers.items()
        }

    def __repr__(self) -> str:
        return f"<DeferrableServerScheduler {sorted(self._servers)}>"
