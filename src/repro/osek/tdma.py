"""Table-driven time-partitioned (TDMA) CPU scheduling.

The processor's time line is divided into a repeating *major frame*; each
partition owns one or more windows inside it.  A task may only execute inside
a window of its partition, so the CPU behaves like the "nearly independent
sub-channels" the paper describes for time-triggered buses, applied to
computation: integrating a new partition cannot change when existing
partitions execute (temporal isolation by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.osek.scheduler import Scheduler, _fifo_key
from repro.osek.task import Job


@dataclass(frozen=True)
class Window:
    """One partition window: ``[start, start + length)`` within the major
    frame, owned by ``partition``."""

    start: int
    length: int
    partition: str

    @property
    def end(self) -> int:
        """Exclusive end of the window within the major frame."""
        return self.start + self.length


class TdmaScheduler(Scheduler):
    """Strict time-partitioned scheduler.

    Within an active window, the owning partition's ready jobs are served
    by fixed priority.  Outside any window of its partition a job never
    runs, regardless of CPU idleness — strict (non-work-conserving) TDMA,
    which is what gives composability.
    """

    def __init__(self, windows: list[Window], major_frame: int):
        if major_frame <= 0:
            raise ConfigurationError("major_frame must be > 0")
        self.windows = sorted(windows, key=lambda w: w.start)
        self.major_frame = major_frame
        self._validate()

    def _validate(self) -> None:
        prev_end = 0
        for win in self.windows:
            if win.length <= 0:
                raise ConfigurationError(
                    f"window {win} has non-positive length")
            if win.start < prev_end:
                raise ConfigurationError(
                    f"window {win} overlaps the previous window")
            if win.end > self.major_frame:
                raise ConfigurationError(
                    f"window {win} exceeds major frame {self.major_frame}")
            prev_end = win.end

    # ------------------------------------------------------------------
    def partitions(self) -> set:
        """Names of the partitions owning windows."""
        return {w.partition for w in self.windows}

    def active_window(self, now: int) -> Optional[Window]:
        """Window containing ``now``, if any (start inclusive, end
        exclusive — a window ending exactly now is not active)."""
        phase = now % self.major_frame
        for win in self.windows:
            if win.start <= phase < win.end:
                return win
        return None

    def next_window_start(self, now: int) -> Optional[int]:
        """Absolute start time of the next window strictly after ``now``
        (or at ``now`` if one starts exactly now and is active)."""
        if not self.windows:
            return None
        phase = now % self.major_frame
        base = now - phase
        for win in self.windows:
            if win.start > phase:
                return base + win.start
        return base + self.major_frame + self.windows[0].start

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def select(self, runnable, running, now):
        """Highest-priority ready job of the active window's partition."""
        win = self.active_window(now)
        if win is None:
            return None
        eligible = [j for j in runnable
                    if j.task.spec.partition == win.partition]
        if not eligible:
            return None
        return min(eligible, key=_fifo_key)

    def max_segment(self, job: Job, now: int) -> Optional[int]:
        """Bound the segment by the active window's remaining time."""
        win = self.active_window(now)
        if win is None:
            return 0
        phase = now % self.major_frame
        return win.end - phase

    def next_dispatch_time(self, now, has_runnable):
        """Next window start, when ready jobs are waiting."""
        if not has_runnable:
            return None
        return self.next_window_start(now)

    def __repr__(self) -> str:
        return (f"<TdmaScheduler {len(self.windows)} windows, "
                f"major={self.major_frame}>")


def build_even_schedule(partitions: list[str], major_frame: int,
                        slack_fraction: float = 0.0) -> TdmaScheduler:
    """Convenience constructor: one equal window per partition.

    ``slack_fraction`` of the major frame is left unallocated at the end —
    headroom "against future changes" (paper Section 1); experiment E8
    measures how much that reservation buys.
    """
    if not partitions:
        raise ConfigurationError("need at least one partition")
    if not 0.0 <= slack_fraction < 1.0:
        raise ConfigurationError(
            f"slack_fraction must be in [0, 1), got {slack_fraction}")
    usable = round(major_frame * (1.0 - slack_fraction))
    width = usable // len(partitions)
    if width <= 0:
        raise ConfigurationError(
            "major frame too small for the requested partitions")
    windows = [Window(i * width, width, part)
               for i, part in enumerate(partitions)]
    return TdmaScheduler(windows, major_frame)
