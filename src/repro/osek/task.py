"""Task model for the simulated AUTOSAR/OSEK-like operating system.

A :class:`TaskSpec` is the static description (the information an AUTOSAR
template would carry, extended with the timing attributes the paper argues
must be added to the meta-model: period, WCET, deadline, jitter, budget).
A :class:`Job` is one activation of a task inside the kernel.

Task *bodies* are generators yielding requirements:

* :class:`Execute` — consume CPU time;
* :class:`Acquire` / :class:`Release` — OSEK resource under the immediate
  ceiling priority protocol;
* :class:`WaitEvent` — suspend until an OSEK event is set (extended tasks).

A task without an explicit body runs a single ``Execute`` of its sampled
execution time — the common case for basic periodic tasks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generator, Optional

from repro.errors import ConfigurationError, SimulationError

#: ASIL criticality levels, least to most critical (ISO 26262 vocabulary;
#: the paper speaks of "DASes of different criticality").
CRITICALITY_LEVELS = ("QM", "A", "B", "C", "D")


class Execute:
    """Requirement: consume ``ticks`` ns of CPU time."""

    __slots__ = ("ticks",)

    def __init__(self, ticks: int):
        if ticks < 0:
            raise SimulationError(f"negative execution time {ticks}")
        self.ticks = ticks


class Acquire:
    """Requirement: lock an OSEK resource (ICPP, never blocks)."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        self.resource = resource


class Release:
    """Requirement: unlock a previously acquired OSEK resource."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        self.resource = resource


class WaitEvent:
    """Requirement: suspend until the given event is set.

    ``clear`` controls whether the event is consumed on wake-up (the usual
    OSEK ``ClearEvent`` immediately after ``WaitEvent`` pattern).
    """

    __slots__ = ("event", "clear")

    def __init__(self, event, clear: bool = True):
        self.event = event
        self.clear = clear


@dataclass
class TaskSpec:
    """Static description of a task.

    ``priority``: larger number = more important (OSEK convention).
    ``period`` ``None`` means event/sporadically activated.
    ``deadline`` is relative to activation; defaults to the period.
    ``budget`` is an enforced per-job execution-time budget (timing
    protection); ``None`` disables enforcement.
    ``partition`` names the time partition / server the task belongs to
    under isolation-aware schedulers.
    """

    name: str
    wcet: int
    period: Optional[int] = None
    offset: int = 0
    deadline: Optional[int] = None
    priority: int = 0
    partition: Optional[str] = None
    max_activations: int = 1
    budget: Optional[int] = None
    jitter: int = 0
    bcet: Optional[int] = None
    criticality: str = "QM"

    def __post_init__(self):
        if self.wcet <= 0:
            raise ConfigurationError(f"task {self.name}: wcet must be > 0")
        if self.period is not None and self.period <= 0:
            raise ConfigurationError(f"task {self.name}: period must be > 0")
        if self.offset < 0:
            raise ConfigurationError(f"task {self.name}: negative offset")
        if self.deadline is None:
            self.deadline = self.period
        if self.bcet is None:
            self.bcet = self.wcet
        if not 0 < self.bcet <= self.wcet:
            raise ConfigurationError(
                f"task {self.name}: need 0 < bcet <= wcet "
                f"(bcet={self.bcet}, wcet={self.wcet})")
        if self.criticality not in CRITICALITY_LEVELS:
            raise ConfigurationError(
                f"task {self.name}: unknown criticality {self.criticality!r}")
        if self.max_activations < 1:
            raise ConfigurationError(
                f"task {self.name}: max_activations must be >= 1")

    @property
    def utilization(self) -> float:
        """WCET/period for periodic tasks, 0.0 for sporadic ones."""
        if self.period is None:
            return 0.0
        return self.wcet / self.period


class JobState(Enum):
    """Lifecycle states of a job."""
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"
    DONE = "done"
    KILLED = "killed"


_job_seq = itertools.count()

BodyFactory = Callable[["Job"], Generator]


class Task:
    """A task registered with a kernel: spec + behaviour hooks."""

    def __init__(self, spec: TaskSpec,
                 body: Optional[BodyFactory] = None,
                 execution_time: Optional[Callable[[], int]] = None,
                 on_start: Optional[Callable[["Job"], None]] = None,
                 on_complete: Optional[Callable[["Job"], None]] = None):
        self.spec = spec
        self.body = body
        self.execution_time = execution_time
        self.on_start = on_start
        self.on_complete = on_complete
        self.pending_jobs: list[Job] = []
        self.jobs_activated = 0
        self.jobs_completed = 0
        self.activations_lost = 0

    @property
    def name(self) -> str:
        """The task's (spec) name."""
        return self.spec.name

    def sample_execution_time(self) -> int:
        """Execution demand for a new job (default: the WCET)."""
        if self.execution_time is not None:
            demand = self.execution_time()
            if demand <= 0:
                raise SimulationError(
                    f"task {self.name}: execution_time() returned {demand}")
            return demand
        return self.spec.wcet

    def make_body(self, job: "Job") -> Generator:
        """Instantiate the body generator for a new job."""
        if self.body is not None:
            return self.body(job)
        return _default_body(job)

    def __repr__(self) -> str:
        return f"<Task {self.name} prio={self.spec.priority}>"


def _default_body(job: "Job") -> Generator:
    yield Execute(job.demand)


class Job:
    """One activation of a task."""

    def __init__(self, task: Task, activation_time: int):
        self.task = task
        self.activation_time = activation_time
        self.seq = next(_job_seq)
        self.demand = task.sample_execution_time()
        self.state = JobState.READY
        self.consumed = 0
        self.started_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.effective_priority = task.spec.priority
        self.held_resources: list = []
        self._body = task.make_body(self)
        self._current: Optional[Execute] = None
        self._remaining = 0
        self.preemptions = 0

    @property
    def name(self) -> str:
        """The owning task's name."""
        return self.task.name

    @property
    def absolute_deadline(self) -> Optional[int]:
        """Activation time plus the relative deadline (None = none)."""
        if self.task.spec.deadline is None:
            return None
        return self.activation_time + self.task.spec.deadline

    @property
    def budget_left(self) -> Optional[int]:
        """Execution budget remaining (None when unenforced)."""
        budget = self.task.spec.budget
        if budget is None:
            return None
        return max(0, budget - self.consumed)

    @property
    def remaining(self) -> int:
        """CPU time still owed to the current ``Execute`` requirement."""
        return self._remaining

    def __repr__(self) -> str:
        return (f"<Job {self.name}#{self.seq} act={self.activation_time} "
                f"{self.state.value}>")
