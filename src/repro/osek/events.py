"""OSEK events for extended tasks.

An extended task suspends with a ``WaitEvent`` requirement in its body and
is re-readied when another task (or an alarm, or an ISR model) sets the
event.  Events are sticky: setting an event nobody waits on is remembered
until consumed.
"""

from __future__ import annotations

from repro.osek.task import Job


class OsekEvent:
    """A settable/clearable event flag jobs can wait on."""

    def __init__(self, name: str):
        self.name = name
        self.is_set = False
        self._waiters: list[Job] = []
        self._kernel = None
        self.set_count = 0

    def _bind(self, kernel) -> None:
        self._kernel = kernel

    def set(self) -> None:
        """Set the event, waking all waiting jobs."""
        self.is_set = True
        self.set_count += 1
        if self._waiters and self._kernel is not None:
            waiters, self._waiters = self._waiters, []
            self._kernel._wake_jobs(waiters, self)

    def clear(self) -> None:
        """Clear the event flag."""
        self.is_set = False

    def _add_waiter(self, job: Job) -> None:
        self._waiters.append(job)

    @property
    def waiter_count(self) -> int:
        """Jobs currently blocked on the event."""
        return len(self._waiters)

    def __repr__(self) -> str:
        state = "set" if self.is_set else "clear"
        return f"<OsekEvent {self.name} {state}>"
