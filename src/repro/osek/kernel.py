"""Simulated ECU kernel: job lifecycle, dispatching, timing protection.

The kernel executes task bodies on one simulated CPU under a pluggable
:class:`~repro.osek.scheduler.Scheduler`.  It owns everything the scheduler
does not: activation (periodic or sporadic), execution-time accounting,
OSEK events/resources/alarms, per-job execution budgets ("timing
protection"), deadline monitoring and tracing.

Dispatching is event-driven.  Whenever the ready set or a policy boundary
changes, :meth:`EcuKernel.request_dispatch` coalesces a re-dispatch at the
current instant; while a job runs, a timer is armed at the earliest of its
completion, its budget exhaustion, and the scheduler's segment bound.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.osek.alarm import Alarm
from repro.osek.events import OsekEvent
from repro.osek.scheduler import Scheduler
from repro.osek.task import (Acquire, Execute, Job, JobState, Release, Task,
                             TaskSpec, WaitEvent)
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

#: Event-queue priorities: dispatches run after all same-instant activations
#: and wake-ups so one decision sees the complete picture.
_TIMER_PRIORITY = 90
_DISPATCH_PRIORITY = 100


class EcuKernel:
    """One ECU's operating system instance.

    ``budget_enforcement`` controls timing protection: ``"kill"``
    terminates a job the moment it exhausts its execution budget (and logs
    ``task.budget_overrun``); ``"off"`` ignores budgets.
    """

    def __init__(self, sim: Simulator, scheduler: Scheduler,
                 trace: Optional[Trace] = None, name: str = "ECU",
                 budget_enforcement: str = "kill"):
        if budget_enforcement not in ("kill", "off"):
            raise SimulationError(
                f"unknown budget_enforcement {budget_enforcement!r}")
        self.sim = sim
        self.scheduler = scheduler
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self.budget_enforcement = budget_enforcement
        self.tasks: dict[str, Task] = {}
        self._ready: list[Job] = []
        self._running: Optional[Job] = None
        self._seg_start = 0
        self._timer = None
        self._request_handle = None
        self.busy_ns = 0
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # Task registration & activation
    # ------------------------------------------------------------------
    def add_task(self, spec: TaskSpec, body=None, execution_time=None,
                 on_start=None, on_complete=None,
                 release_jitter: Optional[Callable[[], int]] = None,
                 auto_start: bool = True) -> Task:
        """Register a task.  Periodic specs are activated automatically at
        ``now + offset`` and every ``period`` thereafter (plus optional
        sampled ``release_jitter``) unless ``auto_start`` is False."""
        if spec.name in self.tasks:
            raise SimulationError(
                f"{self.name}: duplicate task name {spec.name!r}")
        task = Task(spec, body=body, execution_time=execution_time,
                    on_start=on_start, on_complete=on_complete)
        self.tasks[spec.name] = task
        if auto_start and spec.period is not None:
            self._schedule_periodic(task, self.sim.now + spec.offset,
                                    release_jitter)
        return task

    def _schedule_periodic(self, task: Task, nominal: int,
                           release_jitter) -> None:
        jitter = release_jitter() if release_jitter is not None else 0
        if jitter < 0:
            raise SimulationError(
                f"task {task.name}: negative release jitter {jitter}")

        def fire():
            self.activate(task)
            self._schedule_periodic(task, nominal + task.spec.period,
                                    release_jitter)

        self.sim.schedule_at(nominal + jitter, fire)

    def activate(self, task: Task) -> Optional[Job]:
        """Activate one job of ``task`` (OSEK ``ActivateTask``).

        Returns the new job, or None when the activation limit is reached
        (logged as ``task.activation_lost``)."""
        now = self.sim.now
        if len(task.pending_jobs) >= task.spec.max_activations:
            task.activations_lost += 1
            self.trace.log(now, "task.activation_lost", task.name)
            return None
        job = Job(task, now)
        task.pending_jobs.append(job)
        task.jobs_activated += 1
        self._ready.append(job)
        self.trace.log(now, "task.activate", task.name, job=job.seq)
        if job.absolute_deadline is not None:
            self.sim.schedule_at(job.absolute_deadline,
                                 lambda: self._deadline_check(job))
        self.request_dispatch()
        return job

    def _deadline_check(self, job: Job) -> None:
        if job.state in (JobState.DONE,) or getattr(job, "_miss_logged", False):
            return
        job._miss_logged = True
        self.trace.log(self.sim.now, "task.deadline_miss", job.name,
                       job=job.seq, at_deadline=True)

    # ------------------------------------------------------------------
    # OSEK object factories
    # ------------------------------------------------------------------
    def event(self, name: str) -> OsekEvent:
        """Create an OSEK event bound to this kernel."""
        ev = OsekEvent(name)
        ev._bind(self)
        return ev

    def alarm(self, name: str, action: Callable[[], None]) -> Alarm:
        """Create an alarm with an arbitrary action."""
        return Alarm(self, name, action)

    def alarm_activate(self, name: str, task: Task) -> Alarm:
        """Alarm whose action activates ``task``."""
        return Alarm(self, name, lambda: self.activate(task))

    def alarm_set_event(self, name: str, event: OsekEvent) -> Alarm:
        """Alarm whose action sets ``event``."""
        return Alarm(self, name, event.set)

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    def request_dispatch(self) -> None:
        """Coalesce a dispatch at the current instant."""
        if self._request_handle is not None:
            return
        self._request_handle = self.sim.schedule(
            0, self._dispatch, priority=_DISPATCH_PRIORITY)

    def _dispatch(self) -> None:
        self._request_handle = None
        now = self.sim.now
        self._checkpoint(now)
        if self._running is not None:
            self._progress(self._running, now)
        while True:
            runnable = list(self._ready)
            if self._running is not None:
                runnable.append(self._running)
            pick = self.scheduler.select(runnable, self._running, now)
            if pick is self._running:
                break
            if self._running is not None:
                self._preempt(now)
            if pick is None:
                break
            self._ready.remove(pick)
            status = self._advance(pick, now)
            if status == "run":
                self._start_segment(pick, now)
                break
            # "done"/"killed"/"wait" were handled inside _advance; the job
            # never occupied the CPU, so select again.
        self._arm_timer(now)

    def _progress(self, job: Job, now: int) -> None:
        """Drive the running job past finished requirements; may clear
        ``self._running`` when the job completes, waits or is killed."""
        status = self._advance(job, now)
        if status != "run":
            self._running = None

    def _advance(self, job: Job, now: int) -> str:
        """Advance the job's body to its next pending Execute.

        Returns ``"run"`` (has CPU demand), or terminal states ``"done"``,
        ``"wait"``, ``"killed"`` — which this method has already applied
        (state change, logging, queue removal)."""
        while True:
            if job._current is None:
                if self._budget_exhausted(job):
                    self._kill(job, now)
                    return "killed"
                try:
                    req = job._body.send(None)
                except StopIteration:
                    self._complete(job, now)
                    return "done"
                job._current = req
                if isinstance(req, Execute):
                    job._remaining = req.ticks
            req = job._current
            if isinstance(req, Execute):
                if job._remaining > 0:
                    return "run"
                job._current = None
            elif isinstance(req, Acquire):
                req.resource.acquire(job)
                self.trace.log(now, "task.acquire", job.name,
                               resource=req.resource.name)
                job._current = None
            elif isinstance(req, Release):
                req.resource.release(job)
                self.trace.log(now, "task.release", job.name,
                               resource=req.resource.name)
                job._current = None
            else:  # WaitEvent
                event = req.event
                if event.is_set:
                    if req.clear:
                        event.clear()
                    job._current = None
                else:
                    self._suspend(job, event, now)
                    return "wait"

    def _budget_exhausted(self, job: Job) -> bool:
        if self.budget_enforcement != "kill":
            return False
        budget = job.task.spec.budget
        return budget is not None and job.consumed >= budget

    def _checkpoint(self, now: int) -> None:
        """Account CPU time consumed by the running job since the segment
        started; enforce the execution budget."""
        job = self._running
        if job is None:
            return
        delta = now - self._seg_start
        self._seg_start = now
        if delta <= 0:
            return
        job._remaining -= delta
        job.consumed += delta
        self.busy_ns += delta
        self.scheduler.account(job, delta, now)
        if job._remaining < 0:
            raise SimulationError(
                f"{self.name}: job {job.name} over-ran its segment "
                f"({job._remaining} remaining)")
        if job._remaining > 0 and self._budget_exhausted(job):
            self._kill(job, now)
            self._running = None

    def _start_segment(self, job: Job, now: int) -> None:
        self._running = job
        self._seg_start = now
        job.state = JobState.RUNNING
        if job.started_at is None:
            job.started_at = now
            self.trace.log(now, "task.start", job.name, job=job.seq)
            if job.task.on_start is not None:
                job.task.on_start(job)
        else:
            self.trace.log(now, "task.resume", job.name, job=job.seq)

    def _preempt(self, now: int) -> None:
        job = self._running
        job.state = JobState.READY
        job.preemptions += 1
        self._ready.append(job)
        self._running = None
        self.trace.log(now, "task.preempt", job.name, job=job.seq)

    def _suspend(self, job: Job, event: OsekEvent, now: int) -> None:
        job.state = JobState.WAITING
        event._add_waiter(job)
        self.trace.log(now, "task.wait", job.name, event=event.name,
                       job=job.seq)

    def _wake_jobs(self, jobs: list[Job], event: OsekEvent) -> None:
        now = self.sim.now
        any_clear = False
        for job in jobs:
            req = job._current
            if isinstance(req, WaitEvent) and req.clear:
                any_clear = True
            job._current = None
            job.state = JobState.READY
            self._ready.append(job)
            self.trace.log(now, "task.wake", job.name, event=event.name,
                           job=job.seq)
        if any_clear:
            event.clear()
        self.request_dispatch()

    def _complete(self, job: Job, now: int) -> None:
        job.state = JobState.DONE
        job.completed_at = now
        task = job.task
        task.jobs_completed += 1
        if job in task.pending_jobs:
            task.pending_jobs.remove(job)
        for resource in list(job.held_resources):
            self.trace.log(now, "task.resource_leak", job.name,
                           resource=resource.name)
            resource.release(job)
        response = now - job.activation_time
        self.trace.log(now, "task.complete", job.name, job=job.seq,
                       response=response)
        deadline = job.absolute_deadline
        if (deadline is not None and now > deadline
                and not getattr(job, "_miss_logged", False)):
            job._miss_logged = True
            self.trace.log(now, "task.deadline_miss", job.name, job=job.seq,
                           lateness=now - deadline)
        if task.on_complete is not None:
            task.on_complete(job)

    def _kill(self, job: Job, now: int) -> None:
        job.state = JobState.KILLED
        task = job.task
        if job in task.pending_jobs:
            task.pending_jobs.remove(job)
        for resource in list(job.held_resources):
            resource.release(job)
        job._body.close()
        self.trace.log(now, "task.budget_overrun", job.name, job=job.seq,
                       consumed=job.consumed, budget=task.spec.budget)

    def _arm_timer(self, now: int) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        candidates = []
        job = self._running
        if job is not None:
            segment = job._remaining
            bound = self.scheduler.max_segment(job, now)
            if bound is not None:
                segment = min(segment, bound)
            if self.budget_enforcement == "kill":
                budget_left = job.budget_left
                if budget_left is not None:
                    segment = min(segment, budget_left)
            if segment <= 0:
                raise SimulationError(
                    f"{self.name}: scheduler selected {job.name} for a "
                    f"zero-length segment at t={now}")
            candidates.append(now + segment)
        boundary = self.scheduler.next_dispatch_time(now, bool(self._ready))
        if boundary is not None and boundary > now:
            candidates.append(boundary)
        if candidates:
            self._timer = self.sim.schedule_at(
                min(candidates), self._dispatch, priority=_TIMER_PRIORITY)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def response_times(self, task_name: str) -> list[int]:
        """Observed response times of completed jobs of ``task_name``.

        Records without a ``response`` key (foreign instrumentation
        sharing the trace) are skipped."""
        return self.trace.data_values("task.complete", "response",
                                      task_name)

    def deadline_misses(self, task_name: Optional[str] = None) -> int:
        """Count of deadline-miss records (optionally for one task)."""
        return len(self.trace.records("task.deadline_miss", task_name))

    def utilization(self, horizon: Optional[int] = None) -> float:
        """Fraction of time the CPU was busy up to ``horizon``
        (default: current simulation time)."""
        span = horizon if horizon is not None else self.sim.now
        if span <= 0:
            return 0.0
        return self.busy_ns / span

    def __repr__(self) -> str:
        return (f"<EcuKernel {self.name} tasks={len(self.tasks)} "
                f"scheduler={self.scheduler!r}>")
