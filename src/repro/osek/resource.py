"""OSEK resources under the Immediate Ceiling Priority Protocol (ICPP).

On acquisition a job's effective priority is raised to the resource ceiling
(the highest priority of any task that uses the resource).  On a
uniprocessor this guarantees freedom from deadlock and bounds
priority-inversion blocking to a single critical section — the blocking term
the response-time analysis in :mod:`repro.analysis.rta` accounts for.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.osek.task import Job


class OsekResource:
    """A shared resource with a priority ceiling.

    The ceiling can be given explicitly or derived with
    :meth:`register_user` before the system starts.
    """

    def __init__(self, name: str, ceiling: int = 0):
        self.name = name
        self.ceiling = ceiling
        self.holder: Job | None = None
        self.acquisitions = 0

    def register_user(self, priority: int) -> None:
        """Raise the ceiling to cover a task of the given priority."""
        self.ceiling = max(self.ceiling, priority)

    def acquire(self, job: Job) -> None:
        """Lock the resource for ``job`` (never blocks under ICPP)."""
        if self.holder is not None:
            raise SchedulingError(
                f"resource {self.name} already held by {self.holder.name}; "
                f"ICPP invariant violated (check ceiling configuration)")
        self.holder = job
        self.acquisitions += 1
        job.held_resources.append(self)
        job.effective_priority = max(job.effective_priority, self.ceiling)

    def release(self, job: Job) -> None:
        """Unlock the resource; restores the job's effective priority to
        the maximum of its base priority and remaining held ceilings."""
        if self.holder is not job:
            raise SchedulingError(
                f"job {job.name} releasing resource {self.name} "
                f"it does not hold")
        self.holder = None
        job.held_resources.remove(self)
        base = job.task.spec.priority
        ceilings = [r.ceiling for r in job.held_resources]
        job.effective_priority = max([base] + ceilings)

    def __repr__(self) -> str:
        held = self.holder.name if self.holder else "free"
        return f"<OsekResource {self.name} ceiling={self.ceiling} {held}>"
