"""OSEK alarms: timed activation of tasks, event setting, or callbacks.

Alarms are the OSEK mechanism behind periodic task release.  The kernel also
offers direct periodic activation for specs with a ``period``; alarms remain
useful for phase-shifted activations, watchdog kicks, and mode-dependent
timing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError


class Alarm:
    """A (possibly cyclic) alarm bound to a kernel.

    ``action`` runs each time the alarm expires.  Use the factory helpers on
    the kernel (``kernel.alarm_activate`` / ``kernel.alarm_set_event``) for
    the two standard OSEK actions.
    """

    def __init__(self, kernel, name: str, action: Callable[[], None]):
        self.kernel = kernel
        self.name = name
        self.action = action
        self.cycle: Optional[int] = None
        self.expirations = 0
        self._handle = None

    @property
    def armed(self) -> bool:
        """Whether the alarm is currently set."""
        return self._handle is not None

    def set_rel(self, delay: int, cycle: Optional[int] = None) -> None:
        """Arm the alarm ``delay`` ns from now; repeat every ``cycle`` ns
        if given (OSEK ``SetRelAlarm``)."""
        if self.armed:
            raise ConfigurationError(f"alarm {self.name} already armed")
        if cycle is not None and cycle <= 0:
            raise ConfigurationError(f"alarm {self.name}: cycle must be > 0")
        self.cycle = cycle
        self._handle = self.kernel.sim.schedule(delay, self._expire)

    def set_abs(self, when: int, cycle: Optional[int] = None) -> None:
        """Arm the alarm at absolute time ``when`` (OSEK ``SetAbsAlarm``)."""
        if self.armed:
            raise ConfigurationError(f"alarm {self.name} already armed")
        if cycle is not None and cycle <= 0:
            raise ConfigurationError(f"alarm {self.name}: cycle must be > 0")
        self.cycle = cycle
        self._handle = self.kernel.sim.schedule_at(when, self._expire)

    def cancel(self) -> None:
        """Disarm the alarm (OSEK ``CancelAlarm``); idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _expire(self) -> None:
        self._handle = None
        self.expirations += 1
        if self.cycle is not None:
            self._handle = self.kernel.sim.schedule(self.cycle, self._expire)
        self.action()

    def __repr__(self) -> str:
        state = "armed" if self.armed else "idle"
        return f"<Alarm {self.name} {state} cycle={self.cycle}>"
