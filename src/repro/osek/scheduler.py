"""Scheduler interface used by the ECU kernel.

The kernel owns job lifecycle (activation, execution accounting, events);
the scheduler only answers three questions:

* :meth:`Scheduler.select` — which runnable job should hold the CPU now?
* :meth:`Scheduler.max_segment` — for how long at most may it run before the
  decision must be re-evaluated (partition window end, budget exhaustion)?
* :meth:`Scheduler.next_dispatch_time` — when must the kernel re-dispatch
  even though no job event occurred (e.g. a TDMA window opens)?

:meth:`Scheduler.account` feeds consumed CPU time back for budget-based
policies.  This separation lets fixed-priority, table-driven TDMA and
reservation servers plug into the identical kernel, which is exactly the
comparison experiments E1/E2 need.
"""

from __future__ import annotations

from typing import Optional

from repro.osek.task import Job


class Scheduler:
    """Base scheduler; subclasses override the decision methods."""

    def attach(self, kernel) -> None:
        """Called once by the kernel; policies that need timed behaviour
        (server replenishment) can grab the simulator here."""
        self.kernel = kernel

    def select(self, runnable: list[Job], running: Optional[Job],
               now: int) -> Optional[Job]:
        """Job that should occupy the CPU at ``now`` (or None to idle)."""
        raise NotImplementedError

    def max_segment(self, job: Job, now: int) -> Optional[int]:
        """Upper bound (duration, ns) on the next uninterrupted execution
        segment of ``job``; None means unbounded."""
        return None

    def next_dispatch_time(self, now: int, has_runnable: bool
                           ) -> Optional[int]:
        """Absolute time of the next policy-driven dispatch point, if any."""
        return None

    def account(self, job: Job, consumed: int, now: int) -> None:
        """Notify that ``job`` consumed ``consumed`` ns ending at ``now``."""


def _fifo_key(job: Job) -> tuple:
    """Sort key: highest effective priority first, then FIFO by job seq."""
    return (-job.effective_priority, job.seq)


class FixedPriorityScheduler(Scheduler):
    """OSEK-style fixed-priority scheduling.

    ``preemptive=False`` models non-preemptive (cooperative) dispatching:
    a started job runs to completion of its current requirement chain.
    """

    def __init__(self, preemptive: bool = True):
        self.preemptive = preemptive

    def select(self, runnable, running, now):
        """Highest effective priority wins; FIFO among equals."""
        if not runnable:
            return None
        if not self.preemptive and running is not None and running in runnable:
            return running
        return min(runnable, key=_fifo_key)

    def __repr__(self) -> str:
        kind = "preemptive" if self.preemptive else "non-preemptive"
        return f"<FixedPriorityScheduler {kind}>"
