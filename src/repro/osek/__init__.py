"""AUTOSAR/OSEK-like operating system layer.

Provides the task model, three scheduling policies (fixed priority, strict
TDMA partitions, deferrable reservation servers), OSEK alarms, events,
ICPP resources, and a simulated ECU kernel with timing protection.
"""

from repro.osek.alarm import Alarm
from repro.osek.events import OsekEvent
from repro.osek.kernel import EcuKernel
from repro.osek.resource import OsekResource
from repro.osek.schedule_table import ExpiryPoint, ScheduleTable
from repro.osek.scheduler import FixedPriorityScheduler, Scheduler
from repro.osek.server import DeferrableServerScheduler, ServerSpec
from repro.osek.task import (CRITICALITY_LEVELS, Acquire, Execute, Job,
                             JobState, Release, Task, TaskSpec, WaitEvent)
from repro.osek.tdma import TdmaScheduler, Window, build_even_schedule

__all__ = [
    "Alarm", "OsekEvent", "EcuKernel", "ExpiryPoint", "OsekResource",
    "ScheduleTable",
    "FixedPriorityScheduler", "Scheduler",
    "DeferrableServerScheduler", "ServerSpec",
    "CRITICALITY_LEVELS", "Acquire", "Execute", "Job", "JobState",
    "Release", "Task", "TaskSpec", "WaitEvent",
    "TdmaScheduler", "Window", "build_even_schedule",
]
