"""Resilience verification: recovery under injected bus and ECU faults.

The differential oracle (:mod:`repro.verify.oracle`) checks that a
fault-*free* system stays inside its analytic bounds.  This module
checks the complement the paper actually argues for — that a system
carrying the full protection stack (E2E, watchdog, DEM, bus guardian,
recovery orchestrator) *survives* faults:

* **detected** — every injected fault produces its mechanism's
  detection evidence within an analytic detection-latency bound
  (E2E timeout/CRC, watchdog violation, guardian block, slot-loss);
* **contained** — no damage records outside the fault's containment
  region (babbling is physically gated by the guardian, a crashed
  producer only starves its own chain);
* **recovered** — after the fault window closes, the hysteresis
  policy (substitute → degrade → restart) heals every confirmed
  error and returns the mode machine to nominal.

Each :class:`~repro.verify.generator.FaultScenario` attached to a
generated system runs in its *own* fresh simulation, compared against
a fault-free **baseline** run to the same horizon: a mutated system
that nominally misses deadlines or times out (overload, not fault
effects) must not be blamed on the injected fault, so baseline damage
subjects are subtracted from containment, and detection/recovery
obligations are waived when the baseline already shows the same
evidence or ends unhealthy on its own.

Unmet obligations surface as :class:`~repro.verify.invariants.Violation`
rows (``resilience:detect`` / ``resilience:contain`` /
``resilience:recover``), which makes them first-class citizens of the
fuzzer's failure keys and the shrinker.
"""

from __future__ import annotations

import functools
import hashlib
import json
import statistics
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.faults.campaign import DETECTION_CATEGORIES
from repro.faults.injector import (CanBusErrorAdapter, CanNodeAdapter,
                                   ComDelayAdapter, ComSignalAdapter,
                                   FaultInjector, FlexRaySlotAdapter,
                                   GuardedCanNodeAdapter, TaskAdapter)
from repro.faults.model import (BABBLING, CORRUPTION, CRASH, DELAY, Fault,
                                OMISSION)
from repro.faults.monitor import containment_violations
from repro.network.guardian import SlotGuardian
from repro.units import ms
from repro.verify.generator import FaultScenario, GeneratedSystem
from repro.verify.invariants import Violation

#: DTCs stored by the resilience recovery stack.
DTC_CHAIN_E2E = 0x5B01
DTC_PRODUCER_ALIVE = 0x5B02

#: Scenario kinds whose injection point is the E2E-protected chain
#: (they require both a chain and a CAN bus).
CHAIN_KINDS = ("e2e-corruption", "e2e-loss", "e2e-delay",
               "can-error-burst", "can-bus-off", "ecu-reset")

#: Upper bound on any scenario window's end (keeps hostile corpus
#: files from demanding absurdly long simulations).
MAX_SCENARIO_END = 1_000_000_000  # 1 s


def _wdg_window(period: int) -> int:
    """Producer alive-supervision window: 2.5 chain periods."""
    return 2 * period + period // 2


def _hold(period: int) -> int:
    """Escalation/heal hysteresis hold: 2 chain periods."""
    return 2 * period


def _flood_period(system: GeneratedSystem) -> int:
    """Babbling-idiot transmission attempt period."""
    base = system.chain.period if system.chain is not None else ms(4)
    return max(1, base // 8)


def min_duration(system: GeneratedSystem, kind: str, target: str = "") -> int:
    """Smallest fault window for which detection is *guaranteed*.

    A loss window shorter than the E2E timeout is legitimately
    invisible; a crash shorter than the watchdog window never misses a
    deadline.  Scenario generators (and :func:`scenario_problems`) keep
    windows at or above this floor so an undetected fault is always a
    real defect, never an under-sized experiment.
    """
    chain = system.chain
    if kind == "e2e-corruption":
        return 2 * chain.period
    if kind in ("e2e-loss", "e2e-delay", "can-error-burst", "can-bus-off"):
        return chain.timeout + 2 * chain.period
    if kind == "ecu-reset":
        return 3 * _wdg_window(chain.period) + chain.period
    if kind == "flexray-slot-loss":
        writer = _static_writer(system, target)
        cycle = system.flexray.config.cycle_length
        return 2 * writer.period + 2 * cycle
    if kind == "tdma-babble":
        return 4 * _flood_period(system)
    raise ConfigurationError(f"unknown scenario kind {kind!r}")


def _static_writer(system: GeneratedSystem, frame_name: str):
    for writer in system.flexray.static_writers:
        if writer.assignment.frame_name == frame_name:
            return writer
    raise ConfigurationError(
        f"no static writer for frame {frame_name!r}")


def scenario_problems(system: GeneratedSystem,
                      scenario: FaultScenario) -> list[str]:
    """Validation problems of one scenario against its system.

    Used by :func:`repro.verify.mutate.validate_system`; an empty list
    means the scenario is well-formed *and* its window is large enough
    for detection to be guaranteed (see :func:`min_duration`).
    """
    problems: list[str] = []
    label = scenario.label()
    if scenario.kind not in _ALL_KINDS:
        return [f"fault {label}: unknown kind"]
    if scenario.start < 0:
        problems.append(f"fault {label}: start must be >= 0")
    if scenario.duration <= 0:
        problems.append(f"fault {label}: duration must be > 0")
        return problems
    if scenario.end > MAX_SCENARIO_END:
        problems.append(f"fault {label}: window ends after "
                        f"{MAX_SCENARIO_END} ns")
        return problems
    if scenario.kind in CHAIN_KINDS:
        if system.chain is None or system.can is None:
            problems.append(
                f"fault {label}: requires an E2E chain over CAN")
            return problems
    elif scenario.kind == "tdma-babble":
        if system.can is None:
            problems.append(f"fault {label}: requires a CAN bus")
            return problems
    elif scenario.kind == "flexray-slot-loss":
        if system.flexray is None:
            problems.append(f"fault {label}: requires a FlexRay cluster")
            return problems
        frames = {w.assignment.frame_name
                  for w in system.flexray.static_writers}
        if scenario.target not in frames:
            problems.append(
                f"fault {label}: target {scenario.target!r} is not a "
                f"static writer frame")
            return problems
    floor = min_duration(system, scenario.kind, scenario.target)
    if scenario.duration < floor:
        problems.append(
            f"fault {label}: duration {scenario.duration} below the "
            f"guaranteed-detection floor {floor}")
    return problems


_ALL_KINDS = CHAIN_KINDS + ("flexray-slot-loss", "tdma-babble")


# ----------------------------------------------------------------------
# The world: built system + recovery stack
# ----------------------------------------------------------------------
class ResilienceWorld:
    """One scenario's universe: the generated system on the simulation
    stack plus the full protection/recovery wiring on its E2E chain
    (mirroring :class:`repro.faults.campaign.ReferenceWorld`, scaled to
    the chain's period)."""

    def __init__(self, system: GeneratedSystem):
        from repro.bsw import (ErrorEvent, ErrorManager, ModeMachine,
                               RecoveryOrchestrator, RecoveryPolicy,
                               WatchdogManager)
        from repro.verify.oracle import build_system

        self.system = system
        self.built = build_system(system)
        self.sim = self.built.sim
        self.trace = self.built.trace
        self.injector = FaultInjector(self.sim, self.trace)
        self.errors = None
        self.modes = None
        self.watchdog = None
        self.recovery = None
        chain = system.chain
        if chain is None or system.can is None \
                or self.built.receiver is None:
            return

        period = chain.period
        self.wdg_window = _wdg_window(period)
        self.hold = _hold(period)
        kernel = self.built.kernels[chain.producer_ecu]
        self.watchdog = WatchdogManager(self.sim, trace=self.trace,
                                        name="WDG")
        self.watchdog.supervise_task(kernel, chain.producer,
                                     window=self.wdg_window)
        self.errors = ErrorManager("SYS", trace=self.trace,
                                   now=lambda: self.sim.now)
        self.errors.register(ErrorEvent("chain_e2e", DTC_CHAIN_E2E,
                                        threshold=2))
        self.errors.register(ErrorEvent("producer_alive",
                                        DTC_PRODUCER_ALIVE,
                                        threshold=2, fail_step=2))
        self.modes = ModeMachine("vehicle", ["nominal", "limp", "safe"],
                                 "nominal", trace=self.trace)
        self.modes.bind_clock(lambda: self.sim.now)
        self.modes.allow_chain("nominal", "limp", "safe")
        self.modes.allow_chain("safe", "limp", "nominal")
        self.recovery = RecoveryOrchestrator(
            self.sim, self.errors, modes=self.modes,
            watchdog=self.watchdog, com=self.built.rx_stack,
            trace=self.trace)
        self.recovery.add_policy(RecoveryPolicy(
            "chain_e2e", signal=chain.signal_name, degraded_mode="limp",
            escalate_hold=self.hold, heal_hold=self.hold))
        self.recovery.add_policy(RecoveryPolicy(
            "producer_alive", degraded_mode="limp",
            restart_entity=chain.producer,
            escalate_hold=self.hold, heal_hold=self.hold))
        self.recovery.bind_e2e(self.built.receiver, "chain_e2e",
                               signal=chain.signal_name)
        self.recovery.bind_watchdog({chain.producer: "producer_alive"},
                                    poll=self.wdg_window)


# ----------------------------------------------------------------------
# Per-kind scenario plans
# ----------------------------------------------------------------------
@dataclass
class _ScenarioPlan:
    """Static facts about one scenario: what detects it, how fast it
    must be detected, where damage is allowed, how long to simulate,
    and how to wire the fault into a live world."""

    categories: tuple
    bound: int
    region: set
    horizon: int
    wire: Callable[[ResilienceWorld], tuple]


def _plan_scenario(system: GeneratedSystem, scenario: FaultScenario
                   ) -> Optional[_ScenarioPlan]:
    """Build the plan, or None when the system lacks the subsystems the
    scenario needs (a shrunk counterexample) — the scenario is then
    *declined*, never a failure."""
    kind = scenario.kind
    chain = system.chain
    if kind in CHAIN_KINDS:
        if chain is None or system.can is None:
            return None
        period = chain.period
        wdg = _wdg_window(period)
        hold = _hold(period)
        region = {chain.producer, chain.consumer, chain.pdu_name,
                  chain.signal_name, chain.producer_ecu, "RX"}
        tail = 2 * chain.timeout + 12 * period + 4 * hold
        categories = DETECTION_CATEGORIES
        bound = chain.timeout + period
        if kind == "ecu-reset":
            # The COM stack keeps transmitting freshly-stamped (stale)
            # values after the producer dies, so E2E never notices —
            # only the alive supervision does.
            categories = ("wdg.violation",)
            bound = 3 * wdg + period
            tail = chain.timeout + 16 * period + 6 * hold + 3 * wdg

        def wire(world, kind=kind, scenario=scenario):
            c = world.system.chain
            if kind in ("e2e-corruption", "e2e-loss"):
                adapter = ComSignalAdapter(world.built.rx_stack,
                                           c.signal_name)
                fault_kind = (CORRUPTION if kind == "e2e-corruption"
                              else OMISSION)
                fault = Fault(fault_kind, adapter.target_name,
                              scenario.start, scenario.duration)
            elif kind == "e2e-delay":
                adapter = ComDelayAdapter(world.sim, world.built.rx_stack,
                                          c.signal_name)
                fault = Fault(DELAY, adapter.target_name, scenario.start,
                              scenario.duration,
                              params={"delay": c.timeout + c.period})
            elif kind == "can-error-burst":
                adapter = CanBusErrorAdapter(world.built.can_bus,
                                             c.pdu_name)
                fault = Fault(CORRUPTION, adapter.target_name,
                              scenario.start, scenario.duration)
            elif kind == "can-bus-off":
                controller = world.built.can_bus.controllers[
                    c.producer_ecu]
                adapter = CanNodeAdapter(world.sim, controller,
                                         flood_period=ms(1))
                fault = Fault(CRASH, adapter.target_name, scenario.start,
                              scenario.duration)
            else:  # ecu-reset
                kernel = world.built.kernels[c.producer_ecu]
                adapter = TaskAdapter(kernel, kernel.tasks[c.producer])
                fault = Fault(CRASH, adapter.target_name, scenario.start,
                              scenario.duration)
            return adapter, fault

        return _ScenarioPlan(categories, bound, region,
                             scenario.end + tail, wire)

    if kind == "flexray-slot-loss":
        if system.flexray is None:
            return None
        try:
            writer = _static_writer(system, scenario.target)
        except ConfigurationError:
            return None
        cycle = system.flexray.config.cycle_length
        region = {scenario.target, writer.assignment.node}
        bound = writer.period + 2 * cycle
        tail = 4 * writer.period + 4 * cycle

        def wire(world, scenario=scenario):
            adapter = FlexRaySlotAdapter(world.built.flexray_bus,
                                         scenario.target)
            return adapter, Fault(OMISSION, adapter.target_name,
                                  scenario.start, scenario.duration)

        return _ScenarioPlan(("flexray.slot_lost",), bound, region,
                             scenario.end + tail, wire)

    if kind == "tdma-babble":
        if system.can is None:
            return None
        flood = _flood_period(system)

        def wire(world, flood=flood, scenario=scenario):
            controller = world.built.can_bus.attach("BABBLER")
            # Independent schedule copy with *no* window for the
            # babbler: the guardian physically gates every attempt.
            guardian = SlotGuardian("BABBLER", [], period=ms(10))
            adapter = GuardedCanNodeAdapter(world.sim, controller,
                                            guardian, flood, world.trace)
            return adapter, Fault(BABBLING, adapter.target_name,
                                  scenario.start, scenario.duration)

        return _ScenarioPlan(("guardian.blocked",), 2 * flood,
                             {"BABBLER"}, scenario.end + 8 * flood + ms(1),
                             wire)

    return None


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
@dataclass
class ScenarioVerdict:
    """Detect / contain / recover result for one injected scenario."""

    scenario: FaultScenario
    supported: bool = True
    horizon: int = 0
    detected: bool = False
    detection_time: Optional[int] = None
    detection_latency: Optional[int] = None
    detection_bound: int = 0
    detection_source: Optional[str] = None
    detection_waived: bool = False
    contained: bool = True
    escaped: int = 0
    escape_subjects: list[str] = field(default_factory=list)
    recovered: bool = True
    recovery_time: Optional[int] = None
    recovery_latency: Optional[int] = None
    recovery_waived: bool = False

    @property
    def ok(self) -> bool:
        """All three obligations met (or waived)."""
        return not self.violations()

    def violations(self) -> list[Violation]:
        """Unmet obligations as oracle invariant violations."""
        if not self.supported:
            return []
        out: list[Violation] = []
        label = self.scenario.label()
        if not self.detection_waived:
            if not self.detected:
                out.append(Violation(
                    self.scenario.start, "resilience:detect", label,
                    f"injected fault produced no "
                    f"{'/'.join(self.scenario_categories)} evidence "
                    f"within horizon {self.horizon}"))
            elif self.detection_latency > self.detection_bound:
                out.append(Violation(
                    self.detection_time, "resilience:detect", label,
                    f"detection latency {self.detection_latency} "
                    f"exceeds bound {self.detection_bound}"))
        if not self.contained:
            out.append(Violation(
                self.scenario.start, "resilience:contain", label,
                f"{self.escaped} damage record(s) outside the "
                f"containment region: "
                f"{sorted(set(self.escape_subjects))}"))
        if not self.recovery_waived and not self.recovered:
            out.append(Violation(
                self.scenario.end, "resilience:recover", label,
                "confirmed errors or degraded mode persist after the "
                "fault window closed"))
        return out

    #: set by the evaluator so violation messages can name the evidence.
    scenario_categories: tuple = ()

    def to_dict(self) -> dict:
        return {
            "scenario": {"kind": self.scenario.kind,
                         "start": self.scenario.start,
                         "duration": self.scenario.duration,
                         "target": self.scenario.target},
            "supported": self.supported, "horizon": self.horizon,
            "detected": self.detected,
            "detection_time": self.detection_time,
            "detection_latency": self.detection_latency,
            "detection_bound": self.detection_bound,
            "detection_source": self.detection_source,
            "detection_waived": self.detection_waived,
            "contained": self.contained, "escaped": self.escaped,
            "escape_subjects": sorted(set(self.escape_subjects)),
            "recovered": self.recovered,
            "recovery_time": self.recovery_time,
            "recovery_latency": self.recovery_latency,
            "recovery_waived": self.recovery_waived,
            "ok": self.ok,
        }


def _evaluate(world: ResilienceWorld, baseline: ResilienceWorld,
              scenario: FaultScenario,
              plan: _ScenarioPlan) -> ScenarioVerdict:
    verdict = ScenarioVerdict(scenario, horizon=plan.horizon,
                              detection_bound=plan.bound)
    verdict.scenario_categories = plan.categories
    onset = scenario.start

    # --- detected within bound ---------------------------------------
    detection_time = None
    source = None
    for category in plan.categories:
        for record in world.trace.records(category):
            if record.time < onset:
                continue
            if detection_time is None or record.time < detection_time:
                detection_time = record.time
                source = category
            break  # records are time-ordered per category
    verdict.detected = detection_time is not None
    verdict.detection_time = detection_time
    verdict.detection_source = source
    if verdict.detected:
        verdict.detection_latency = detection_time - onset
    # If the fault-free baseline already shows the same evidence the
    # system is overloaded on its own; detection can't be attributed.
    verdict.detection_waived = any(
        record.time >= onset
        for category in plan.categories
        for record in baseline.trace.records(category))

    # --- contained ----------------------------------------------------
    baseline_subjects = {
        r.subject for r in containment_violations(baseline.trace,
                                                  plan.region,
                                                  since=onset)}
    escapes = [r for r in containment_violations(world.trace, plan.region,
                                                 since=onset)
               if r.subject not in baseline_subjects]
    verdict.contained = not escapes
    verdict.escaped = len(escapes)
    verdict.escape_subjects = [r.subject for r in escapes]

    # --- recovered per the hysteresis policy --------------------------
    if baseline.errors is not None and (
            list(baseline.errors.confirmed_events())
            or baseline.modes.current != "nominal"):
        verdict.recovery_waived = True
    elif world.errors is not None:
        healed = not list(world.errors.confirmed_events())
        nominal = world.modes.current == "nominal"
        verdict.recovered = healed and nominal
        if verdict.recovered:
            candidates = [r.time for r in world.trace.records("dem.healed")
                          if r.time >= scenario.end]
            candidates += [r.time for r in
                           world.trace.records("recovery.deescalate")
                           if r.time >= scenario.end]
            candidates += [t for t, mode in world.modes.history
                           if t >= scenario.end and mode == "nominal"]
            if candidates:
                verdict.recovery_time = max(candidates)
                verdict.recovery_latency = (verdict.recovery_time
                                            - scenario.end)
    # No recovery stack (no chain): nothing can confirm, vacuously ok.
    return verdict


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def verify_resilience(system: GeneratedSystem) -> list[ScenarioVerdict]:
    """Run every attached fault scenario in its own simulation.

    One fault-free baseline world is run (and cached) per distinct
    scenario horizon for the differential waivers; the nominal
    differential-oracle simulation is never touched.
    """
    verdicts: list[ScenarioVerdict] = []
    baselines: dict[int, ResilienceWorld] = {}
    for scenario in system.faults:
        plan = _plan_scenario(system, scenario)
        if plan is None:
            verdicts.append(ScenarioVerdict(scenario, supported=False))
            if obs.enabled():
                obs.count("resilience.scenarios")
                obs.count("resilience.unsupported")
            continue
        baseline = baselines.get(plan.horizon)
        if baseline is None:
            baseline = ResilienceWorld(system)
            baseline.sim.run_until(plan.horizon)
            baselines[plan.horizon] = baseline
        world = ResilienceWorld(system)
        adapter, fault = plan.wire(world)
        world.injector.inject(adapter, fault)
        world.sim.run_until(plan.horizon)
        verdict = _evaluate(world, baseline, scenario, plan)
        verdicts.append(verdict)
        if obs.enabled():
            obs.count("resilience.scenarios")
            if verdict.detection_waived:
                obs.count("resilience.detection_waived")
            elif verdict.detected:
                obs.count(f"resilience.detected_by."
                          f"{verdict.detection_source}")
                if verdict.detection_latency > verdict.detection_bound:
                    obs.count("resilience.late_detection")
                obs.observe("resilience.detection_latency_ns",
                            verdict.detection_latency)
            else:
                obs.count("resilience.undetected")
            if not verdict.contained:
                obs.count("resilience.escapes", verdict.escaped)
            if verdict.recovery_waived:
                obs.count("resilience.recovery_waived")
            elif verdict.recovered:
                obs.count("resilience.recovered")
                if verdict.recovery_latency is not None:
                    obs.observe("resilience.recovery_latency_ns",
                                verdict.recovery_latency)
            else:
                obs.count("resilience.unrecovered")
    return verdicts


# ----------------------------------------------------------------------
# Standard matrix + batch runner (CLI / CI face)
# ----------------------------------------------------------------------
def standard_scenarios(system: GeneratedSystem) -> list[FaultScenario]:
    """The full supported fault matrix with deterministic windows."""
    scenarios: list[FaultScenario] = []
    chain = system.chain
    if chain is not None and system.can is not None:
        for kind in CHAIN_KINDS:
            floor = min_duration(system, kind)
            scenarios.append(FaultScenario(
                kind, 3 * chain.period, floor + chain.period))
    if system.can is not None:
        flood = _flood_period(system)
        scenarios.append(FaultScenario(
            "tdma-babble", 4 * flood,
            min_duration(system, "tdma-babble") + 4 * flood))
    if system.flexray is not None and system.flexray.static_writers:
        writer = min(system.flexray.static_writers,
                     key=lambda w: w.assignment.slot)
        target = writer.assignment.frame_name
        scenarios.append(FaultScenario(
            "flexray-slot-loss", 2 * writer.period,
            min_duration(system, "flexray-slot-loss", target), target))
    return scenarios


def _resilience_worker(system: GeneratedSystem, seed: int) -> dict:
    """Plan worker (module-level, hence picklable): one system per call."""
    return {"system": system.name, "seed": system.seed,
            "verdicts": [v.to_dict()
                         for v in verify_resilience(system)]}


@dataclass
class ResilienceReport:
    """Aggregate over a batch of resilience-verified systems."""

    seed: int
    count: int
    size: str
    rows: list[dict] = field(default_factory=list)

    def _verdicts(self):
        return [v for row in self.rows for v in row["verdicts"]]

    @property
    def unmet(self) -> int:
        """Scenarios with any unmet (non-waived) obligation."""
        return sum(1 for v in self._verdicts()
                   if v["supported"] and not v["ok"])

    @property
    def passed(self) -> bool:
        return self.unmet == 0

    def to_dict(self) -> dict:
        ordered = sorted(self.rows,
                         key=lambda r: (r["seed"], r["system"]))
        return {"seed": self.seed, "systems": self.count,
                "size": self.size, "rows": ordered}

    def digest(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def kind_summary(self) -> dict[str, dict]:
        """Per-kind aggregate: counts and latency spread (the E16
        fault-detection/recovery latency table)."""
        summary: dict[str, dict] = {}
        for kind in _ALL_KINDS:
            verdicts = [v for v in self._verdicts()
                        if v["scenario"]["kind"] == kind
                        and v["supported"]]
            if not verdicts:
                continue
            det = sorted(v["detection_latency"] for v in verdicts
                         if v["detection_latency"] is not None)
            rec = sorted(v["recovery_latency"] for v in verdicts
                         if v["recovery_latency"] is not None)
            summary[kind] = {
                "scenarios": len(verdicts),
                "detected": sum(1 for v in verdicts if v["detected"]),
                "bound": max(v["detection_bound"] for v in verdicts),
                "det_min": det[0] if det else None,
                "det_median": statistics.median(det) if det else None,
                "det_max": det[-1] if det else None,
                "escaped": sum(v["escaped"] for v in verdicts),
                "recovered": sum(1 for v in verdicts if v["recovered"]),
                "rec_max": rec[-1] if rec else None,
                "unmet": sum(1 for v in verdicts if not v["ok"]),
            }
        return summary


def run_resilience(seed: int, count: int, size: str = "small",
                   jobs: int = 1, checkpoint=None, resume: bool = False,
                   retries: int = 1, progress=None,
                   interrupt_after: Optional[int] = None
                   ) -> ResilienceReport:
    """Generate ``count`` systems, attach the standard fault matrix to
    each, and verify resilience — fanned out over :mod:`repro.exec`
    (jobs=1 and jobs=N produce identical digests)."""
    from repro.exec import Plan, execute
    from repro.verify.generator import generate_many

    systems = []
    for system in generate_many(seed, count, size):
        system.faults = standard_scenarios(system)
        systems.append(system)
    plan = Plan(f"resilience:size={size}", _resilience_worker,
                tuple(systems), base_seed=seed)
    outcome = execute(plan, jobs=jobs, retries=retries,
                      checkpoint=checkpoint, resume=resume,
                      progress=progress, interrupt_after=interrupt_after)
    outcome.raise_on_failure()
    return ResilienceReport(seed, count, size, list(outcome.results))


def _fmt_ms(value) -> str:
    if value is None:
        return "-"
    return f"{value / 1e6:.2f}"


def format_resilience_report(report: ResilienceReport) -> str:
    """Deterministic human-readable summary (the E16 table)."""
    lines = [f"resilience verification: seed={report.seed} "
             f"systems={report.count} size={report.size}"]
    lines.append(
        f"  {'fault kind':<18} {'cells':>5} {'det':>4} {'bound(ms)':>10} "
        f"{'latency ms (min/med/max)':>25} {'escaped':>8} {'rec':>4} "
        f"{'rec-lat(ms)':>12}")
    for kind, row in report.kind_summary().items():
        if row["det_min"] is None:
            spread = "-"
        else:
            spread = (f"{_fmt_ms(row['det_min'])}/"
                      f"{_fmt_ms(row['det_median'])}/"
                      f"{_fmt_ms(row['det_max'])}")
        lines.append(
            f"  {kind:<18} {row['scenarios']:>5} {row['detected']:>4} "
            f"{_fmt_ms(row['bound']):>10} {spread:>25} "
            f"{row['escaped']:>8} {row['recovered']:>4} "
            f"{_fmt_ms(row['rec_max']):>12}")
    total = sum(1 for v in report._verdicts() if v["supported"])
    waived = sum(1 for v in report._verdicts()
                 if v.get("detection_waived") or v.get("recovery_waived"))
    lines.append(f"scenarios: {total} supported, {waived} waived, "
                 f"{report.unmet} unmet obligation(s)")
    lines.append(f"report digest: sha256:{report.digest()}")
    lines.append(f"verdict: {'PASS' if report.passed else 'FAIL'}")
    return "\n".join(lines)
