"""Pluggable invariants over simulation trace records.

An :class:`Invariant` consumes a stream of :class:`~repro.sim.trace.Record`
objects and reports :class:`Violation` instances whenever the trace shows
behaviour the platform promises can never happen — one CPU running two
jobs at once, a TDMA partition executing outside its windows, an ICPP
ceiling being ignored, an E2E-rejected reception still reaching the
application.  The checkers are pure trace consumers: they can be wired
into *any* simulation (the differential oracle, the fault campaigns, a
hand-built scenario) after the fact, with no coupling to the subsystems
that produced the records.

All record data access is tolerant of missing optional keys — a
partially-instrumented subsystem degrades to "not checked", never to a
crash (see also :meth:`repro.sim.trace.Record.get`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sim.trace import Record, Trace

#: Trace categories that begin a CPU occupancy interval for a task.
_RUN_BEGIN = ("task.start", "task.resume")
#: Trace categories that end a CPU occupancy interval for a task.
_RUN_END = ("task.preempt", "task.complete", "task.wait",
            "task.budget_overrun")
#: E2E verdicts that must suppress the application-visible reception.
_E2E_BAD = ("e2e.crc_error", "e2e.wrong_sequence", "e2e.repeated")


@dataclass(frozen=True)
class Violation:
    """One observed breach of an invariant."""

    time: int
    invariant: str
    subject: str
    message: str

    def to_dict(self) -> dict:
        """Plain-dict form for deterministic reports."""
        return {"time": self.time, "invariant": self.invariant,
                "subject": self.subject, "message": self.message}


class Invariant:
    """Base class: feed records via :meth:`observe`, then :meth:`finish`.

    Subclasses append to ``self.violations`` as breaches are detected;
    :meth:`finish` may add violations that only become decidable at the
    end of the stream (cross-record joins).
    """

    name = "invariant"

    def __init__(self):
        self.violations: list[Violation] = []

    def observe(self, record: Record) -> None:
        """Consume one trace record (override)."""

    def finish(self) -> None:
        """Called after the last record (override when needed)."""

    def _flag(self, time: int, subject: str, message: str) -> None:
        self.violations.append(Violation(time, self.name, subject, message))


class NoOverlappingExecution(Invariant):
    """At most one job occupies each ECU's CPU at any time.

    ``task_ecu`` maps task name -> ECU name; tasks not in the map are
    ignored (foreign subsystems sharing the trace).
    """

    name = "no-overlap"

    def __init__(self, task_ecu: dict[str, str]):
        super().__init__()
        self.task_ecu = dict(task_ecu)
        self._running: dict[str, str] = {}

    def observe(self, record: Record) -> None:
        ecu = self.task_ecu.get(record.subject)
        if ecu is None:
            return
        if record.category in _RUN_BEGIN:
            current = self._running.get(ecu)
            if current is not None:
                self._flag(record.time, record.subject,
                           f"starts on {ecu} while {current} is running")
            self._running[ecu] = record.subject
        elif record.category in _RUN_END:
            if self._running.get(ecu) == record.subject:
                del self._running[ecu]


class TdmaWindowInvariant(Invariant):
    """TDMA slot exclusivity: a partitioned task only executes inside a
    window owned by its partition.

    ``windows`` is a list of ``(start, length, partition)`` tuples within
    ``major_frame``; ``task_partition`` maps task name -> partition.
    Execution intervals are reconstructed from start/resume .. end
    record pairs; each interval must lie inside one window occurrence.
    """

    name = "tdma-window"

    def __init__(self, windows: Iterable[tuple[int, int, str]],
                 major_frame: int, task_partition: dict[str, str]):
        super().__init__()
        self.windows = [tuple(w) for w in windows]
        self.major_frame = major_frame
        self.task_partition = dict(task_partition)
        self._since: dict[str, int] = {}

    def _window_end(self, begin: int, partition: str) -> Optional[int]:
        """Absolute end of the partition window containing ``begin``."""
        phase = begin % self.major_frame
        base = begin - phase
        for start, length, owner in self.windows:
            if owner == partition and start <= phase < start + length:
                return base + start + length
        return None

    def observe(self, record: Record) -> None:
        partition = self.task_partition.get(record.subject)
        if partition is None:
            return
        if record.category in _RUN_BEGIN:
            self._since[record.subject] = record.time
        elif record.category in _RUN_END:
            begin = self._since.pop(record.subject, None)
            if begin is None:
                return
            end = self._window_end(begin, partition)
            if end is None:
                self._flag(begin, record.subject,
                           f"runs at t={begin} outside every window of "
                           f"partition {partition}")
            elif record.time > end:
                self._flag(record.time, record.subject,
                           f"runs past its {partition} window end "
                           f"({record.time} > {end})")


class PriorityCeilingInvariant(Invariant):
    """ICPP honored: while a resource with ceiling ``c`` is held, no
    other task with base priority <= ``c`` starts on the same ECU.

    ``priorities`` maps task -> base priority; ``ceilings`` maps
    resource name -> ceiling; ``task_ecu`` maps task -> ECU.
    """

    name = "priority-ceiling"

    def __init__(self, priorities: dict[str, int], ceilings: dict[str, int],
                 task_ecu: dict[str, str]):
        super().__init__()
        self.priorities = dict(priorities)
        self.ceilings = dict(ceilings)
        self.task_ecu = dict(task_ecu)
        #: ECU -> {resource: holder task}
        self._held: dict[str, dict[str, str]] = {}

    def observe(self, record: Record) -> None:
        ecu = self.task_ecu.get(record.subject)
        if ecu is None:
            return
        if record.category == "task.acquire":
            resource = record.data.get("resource")
            if resource is not None:
                self._held.setdefault(ecu, {})[resource] = record.subject
        elif record.category == "task.release":
            resource = record.data.get("resource")
            self._held.get(ecu, {}).pop(resource, None)
        elif record.category in _RUN_BEGIN:
            priority = self.priorities.get(record.subject)
            if priority is None:
                return
            for resource, holder in self._held.get(ecu, {}).items():
                if holder == record.subject:
                    continue
                ceiling = self.ceilings.get(resource, 0)
                if priority <= ceiling:
                    self._flag(
                        record.time, record.subject,
                        f"priority {priority} runs while {holder} holds "
                        f"{resource} (ceiling {ceiling})")


class AliveCounterInvariant(Invariant):
    """The accepted (OK-classified) E2E stream has a monotonically
    advancing alive counter: every consecutive pair of accepted
    receptions differs by ``1..max_delta`` modulo ``modulo``.

    Requires ``e2e.ok`` records to carry a ``counter`` data key; records
    without one are skipped (partially-instrumented receiver).
    """

    name = "alive-counter"

    def __init__(self, pdu_name: str, modulo: int, max_delta: int = 1):
        super().__init__()
        self.pdu_name = pdu_name
        self.modulo = modulo
        self.max_delta = max_delta
        self._last: Optional[int] = None

    def observe(self, record: Record) -> None:
        if record.category != "e2e.ok" or record.subject != self.pdu_name:
            return
        counter = record.data.get("counter")
        if counter is None:
            return
        if self._last is not None:
            delta = (counter - self._last) % self.modulo
            if not 1 <= delta <= self.max_delta:
                self._flag(record.time, record.subject,
                           f"accepted counter jumped {self._last} -> "
                           f"{counter} (delta {delta} mod {self.modulo})")
        self._last = counter


class E2eContainmentInvariant(Invariant):
    """An E2E verdict other than OK implies no signal update: a bad
    check on a PDU must not co-occur with a ``com.rx`` (application
    delivery) of the same PDU at the same instant."""

    name = "e2e-containment"

    def __init__(self):
        super().__init__()
        self._bad: list[tuple[int, str]] = []
        self._delivered: set[tuple[int, str]] = set()

    def observe(self, record: Record) -> None:
        if record.category in _E2E_BAD:
            self._bad.append((record.time, record.subject))
        elif record.category == "com.rx":
            self._delivered.add((record.time, record.subject))

    def finish(self) -> None:
        for time, subject in self._bad:
            if (time, subject) in self._delivered:
                self._flag(time, subject,
                           "rejected reception still reached the "
                           "application (com.rx at the same instant)")


class InvariantChecker:
    """Runs a set of invariants over a trace and collects violations."""

    def __init__(self, invariants: list[Invariant]):
        self.invariants = list(invariants)

    def run(self, trace: Trace) -> list[Violation]:
        """Feed every record to every invariant; returns all violations
        sorted by (time, invariant, subject)."""
        for record in trace:
            for invariant in self.invariants:
                invariant.observe(record)
        violations: list[Violation] = []
        for invariant in self.invariants:
            invariant.finish()
            violations.extend(invariant.violations)
        return sorted(violations,
                      key=lambda v: (v.time, v.invariant, v.subject))
