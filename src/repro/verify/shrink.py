"""Delta-debugging of failing systems to minimal counterexamples.

A fuzzer-found failure usually arrives wrapped in a hundred components
that have nothing to do with it — background tasks, unrelated bus
frames, a whole FlexRay cluster.  :func:`shrink` strips everything the
failure does not need, ddmin-style: propose a structurally *smaller*
candidate (one component dropped), keep it iff the **same** failure
(identified by :func:`failure_keys`) still reproduces, repeat until no
drop survives.

Guarantees, each covered by tests:

* the result fails the same :data:`FailureKey` as the input;
* the result is never larger than the input (:func:`system_size` is
  strictly decreased by every accepted step — reductions only ever
  drop components);
* shrinking is idempotent — re-shrinking a minimal system returns it
  unchanged, which is what lets the regression corpus assert that
  every persisted counterexample is already minimal.

The simulation horizon is **frozen** to the original system's
:func:`~repro.verify.oracle.default_horizon` for every candidate
probe.  Re-deriving it per candidate would let a drop silently shorten
the horizon below the failure's first occurrence, making the candidate
"pass" for reasons that have nothing to do with the defect.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.errors import AnalysisError
from repro.verify.generator import GeneratedSystem
from repro.verify.mutate import validate_system
from repro.verify.oracle import SystemVerdict, default_horizon, verify_system

#: ``(kind, detail, subject)`` — ``("soundness", layer, subject)`` for a
#: beaten analytic bound, ``("invariant", name, subject)`` for a runtime
#: invariant breach.
FailureKey = tuple[str, str, str]


def failure_keys(verdict: SystemVerdict) -> frozenset[FailureKey]:
    """Every distinct failure a verdict exhibits."""
    keys: set[FailureKey] = set()
    for check in verdict.soundness_violations:
        keys.add(("soundness", check.layer, check.subject))
    for violation in verdict.invariant_violations:
        keys.add(("invariant", violation.invariant, violation.subject))
    return frozenset(keys)


def system_size(system: GeneratedSystem) -> int:
    """Component count — the measure shrinking strictly decreases."""
    size = sum(len(tasks) for tasks in system.tasksets.values())
    size += len(system.tasksets)
    size += len(system.critical_sections) + len(system.resources)
    if system.chain is not None:
        size += 1
    if system.can is not None:
        size += 1 + len(system.can.frames) + len(system.can.frame_specs)
    if system.flexray is not None:
        size += (1 + len(system.flexray.nodes)
                 + len(system.flexray.static_writers)
                 + len(system.flexray.dynamic_writers))
    if system.tdma is not None:
        size += 1 + len(system.tdma.partitions) + len(system.tdma.tasks)
    size += len(system.faults)
    return size


@dataclass
class ShrinkResult:
    """Outcome of one :func:`shrink` run."""

    system: GeneratedSystem     #: the minimized counterexample
    key: FailureKey             #: the failure it still exhibits
    horizon: int                #: frozen probe horizon (persist with it)
    probes: int                 #: candidate verifications attempted
    accepted: int               #: reductions that kept the failure
    complete: bool = True       #: False iff the probe budget ran out

    @property
    def minimal(self) -> bool:
        """Shrink-minimal: no single-component drop reproduces the
        failure.  Only guaranteed when the run was :attr:`complete`."""
        return self.complete


# ----------------------------------------------------------------------
# Reduction candidates, largest components first.  Every candidate is a
# NEW system with exactly one thing removed; the input is untouched.
# ----------------------------------------------------------------------
def _without_chain(system: GeneratedSystem) -> GeneratedSystem:
    reduced = copy.deepcopy(system)
    pdu = reduced.chain.pdu_name
    reduced.chain = None
    if reduced.can is not None:
        reduced.can = replace(
            reduced.can,
            frames=tuple(f for f in reduced.can.frames
                         if f.ipdu.name != pdu),
            frame_specs=tuple(s for s in reduced.can.frame_specs
                              if s.name != pdu))
    return reduced


def _frame_senders(system: GeneratedSystem) -> set[str]:
    if system.can is None:
        return set()
    return {f.sender for f in system.can.frames}


def _candidates(system: GeneratedSystem) -> Iterator[GeneratedSystem]:
    """Structurally smaller variants, most-aggressive drops first."""
    # Whole subsystems.
    if system.chain is not None:
        yield _without_chain(system)
    if system.can is not None and system.chain is None:
        reduced = copy.deepcopy(system)
        reduced.can = None
        yield reduced
    if system.flexray is not None:
        reduced = copy.deepcopy(system)
        reduced.flexray = None
        yield reduced
    if system.tdma is not None:
        reduced = copy.deepcopy(system)
        reduced.tdma = None
        yield reduced

    # Single fault scenarios.  These come right after whole subsystems:
    # a failure unrelated to injection sheds its scenarios early, and a
    # subsystem a scenario depends on can only be dropped after the
    # scenario itself goes (validate_system rejects the orphan).
    for index in range(len(system.faults)):
        reduced = copy.deepcopy(system)
        del reduced.faults[index]
        yield reduced

    # Whole fixed-priority ECUs (chain endpoints and frame senders stay
    # until the chain / the frames go first).
    chain_ecus = set()
    if system.chain is not None:
        chain_ecus = {system.chain.producer_ecu, system.chain.consumer_ecu}
    senders = _frame_senders(system)
    for ecu in system.fp_ecus:
        if ecu in chain_ecus or ecu in senders:
            continue
        reduced = copy.deepcopy(system)
        dead = {t.name for t in reduced.tasksets.pop(ecu)}
        reduced.critical_sections = [s for s in reduced.critical_sections
                                     if s.task not in dead]
        yield reduced

    # Single fixed-priority tasks.
    protected = set()
    if system.chain is not None:
        protected = {system.chain.producer, system.chain.consumer}
    for ecu in system.fp_ecus:
        for task in system.tasksets[ecu]:
            if task.name in protected:
                continue
            reduced = copy.deepcopy(system)
            reduced.tasksets[ecu] = [t for t in reduced.tasksets[ecu]
                                     if t.name != task.name]
            reduced.critical_sections = [
                s for s in reduced.critical_sections
                if s.task != task.name]
            yield reduced

    # Single CAN frames (the chain PDU spec stays with the chain).
    if system.can is not None:
        chain_pdu = system.chain.pdu_name if system.chain else None
        for spec in system.can.frame_specs:
            if spec.name == chain_pdu:
                continue
            reduced = copy.deepcopy(system)
            reduced.can = replace(
                reduced.can,
                frames=tuple(f for f in reduced.can.frames
                             if f.ipdu.name != spec.name),
                frame_specs=tuple(s for s in reduced.can.frame_specs
                                  if s.name != spec.name))
            yield reduced

    # Single FlexRay writers, then nodes nobody writes from.
    if system.flexray is not None:
        for index in range(len(system.flexray.static_writers)):
            reduced = copy.deepcopy(system)
            writers = list(reduced.flexray.static_writers)
            del writers[index]
            reduced.flexray = replace(reduced.flexray,
                                      static_writers=tuple(writers))
            yield reduced
        for index in range(len(system.flexray.dynamic_writers)):
            reduced = copy.deepcopy(system)
            writers = list(reduced.flexray.dynamic_writers)
            del writers[index]
            reduced.flexray = replace(reduced.flexray,
                                      dynamic_writers=tuple(writers))
            yield reduced
        used = ({w.assignment.node for w in system.flexray.static_writers}
                | {w.node for w in system.flexray.dynamic_writers})
        for node in system.flexray.nodes:
            if node in used:
                continue
            reduced = copy.deepcopy(system)
            reduced.flexray = replace(
                reduced.flexray,
                nodes=tuple(n for n in reduced.flexray.nodes
                            if n != node))
            yield reduced

    # TDMA partitions (with their tasks), then single TDMA tasks.
    if system.tdma is not None:
        if len(system.tdma.partitions) > 1:
            for partition in system.tdma.partitions:
                reduced = copy.deepcopy(system)
                reduced.tdma = replace(
                    reduced.tdma,
                    partitions=tuple(p for p in reduced.tdma.partitions
                                     if p != partition),
                    tasks=tuple(t for t in reduced.tdma.tasks
                                if t.partition != partition))
                yield reduced
        populated: dict[str, int] = {}
        for task in system.tdma.tasks:
            populated[task.partition] = populated.get(task.partition, 0) + 1
        for task in system.tdma.tasks:
            if populated[task.partition] <= 1:
                continue
            reduced = copy.deepcopy(system)
            reduced.tdma = replace(
                reduced.tdma,
                tasks=tuple(t for t in reduced.tdma.tasks
                            if t.name != task.name))
            yield reduced

    # Critical sections, then orphaned resources.
    for section in system.critical_sections:
        reduced = copy.deepcopy(system)
        reduced.critical_sections = [
            s for s in reduced.critical_sections
            if (s.task, s.resource) != (section.task, section.resource)]
        yield reduced
    used_resources = {s.resource for s in system.critical_sections}
    for resource in system.resources:
        if resource in used_resources:
            continue
        reduced = copy.deepcopy(system)
        del reduced.resources[resource]
        yield reduced


# ----------------------------------------------------------------------
# The shrink loop
# ----------------------------------------------------------------------
def shrink(system: GeneratedSystem, key: FailureKey,
           horizon: Optional[int] = None,
           max_probes: int = 2000) -> ShrinkResult:
    """Minimize ``system`` while failure ``key`` keeps reproducing.

    ``horizon`` defaults to the *input* system's horizon and stays
    fixed for every probe (see module docstring).  Raises
    :class:`~repro.errors.AnalysisError` if the input does not exhibit
    ``key`` under that horizon in the first place.
    """
    if horizon is None:
        horizon = default_horizon(system)

    probes = 0
    accepted = 0

    def fails(candidate: GeneratedSystem) -> bool:
        nonlocal probes
        if validate_system(candidate):
            return False
        probes += 1
        return key in failure_keys(verify_system(candidate, horizon))

    if not fails(system):
        raise AnalysisError(
            f"shrink input does not reproduce {key} at horizon {horizon}")

    current = system
    progress = True
    exhausted = False
    while progress and not exhausted:
        progress = False
        for candidate in _candidates(current):
            if probes >= max_probes:
                exhausted = True
                break
            if fails(candidate):
                current = candidate
                accepted += 1
                progress = True
                break   # restart candidate enumeration on the smaller system
    return ShrinkResult(current, key, horizon, probes, accepted,
                        complete=not exhausted)
