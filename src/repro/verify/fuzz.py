"""Coverage-guided differential fuzzing of generated systems.

:func:`repro.verify.oracle.verify_many` samples the configuration
space uniformly; this module *searches* it.  Instead of only drawing
fresh seeds, the fuzzer keeps a live corpus of systems and mutates
them structurally (:mod:`repro.verify.mutate`), guided by a cheap
behavioural signature:

* per-layer tightness buckets — how close each analytic bound came to
  its simulated observation;
* the set of declined layers and triggered invariants;
* log2-bucketed oracle counters harvested via :mod:`repro.obs`
  (fixpoint iterations, trace volume, check counts).

A mutant whose signature contributes any *new* token joins the corpus
and becomes mutation fodder; mutants that only revisit known behaviour
are discarded.  That feedback loop is what walks WCETs up a
schedulability cliff one nudge at a time — something independent
uniform draws practically never do.

Any soundness violation or invariant failure is delta-debugged
(:mod:`repro.verify.shrink`) to a minimal counterexample and can be
persisted as a JSON corpus entry (``tests/corpus/``) that pytest
replays forever after.

Determinism contract (tested): the whole run is a pure function of
``(seed, budget, size, seed_batch)``.  Rounds have a fixed size,
per-mutant seeds are spawn-derived from the global execution index,
mutants are *constructed in the parent* before dispatch, and results
merge in plan order — so ``--jobs 1`` and ``--jobs N`` produce
byte-identical corpus digests, and a ``--budget 200`` run is a strict
prefix of a ``--budget 400`` run.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.verify.generator import GeneratedSystem, generate_many
from repro.verify.mutate import mutate
from repro.verify.oracle import SystemVerdict, verify_system
from repro.verify.serialize import system_to_dict
from repro.verify.shrink import (FailureKey, ShrinkResult, failure_keys,
                                 shrink, system_size)

#: Mutants per post-seed round — fixed regardless of ``--jobs`` so the
#: corpus evolves identically at any parallelism.
ROUND_SIZE = 8
#: Fresh-seed systems fuzzed before mutation starts.
DEFAULT_SEED_BATCH = 16
#: Corpus counterexample file format version.  Format 2 added the
#: ``status`` field (``"open"`` = still reproduces, documented in
#: ``known_issues.json``; ``"fixed"`` = kept as a must-NOT-reproduce
#: regression) and system format 2 (fault scenarios).
CORPUS_FORMAT = 2
#: Tightness bucket width is 1/8 (log-free linear buckets; tightness
#: lives in [0, ~2] so 8 buckets per unit resolve the interesting band).
_TIGHTNESS_BUCKETS_PER_UNIT = 8
_TIGHTNESS_BUCKET_CAP = 24


# ----------------------------------------------------------------------
# Feedback signature
# ----------------------------------------------------------------------
def signature_tokens(verdict: SystemVerdict, counters: dict) -> list[str]:
    """The behavioural signature of one verification as flat tokens.

    A token is one coordinate of "where did this execution get to":
    coverage is the union of tokens ever seen, and a mutant is
    interesting iff it contributes a token outside that union.
    """
    tokens: set[str] = set()
    for check in verdict.checks:
        tightness = check.tightness
        if tightness is None:
            tokens.add(f"dry:{check.layer}")
            continue
        bucket = min(_TIGHTNESS_BUCKET_CAP,
                     int(tightness * _TIGHTNESS_BUCKETS_PER_UNIT))
        tokens.add(f"tight:{check.layer}:{bucket}")
        if not check.sound:
            tokens.add(f"viol:{check.layer}")
    for declined in verdict.declined:
        tokens.add(f"declined:{declined.split(':', 1)[0]}")
    for violation in verdict.invariant_violations:
        tokens.add(f"inv:{violation.invariant}")
    for name, value in counters.items():
        # perf.* counters are cache telemetry (hit/miss bookkeeping),
        # not system behaviour — admitting them would make coverage
        # depend on cache temperature and break cached/uncached parity.
        if name.startswith("perf."):
            continue
        tokens.add(f"ctr:{name}:{int(value).bit_length()}")
    return sorted(tokens)


def _fuzz_worker(horizon: Optional[int], item: tuple, seed: int) -> dict:
    """Plan worker: verify one (system, lineage) item, signature it.

    Verification runs inside a private :func:`repro.obs.capture` scope
    so per-execution oracle counters feed the signature without
    polluting (or depending on) ambient telemetry; the ``fuzz.execs``
    tick is emitted *after* the inner scope closes, into whatever
    chunk-level capture the execution engine has active.
    """
    system, _parent, _mutator = item
    with obs.capture() as telemetry:
        verdict = verify_system(system, horizon)
        snapshot = telemetry.snapshot()
    counters = snapshot["metrics"]["counters"]
    obs.count("fuzz.execs")
    return {
        "tokens": signature_tokens(verdict, counters),
        "failures": sorted(list(key) for key in failure_keys(verdict)),
    }


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class CorpusEntry:
    """One system kept alive for mutation."""

    system: GeneratedSystem
    lineage: tuple[str, ...]        #: e.g. ("seed:3", "m17:tdma-inflate")
    new_tokens: tuple[str, ...]     #: what it added to coverage


@dataclass
class Finding:
    """One distinct failure, minimized."""

    key: FailureKey
    exec_index: int                 #: global execution that hit it first
    lineage: tuple[str, ...]
    original_size: int
    shrink: ShrinkResult

    def file_payload(self, seed: int) -> dict:
        """The JSON corpus-file body for this finding."""
        return {
            "format": CORPUS_FORMAT,
            "status": "open",
            "failure": {"kind": self.key[0], "detail": self.key[1],
                        "subject": self.key[2]},
            "horizon": self.shrink.horizon,
            "system": system_to_dict(self.shrink.system),
            "fuzz": {"seed": seed, "exec": self.exec_index,
                     "lineage": list(self.lineage)},
            "shrink": {"original_size": self.original_size,
                       "minimal_size": system_size(self.shrink.system),
                       "probes": self.shrink.probes,
                       "accepted": self.shrink.accepted,
                       "complete": self.shrink.complete},
        }

    def file_name(self) -> str:
        """Deterministic, content-addressed corpus file name."""
        body = json.dumps(
            {"failure": list(self.key),
             "system": system_to_dict(self.shrink.system)},
            sort_keys=True, separators=(",", ":"))
        sha = hashlib.sha256(body.encode()).hexdigest()[:10]
        detail = "".join(c if c.isalnum() else "-" for c in self.key[1])
        return f"{self.key[0]}-{detail}-{sha}.json"


@dataclass
class FuzzReport:
    """Everything one fuzzing campaign produced."""

    seed: int
    budget: int
    size: str
    executions: int = 0
    rounds: int = 0
    corpus: list[CorpusEntry] = field(default_factory=list)
    coverage: set[str] = field(default_factory=set)
    findings: list[Finding] = field(default_factory=list)
    #: ``(executions_so_far, coverage_size)`` after every round — the
    #: seeds-to-new-coverage curve of EXPERIMENTS E15.
    coverage_curve: list[tuple[int, int]] = field(default_factory=list)
    stopped_early: bool = False
    #: Consecutive no-new-coverage rounds at campaign end.
    dry_rounds: int = 0
    #: True iff an ``until_dry`` campaign ended because it ran dry
    #: (rather than hitting the execution budget).
    terminated_dry: bool = False
    #: Mutator name -> times applied (post-seed rounds).
    mutator_counts: dict = field(default_factory=dict)

    @property
    def unshrunk(self) -> list[Finding]:
        return [f for f in self.findings if not f.shrink.complete]

    def digest(self) -> str:
        """Canonical SHA-256 over the run's complete outcome.

        Covers corpus membership (full system dicts, in admission
        order), the coverage token set and every minimized finding —
        any divergence between two runs, including a jobs-dependent
        merge order, changes this digest.
        """
        payload = {
            "format": CORPUS_FORMAT,
            "seed": self.seed, "size": self.size,
            "executions": self.executions,
            "coverage": sorted(self.coverage),
            "corpus": [{"lineage": list(e.lineage),
                        "new_tokens": list(e.new_tokens),
                        "system": system_to_dict(e.system)}
                       for e in self.corpus],
            "findings": [{"key": list(f.key),
                          "exec": f.exec_index,
                          "system": system_to_dict(f.shrink.system)}
                         for f in self.findings],
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(body.encode()).hexdigest()


def format_fuzz_report(report: FuzzReport) -> str:
    """Deterministic human-readable summary of a fuzzing campaign."""
    lines = [f"fuzz: seed={report.seed} executions={report.executions}"
             f"/{report.budget} rounds={report.rounds} "
             f"size={report.size}"
             + (" (stopped early)" if report.stopped_early else "")
             + (f" (terminated dry after {report.dry_rounds} "
                f"dry round(s))" if report.terminated_dry else "")]
    lines.append(f"  corpus: {len(report.corpus)} systems, "
                 f"{len(report.coverage)} coverage tokens")
    if report.mutator_counts:
        counts = " ".join(
            f"{name}={report.mutator_counts[name]}"
            for name in sorted(report.mutator_counts))
        lines.append(f"  mutators: {counts}")
    for execs, cov in report.coverage_curve:
        lines.append(f"    after {execs:>5} execs: {cov} tokens")
    if report.findings:
        lines.append(f"  findings: {len(report.findings)} "
                     f"({len(report.unshrunk)} unshrunk)")
        for finding in report.findings:
            kind, detail, subject = finding.key
            result = finding.shrink
            status = "minimal" if result.complete else "UNSHRUNK"
            lines.append(
                f"    {kind} {detail} {subject}: "
                f"{finding.original_size} -> "
                f"{system_size(result.system)} components "
                f"({result.probes} probes, {status})")
    else:
        lines.append("  findings: none")
    lines.append(f"  corpus digest: sha256:{report.digest()}")
    return "\n".join(lines)


def write_corpus(report: FuzzReport, directory: str) -> list[str]:
    """Persist every completely-shrunk finding as a JSON corpus file.

    File names are content-addressed, so re-running the same campaign
    (at any ``--jobs``) rewrites the same files byte-identically and
    different findings never collide.  Returns the paths written.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for finding in report.findings:
        if not finding.shrink.complete:
            continue
        path = os.path.join(directory, finding.file_name())
        body = json.dumps(finding.file_payload(report.seed), indent=2,
                          sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(body + "\n")
        paths.append(path)
    return paths


# ----------------------------------------------------------------------
# The campaign loop
# ----------------------------------------------------------------------
#: Recency window for parent selection (see :func:`_pick_parent`).
_RECENT_WINDOW = 8


def _pick_parent(rng: random.Random, corpus_size: int) -> int:
    """Corpus index to mutate next: half the picks favour the newest
    entries (they embody the deepest behavioural walk so far — pure
    uniform choice dilutes multi-step walks as the corpus grows), the
    other half stay uniform so old lineages keep getting explored."""
    if corpus_size > _RECENT_WINDOW and rng.random() < 0.5:
        return corpus_size - 1 - rng.randrange(_RECENT_WINDOW)
    return rng.randrange(corpus_size)

def fuzz(seed: int, budget: int, size: str = "small", jobs: int = 1,
         horizon: Optional[int] = None, checkpoint=None,
         resume: bool = False, retries: int = 1,
         seed_batch: int = DEFAULT_SEED_BATCH, progress=None,
         max_seconds: Optional[float] = None,
         shrink_probes: int = 2000,
         interrupt_after: Optional[int] = None,
         until_dry: Optional[int] = None,
         cache=None, seeds=None) -> FuzzReport:
    """Run one coverage-guided fuzzing campaign of ``budget`` verify
    executions (shrink probes are not counted against the budget).

    ``until_dry=K`` switches to campaign mode: keep fuzzing until
    ``K`` *consecutive* post-seed rounds admit no new feedback
    signature token, then stop with ``terminated_dry=True``.  The
    execution budget still caps the run (a campaign that never runs
    dry stops at the budget with ``terminated_dry=False``).

    Mutant construction happens in the parent — each mutant's RNG is
    seeded from ``derive_seed(seed, execution_index)``, picking a
    corpus parent and a mutation — and only the expensive verification
    fans out over :mod:`repro.exec`.  ``checkpoint`` journals each
    round separately (``<path>.roundNNNN``); ``resume`` recovers every
    completed round without re-running it.

    ``max_seconds`` stops the campaign at a round boundary once the
    wall clock budget is spent — the one knob that trades determinism
    (of *when* the run stops, never of what any prefix computed) for a
    bounded CI footprint.

    ``cache`` (a :class:`repro.perf.CacheConfig`, or None) enables the
    analysis memo cache in the processes running verification — fuzz
    replay is the cache's best case, since most mutants perturb one
    subsystem and every other layer's bounds re-solve from the memo.
    Counter replay plus the ``perf.*`` signature filter keep coverage
    tokens, corpus admission, and report digests byte-identical to an
    uncached campaign.

    ``seeds`` (a sequence of :class:`GeneratedSystem`) replaces the
    generated seed round: the campaign starts from exactly those
    systems — e.g. model documents (``repro fuzz --model``) — and
    mutates outward from them.
    """
    from repro.exec import Plan, execute
    from repro.exec.shard import derive_seed
    from repro.perf import memo as perf_memo

    setup = None if cache is None \
        else functools.partial(perf_memo.ensure, cache)

    report = FuzzReport(seed, budget, size)
    seen_keys: set[FailureKey] = set()
    started = time.monotonic()

    round_no = 0
    consecutive_dry = 0
    while report.executions < budget:
        if max_seconds is not None \
                and time.monotonic() - started > max_seconds:
            report.stopped_early = True
            break

        if round_no == 0:
            if seeds is not None:
                systems = list(seeds)[:budget]
            else:
                count = min(seed_batch, budget)
                systems = generate_many(seed, count, size)
            items = tuple((system, f"seed:{index}", "")
                          for index, system in enumerate(systems))
        else:
            if not report.corpus:
                # Nothing survived the seed round (theoretical — the
                # first seed always contributes tokens); stop rather
                # than mutate nothing.
                break
            count = min(ROUND_SIZE, budget - report.executions)
            mutants = []
            for offset in range(count):
                index = report.executions + offset
                rng = random.Random(derive_seed(seed, index))
                parent = report.corpus[_pick_parent(rng,
                                                   len(report.corpus))]
                mutant, mutator = mutate(parent.system, rng)
                mutant.name = f"m{index}"
                report.mutator_counts[mutator] = \
                    report.mutator_counts.get(mutator, 0) + 1
                mutants.append((mutant, parent.lineage[-1], mutator))
            items = tuple(mutants)

        plan = Plan(f"fuzz:seed={seed}:size={size}:round={round_no}",
                    functools.partial(_fuzz_worker, horizon),
                    items, base_seed=seed, setup=setup)
        round_checkpoint = None if checkpoint is None \
            else f"{checkpoint}.round{round_no:04d}"
        round_resume = (resume and round_checkpoint is not None
                        and os.path.exists(round_checkpoint))
        outcome = execute(plan, jobs=jobs, retries=retries,
                          checkpoint=round_checkpoint,
                          resume=round_resume, progress=progress,
                          interrupt_after=interrupt_after)
        outcome.raise_on_failure()

        # Merge in plan order: corpus admission and finding discovery
        # see results in the same sequence at any job count.
        round_fresh = False
        for offset, result in enumerate(outcome.results):
            system, parent_label, mutator = items[offset]
            index = report.executions + offset
            label = (f"seed:{index}" if round_no == 0
                     else f"m{index}:{mutator}")
            lineage = ((label,) if round_no == 0
                       else (parent_label, label))
            fresh = [t for t in result["tokens"]
                     if t not in report.coverage]
            if fresh:
                round_fresh = True
                report.coverage.update(result["tokens"])
                report.corpus.append(
                    CorpusEntry(system, lineage, tuple(fresh)))
            for raw_key in result["failures"]:
                key = tuple(raw_key)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                outcome_shrink = shrink(system, key, horizon=horizon,
                                        max_probes=shrink_probes)
                report.findings.append(Finding(
                    key, index, lineage, system_size(system),
                    outcome_shrink))
                if obs.enabled():
                    obs.count("fuzz.findings")
                    obs.count("fuzz.shrink_steps",
                              outcome_shrink.probes)

        report.executions += len(items)
        report.rounds = round_no + 1
        report.coverage_curve.append(
            (report.executions, len(report.coverage)))
        # Seed rounds never count as dry: the first seed always
        # contributes tokens, and a campaign's dryness is a statement
        # about *mutation* having nothing left to find.
        if round_no > 0:
            consecutive_dry = 0 if round_fresh else consecutive_dry + 1
        report.dry_rounds = consecutive_dry
        round_no += 1
        if until_dry is not None and consecutive_dry >= until_dry:
            report.terminated_dry = True
            break

    if obs.enabled():
        obs.gauge_set("fuzz.corpus_size", len(report.corpus))
        obs.gauge_set("fuzz.coverage_tokens", len(report.coverage))
    return report
