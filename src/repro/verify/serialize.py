"""Legacy JSON round-trip for :class:`~repro.verify.generator.GeneratedSystem`.

This is the **corpus format**: the flat system dict the fuzzer has
persisted under ``tests/corpus/`` since PR 5, which pytest replays
forever after — so a generated system must survive a trip through
plain JSON byte-exactly: ``system_from_dict(system_to_dict(s))``
reconstructs a system whose oracle verdict — bounds, observations,
invariants, digest — is indistinguishable from the original's.

All per-subsystem field layouts are delegated to
:mod:`repro.model.convert`, the converter layer shared with the
versioned exchange format of :mod:`repro.model` — one source of truth,
so the corpus byte layout and the model document can never drift
apart.  (The delegation is lazy: ``repro.model`` imports this package's
siblings, and resolving the converters at call time keeps both import
orders — ``import repro.verify`` first or ``import repro.model`` first
— cycle-free.)  New descriptions should use the model format
(``repro model``, :class:`repro.model.Model`); this module remains the
loader for the existing corpus and for fuzz-internal persistence, and
:func:`system_from_dict` additionally accepts a model document and
routes it through :func:`repro.model.build.system_from_model`.

``FORMAT`` is bumped on incompatible changes; the loader refuses
unknown versions instead of guessing.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.verify.generator import CriticalSection, GeneratedSystem

#: Corpus file format version (bumped on incompatible changes).
#: Format 2 added the ``faults`` list (injected fault scenarios); the
#: loader still reads format-1 files as fault-free systems.
FORMAT = 2

#: Pre-``repro.model`` private converter names, kept importable (as
#: ``serialize._task_to_dict`` etc.) for corpus tooling written
#: against them; resolved lazily via module ``__getattr__``.
_FORWARDED = ("task", "signal", "ipdu", "frame_spec", "can", "flexray",
              "chain", "tdma", "fault")


def __getattr__(name: str):
    for piece in _FORWARDED:
        for direction in ("to", "from"):
            if name == f"_{piece}_{direction}_dict":
                from repro.model import convert
                return getattr(convert, f"{piece}_{direction}_dict")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def system_to_dict(system: GeneratedSystem) -> dict:
    """One JSON-able dict capturing the complete generated system."""
    from repro.model import convert

    return {
        "format": FORMAT,
        "name": system.name, "seed": system.seed, "size": system.size,
        "tasksets": {ecu: [convert.task_to_dict(t) for t in tasks]
                     for ecu, tasks in sorted(system.tasksets.items())},
        "resources": dict(sorted(system.resources.items())),
        "critical_sections": [
            {"task": s.task, "resource": s.resource, "pre": s.pre,
             "duration": s.duration, "post": s.post}
            for s in system.critical_sections],
        "chain": (None if system.chain is None
                  else convert.chain_to_dict(system.chain)),
        "can": (None if system.can is None
                else convert.can_to_dict(system.can)),
        "flexray": (None if system.flexray is None
                    else convert.flexray_to_dict(system.flexray)),
        "tdma": (None if system.tdma is None
                 else convert.tdma_to_dict(system.tdma)),
        "faults": [convert.fault_to_dict(f) for f in system.faults],
    }


def system_from_dict(data: dict) -> GeneratedSystem:
    """Reconstruct a system from :func:`system_to_dict` output.

    Also accepts a :mod:`repro.model` document (detected by its
    ``format`` tag) — validated and compiled through
    :func:`repro.model.build.system_from_model` — so every consumer of
    the legacy loader can read the new exchange format for free.
    """
    from repro.model import build, convert, schema

    if schema.is_model_document(data):
        schema.ensure_valid(data)
        return build.system_from_model(data)
    version = data.get("format")
    if version not in (1, FORMAT):
        raise ConfigurationError(
            f"system dict has format {version!r}; this build reads "
            f"formats 1..{FORMAT} and repro.model documents")
    system = GeneratedSystem(data["name"], data["seed"], data["size"])
    system.tasksets = {ecu: [convert.task_from_dict(t) for t in tasks]
                       for ecu, tasks in data["tasksets"].items()}
    system.resources = dict(data["resources"])
    system.critical_sections = [
        CriticalSection(s["task"], s["resource"], s["pre"], s["duration"],
                        s["post"]) for s in data["critical_sections"]]
    if data["chain"] is not None:
        system.chain = convert.chain_from_dict(data["chain"])
    if data["can"] is not None:
        system.can = convert.can_from_dict(data["can"])
    if data["flexray"] is not None:
        system.flexray = convert.flexray_from_dict(data["flexray"])
    if data["tdma"] is not None:
        system.tdma = convert.tdma_from_dict(data["tdma"])
    system.faults = [convert.fault_from_dict(f)
                     for f in data.get("faults", ())]
    return system
