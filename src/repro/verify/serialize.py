"""JSON round-trip for :class:`~repro.verify.generator.GeneratedSystem`.

The fuzzer persists minimized counterexamples to a regression corpus
(``tests/corpus/*.json``) that pytest replays forever after, so a
generated system must survive a trip through plain JSON byte-exactly:
``system_from_dict(system_to_dict(s))`` reconstructs a system whose
oracle verdict — bounds, observations, invariants, digest — is
indistinguishable from the original's.

The format is deliberately explicit (every field spelled out, no
pickling) so a human can read a counterexample file and see the three
tasks and one bus frame that break a bound.  ``FORMAT`` is bumped on
incompatible changes; the loader refuses unknown versions instead of
guessing.
"""

from __future__ import annotations

from typing import Optional

from repro.com.ipdu import IPdu, SignalMapping
from repro.com.packing import PackedFrame
from repro.com.signal import SignalSpec
from repro.errors import ConfigurationError
from repro.network.can import CanFrameSpec
from repro.network.flexray import (DynamicFrameSpec, FlexRayConfig,
                                   StaticSlotAssignment)
from repro.osek.task import TaskSpec
from repro.verify.generator import (CanPlan, ChainPlan, CriticalSection,
                                    DynamicWriter, FaultScenario,
                                    FlexRayPlan, GeneratedSystem,
                                    StaticWriter, TdmaPlan)

#: Corpus file format version (bumped on incompatible changes).
#: Format 2 added the ``faults`` list (injected fault scenarios); the
#: loader still reads format-1 files as fault-free systems.
FORMAT = 2


# ----------------------------------------------------------------------
# to dict
# ----------------------------------------------------------------------
def _task_to_dict(task: TaskSpec) -> dict:
    return {"name": task.name, "wcet": task.wcet, "period": task.period,
            "offset": task.offset, "deadline": task.deadline,
            "priority": task.priority, "partition": task.partition,
            "max_activations": task.max_activations, "budget": task.budget,
            "jitter": task.jitter, "bcet": task.bcet,
            "criticality": task.criticality}


def _signal_to_dict(spec: SignalSpec) -> dict:
    return {"name": spec.name, "width_bits": spec.width_bits,
            "initial": spec.initial, "transfer": spec.transfer,
            "timeout": spec.timeout}


def _ipdu_to_dict(ipdu: IPdu) -> dict:
    return {"name": ipdu.name, "size_bytes": ipdu.size_bytes,
            "mappings": [{"signal": _signal_to_dict(m.spec),
                          "start_bit": m.start_bit,
                          "update_bit": m.update_bit}
                         for m in ipdu.mappings]}


def _frame_spec_to_dict(spec: CanFrameSpec) -> dict:
    return {"name": spec.name, "can_id": spec.can_id, "dlc": spec.dlc,
            "period": spec.period, "deadline": spec.deadline,
            "extended": spec.extended, "jitter": spec.jitter}


def _can_to_dict(can: CanPlan) -> dict:
    return {"bitrate_bps": can.bitrate_bps,
            "frames": [{"ipdu": _ipdu_to_dict(f.ipdu), "period": f.period,
                        "sender": f.sender} for f in can.frames],
            "frame_specs": [_frame_spec_to_dict(s)
                            for s in can.frame_specs]}


def _flexray_to_dict(plan: FlexRayPlan) -> dict:
    config = plan.config
    return {
        "config": {"slot_length": config.slot_length,
                   "n_static_slots": config.n_static_slots,
                   "minislot_length": config.minislot_length,
                   "n_minislots": config.n_minislots,
                   "nit_length": config.nit_length,
                   "bitrate_bps": config.bitrate_bps},
        "nodes": list(plan.nodes),
        "static_writers": [
            {"slot": w.assignment.slot, "node": w.assignment.node,
             "frame_name": w.assignment.frame_name,
             "base_cycle": w.assignment.base_cycle,
             "repetition": w.assignment.repetition,
             "period": w.period, "offset": w.offset}
            for w in plan.static_writers],
        "dynamic_writers": [
            {"name": w.spec.name, "frame_id": w.spec.frame_id,
             "size_bytes": w.spec.size_bytes, "node": w.node,
             "period": w.period, "offset": w.offset}
            for w in plan.dynamic_writers],
    }


def _chain_to_dict(chain: ChainPlan) -> dict:
    return {"producer": chain.producer, "producer_ecu": chain.producer_ecu,
            "consumer": chain.consumer, "consumer_ecu": chain.consumer_ecu,
            "signal_name": chain.signal_name,
            "signal_bits": chain.signal_bits, "pdu_name": chain.pdu_name,
            "period": chain.period, "data_id": chain.data_id,
            "counter_bits": chain.counter_bits,
            "max_delta_counter": chain.max_delta_counter,
            "timeout": chain.timeout}


def _tdma_to_dict(plan: TdmaPlan) -> dict:
    return {"ecu": plan.ecu, "partitions": list(plan.partitions),
            "major_frame": plan.major_frame,
            "tasks": [_task_to_dict(t) for t in plan.tasks]}


def system_to_dict(system: GeneratedSystem) -> dict:
    """One JSON-able dict capturing the complete generated system."""
    return {
        "format": FORMAT,
        "name": system.name, "seed": system.seed, "size": system.size,
        "tasksets": {ecu: [_task_to_dict(t) for t in tasks]
                     for ecu, tasks in sorted(system.tasksets.items())},
        "resources": dict(sorted(system.resources.items())),
        "critical_sections": [
            {"task": s.task, "resource": s.resource, "pre": s.pre,
             "duration": s.duration, "post": s.post}
            for s in system.critical_sections],
        "chain": (None if system.chain is None
                  else _chain_to_dict(system.chain)),
        "can": None if system.can is None else _can_to_dict(system.can),
        "flexray": (None if system.flexray is None
                    else _flexray_to_dict(system.flexray)),
        "tdma": None if system.tdma is None else _tdma_to_dict(system.tdma),
        "faults": [{"kind": f.kind, "start": f.start,
                    "duration": f.duration, "target": f.target}
                   for f in system.faults],
    }


# ----------------------------------------------------------------------
# from dict
# ----------------------------------------------------------------------
def _task_from_dict(data: dict) -> TaskSpec:
    return TaskSpec(data["name"], data["wcet"], period=data["period"],
                    offset=data["offset"], deadline=data["deadline"],
                    priority=data["priority"], partition=data["partition"],
                    max_activations=data["max_activations"],
                    budget=data["budget"], jitter=data["jitter"],
                    bcet=data["bcet"], criticality=data["criticality"])


def _signal_from_dict(data: dict) -> SignalSpec:
    return SignalSpec(data["name"], data["width_bits"],
                      initial=data["initial"], transfer=data["transfer"],
                      timeout=data["timeout"])


def _ipdu_from_dict(data: dict) -> IPdu:
    return IPdu(data["name"], data["size_bytes"],
                [SignalMapping(_signal_from_dict(m["signal"]),
                               m["start_bit"], m["update_bit"])
                 for m in data["mappings"]])


def _frame_spec_from_dict(data: dict) -> CanFrameSpec:
    return CanFrameSpec(data["name"], data["can_id"], dlc=data["dlc"],
                        period=data["period"], deadline=data["deadline"],
                        extended=data["extended"], jitter=data["jitter"])


def _can_from_dict(data: dict) -> CanPlan:
    return CanPlan(
        data["bitrate_bps"],
        tuple(PackedFrame(_ipdu_from_dict(f["ipdu"]), f["period"],
                          f["sender"]) for f in data["frames"]),
        tuple(_frame_spec_from_dict(s) for s in data["frame_specs"]))


def _flexray_from_dict(data: dict) -> FlexRayPlan:
    cfg = data["config"]
    config = FlexRayConfig(cfg["slot_length"], cfg["n_static_slots"],
                           minislot_length=cfg["minislot_length"],
                           n_minislots=cfg["n_minislots"],
                           nit_length=cfg["nit_length"],
                           bitrate_bps=cfg["bitrate_bps"])
    static = tuple(
        StaticWriter(StaticSlotAssignment(w["slot"], w["node"],
                                          w["frame_name"], w["base_cycle"],
                                          w["repetition"]),
                     w["period"], w["offset"])
        for w in data["static_writers"])
    dynamic = tuple(
        DynamicWriter(DynamicFrameSpec(w["name"], frame_id=w["frame_id"],
                                       size_bytes=w["size_bytes"]),
                      w["node"], w["period"], w["offset"])
        for w in data["dynamic_writers"])
    return FlexRayPlan(config, tuple(data["nodes"]), static, dynamic)


def _chain_from_dict(data: dict) -> ChainPlan:
    return ChainPlan(**data)


def _tdma_from_dict(data: dict) -> TdmaPlan:
    return TdmaPlan(data["ecu"], tuple(data["partitions"]),
                    data["major_frame"],
                    tuple(_task_from_dict(t) for t in data["tasks"]))


def system_from_dict(data: dict) -> GeneratedSystem:
    """Reconstruct a system from :func:`system_to_dict` output."""
    version = data.get("format")
    if version not in (1, FORMAT):
        raise ConfigurationError(
            f"system dict has format {version!r}; this build reads "
            f"formats 1..{FORMAT}")
    system = GeneratedSystem(data["name"], data["seed"], data["size"])
    system.tasksets = {ecu: [_task_from_dict(t) for t in tasks]
                       for ecu, tasks in data["tasksets"].items()}
    system.resources = dict(data["resources"])
    system.critical_sections = [
        CriticalSection(s["task"], s["resource"], s["pre"], s["duration"],
                        s["post"]) for s in data["critical_sections"]]
    if data["chain"] is not None:
        system.chain = _chain_from_dict(data["chain"])
    if data["can"] is not None:
        system.can = _can_from_dict(data["can"])
    if data["flexray"] is not None:
        system.flexray = _flexray_from_dict(data["flexray"])
    if data["tdma"] is not None:
        system.tdma = _tdma_from_dict(data["tdma"])
    system.faults = [FaultScenario(f["kind"], f["start"], f["duration"],
                                   f.get("target", ""))
                     for f in data.get("faults", ())]
    return system
