"""Differential verification harness.

Random valid systems (:mod:`repro.verify.generator`) are run through
both the analytic bounds and the simulation stack
(:mod:`repro.verify.oracle`); trace-level safety properties are checked
by :mod:`repro.verify.invariants`.  Entry point: ``repro verify``.
"""

from repro.verify.generator import (SIZES, GeneratedSystem, generate,
                                    generate_many)
from repro.verify.invariants import (AliveCounterInvariant,
                                     E2eContainmentInvariant, Invariant,
                                     InvariantChecker,
                                     NoOverlappingExecution,
                                     PriorityCeilingInvariant,
                                     TdmaWindowInvariant, Violation)
from repro.verify.oracle import (Check, SystemVerdict, VerificationReport,
                                 analyze_bounds, build_system,
                                 format_report, make_invariants,
                                 verify_many, verify_system)

__all__ = [
    "SIZES", "GeneratedSystem", "generate", "generate_many",
    "Invariant", "InvariantChecker", "Violation",
    "NoOverlappingExecution", "TdmaWindowInvariant",
    "PriorityCeilingInvariant", "AliveCounterInvariant",
    "E2eContainmentInvariant",
    "Check", "SystemVerdict", "VerificationReport",
    "analyze_bounds", "build_system", "make_invariants",
    "verify_system", "verify_many", "format_report",
]
