"""Differential verification harness.

Random valid systems (:mod:`repro.verify.generator`) are run through
both the analytic bounds and the simulation stack
(:mod:`repro.verify.oracle`); trace-level safety properties are checked
by :mod:`repro.verify.invariants`.  On top of that sits the
coverage-guided fuzzer: structural mutation
(:mod:`repro.verify.mutate`), campaign loop (:mod:`repro.verify.fuzz`),
counterexample minimization (:mod:`repro.verify.shrink`) and JSON
persistence (:mod:`repro.verify.serialize`).  Entry points:
``repro verify`` and ``repro fuzz``.
"""

from repro.verify.fuzz import (FuzzReport, format_fuzz_report, fuzz,
                               signature_tokens, write_corpus)
from repro.verify.generator import (SIZES, GeneratedSystem, generate,
                                    generate_many)
from repro.verify.invariants import (AliveCounterInvariant,
                                     E2eContainmentInvariant, Invariant,
                                     InvariantChecker,
                                     NoOverlappingExecution,
                                     PriorityCeilingInvariant,
                                     TdmaWindowInvariant, Violation)
from repro.verify.mutate import MUTATORS, mutate, validate_system
from repro.verify.oracle import (Check, SystemVerdict, VerificationReport,
                                 analyze_bounds, build_system,
                                 format_report, make_invariants,
                                 verify_many, verify_system)
from repro.verify.serialize import system_from_dict, system_to_dict
from repro.verify.shrink import (ShrinkResult, failure_keys, shrink,
                                 system_size)

__all__ = [
    "SIZES", "GeneratedSystem", "generate", "generate_many",
    "Invariant", "InvariantChecker", "Violation",
    "NoOverlappingExecution", "TdmaWindowInvariant",
    "PriorityCeilingInvariant", "AliveCounterInvariant",
    "E2eContainmentInvariant",
    "Check", "SystemVerdict", "VerificationReport",
    "analyze_bounds", "build_system", "make_invariants",
    "verify_system", "verify_many", "format_report",
    "MUTATORS", "mutate", "validate_system",
    "ShrinkResult", "failure_keys", "shrink", "system_size",
    "FuzzReport", "fuzz", "format_fuzz_report", "signature_tokens",
    "write_corpus",
    "system_to_dict", "system_from_dict",
]
