"""Structural mutation of generated systems for the coverage fuzzer.

Fresh random seeds (:func:`repro.verify.generator.generate`) sample the
*centre* of the configuration space — every draw respects the
generator's self-imposed safety margins (bus utilization caps, TDMA
WCETs below a third of a window, periods above the major frame).  The
interesting differential-verification cases live at the *edges*: task
sets right at the schedulability cliff, partitions near overload, bus
layouts the packing heuristic would never emit.  Mutators walk an
existing :class:`~repro.verify.generator.GeneratedSystem` toward those
edges **without leaving well-formedness**:

* every mutant satisfies :func:`validate_system` (unique priorities,
  frames that fit their bus payload, disjoint FlexRay slots, chains
  referencing live tasks);
* mutation is a pure function of ``(system, rng)`` — the same parent
  and seed always produce the same mutant, which is what makes fuzzing
  runs resumable and ``--jobs`` invariant.

A mutant may well be *unanalysable* (a bound declines) or genuinely
overloaded — that is the point: declining is a legitimate, reported
oracle outcome, while a bound that exists and is beaten by the
simulation is the soundness violation the fuzzer hunts.
"""

from __future__ import annotations

import copy
import random
from dataclasses import replace
from typing import Callable, Optional

from repro.network.flexray import StaticSlotAssignment
from repro.osek.task import TaskSpec
from repro.verify.generator import (ChainPlan, FaultScenario,
                                    GeneratedSystem, PERIOD_POOL,
                                    SIGNAL_PERIOD_POOL,
                                    TDMA_PERIOD_POOL, TdmaPlan)
from repro.units import ms, us

#: WCET scale factors applied by the utilization nudges.
_SCALE_UP = (1.25, 1.5, 2.0)
_SCALE_DOWN = (0.5, 0.75)
#: TDMA WCET inflation walks harder — partition overload is the edge
#: the single-demand supply bound is validity-sensitive to.
_TDMA_SCALE = (1.5, 2.0, 3.0)
#: Candidate TDMA major frames (window perturbation).
_MAJOR_FRAMES = (ms(5), ms(10), ms(20))
#: Candidate chain periods for rewiring.
_CHAIN_PERIODS = (ms(10), ms(20), ms(50))

Mutator = Callable[[random.Random, GeneratedSystem],
                   Optional[GeneratedSystem]]


# ----------------------------------------------------------------------
# Well-formedness
# ----------------------------------------------------------------------
def validate_system(system: GeneratedSystem) -> list[str]:
    """Well-formedness problems of ``system`` (empty list = valid).

    This is the contract every mutator and every shrink step must
    re-establish; it intentionally does *not* include analysability —
    unanalysable-but-well-formed systems are exactly the edge cases the
    fuzzer exists to reach.
    """
    problems: list[str] = []

    def check_tasks(ecu: str, tasks) -> None:
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            problems.append(f"{ecu}: duplicate task names")
        priorities = [t.priority for t in tasks]
        if len(set(priorities)) != len(priorities):
            problems.append(f"{ecu}: task priorities not unique")

    for ecu, tasks in system.tasksets.items():
        check_tasks(ecu, tasks)

    task_names = {t.name for tasks in system.tasksets.values()
                  for t in tasks}

    for section in system.critical_sections:
        if section.task not in task_names:
            problems.append(
                f"critical section references dead task {section.task}")
        if section.resource not in system.resources:
            problems.append(
                f"critical section references unknown resource "
                f"{section.resource}")
        if section.pre + section.duration + section.post <= 0:
            problems.append(f"critical section of {section.task} is empty")
    by_name = {t.name: t for tasks in system.tasksets.values()
               for t in tasks}
    for resource, ceiling in system.resources.items():
        users = [by_name[s.task].priority
                 for s in system.critical_sections
                 if s.resource == resource and s.task in by_name]
        if users and ceiling < max(users):
            problems.append(f"resource {resource}: ceiling {ceiling} "
                            f"below a user's priority {max(users)}")

    chain = system.chain
    if chain is not None:
        if system.can is None:
            problems.append("chain present but no CAN plan to carry it")
        if chain.producer not in {
                t.name for t in system.tasksets.get(chain.producer_ecu, [])}:
            problems.append(f"chain producer {chain.producer} is not a "
                            f"task of {chain.producer_ecu}")
        if chain.consumer not in {
                t.name for t in system.tasksets.get(chain.consumer_ecu, [])}:
            problems.append(f"chain consumer {chain.consumer} is not a "
                            f"task of {chain.consumer_ecu}")
        if chain.period <= 0:
            problems.append("chain period must be > 0")
        if chain.timeout < chain.period:
            problems.append("chain timeout below its period")
        if chain.counter_bits < 1:
            problems.append("chain counter needs at least one bit")
        if not 0 < chain.max_delta_counter < (1 << chain.counter_bits):
            problems.append("chain max_delta_counter out of counter range")

    can = system.can
    if can is not None:
        names = [s.name for s in can.frame_specs]
        if len(set(names)) != len(names):
            problems.append("CAN: duplicate frame names")
        ids = [s.can_id for s in can.frame_specs]
        if len(set(ids)) != len(ids):
            problems.append("CAN: duplicate identifiers")
        specs = {s.name: s for s in can.frame_specs}
        if chain is not None and chain.pdu_name not in specs:
            problems.append(f"CAN: no frame spec for chain PDU "
                            f"{chain.pdu_name}")
        for frame in can.frames:
            spec = specs.get(frame.ipdu.name)
            if spec is None:
                problems.append(f"CAN: packed frame {frame.ipdu.name} "
                                f"has no frame spec")
                continue
            if frame.ipdu.size_bytes > spec.dlc:
                problems.append(f"CAN: {frame.ipdu.name} payload "
                                f"({frame.ipdu.size_bytes}B) exceeds "
                                f"dlc {spec.dlc}")
            if frame.period != spec.period:
                problems.append(f"CAN: {frame.ipdu.name} packed period "
                                f"{frame.period} != spec period "
                                f"{spec.period}")

    flexray = system.flexray
    if flexray is not None:
        slots = [w.assignment.slot for w in flexray.static_writers]
        if len(set(slots)) != len(slots):
            problems.append("FlexRay: static slots not disjoint")
        for writer in flexray.static_writers:
            if not 1 <= writer.assignment.slot \
                    <= flexray.config.n_static_slots:
                problems.append(f"FlexRay: slot {writer.assignment.slot} "
                                f"outside the static segment")
            if writer.assignment.node not in flexray.nodes:
                problems.append(f"FlexRay: writer node "
                                f"{writer.assignment.node} not attached")
            if writer.period <= 0 or not 0 <= writer.offset < writer.period:
                problems.append(f"FlexRay: writer of slot "
                                f"{writer.assignment.slot} has a bad "
                                f"period/offset")
        frame_ids = [w.spec.frame_id for w in flexray.dynamic_writers]
        if len(set(frame_ids)) != len(frame_ids):
            problems.append("FlexRay: duplicate dynamic frame ids")
        for writer in flexray.dynamic_writers:
            if writer.node not in flexray.nodes:
                problems.append(f"FlexRay: dynamic writer node "
                                f"{writer.node} not attached")
            if writer.period <= 0 or not 0 <= writer.offset < writer.period:
                problems.append(f"FlexRay: dynamic {writer.spec.name} has "
                                f"a bad period/offset")

    tdma = system.tdma
    if tdma is not None:
        check_tasks(tdma.ecu, tdma.tasks)
        if not tdma.partitions:
            problems.append("TDMA: no partitions")
        populated = {t.partition for t in tdma.tasks}
        for task in tdma.tasks:
            if task.partition not in tdma.partitions:
                problems.append(f"TDMA: task {task.name} references "
                                f"unknown partition {task.partition}")
        for partition in tdma.partitions:
            if partition not in populated:
                problems.append(f"TDMA: partition {partition} has no tasks")
        if tdma.major_frame < len(tdma.partitions):
            problems.append("TDMA: major frame too short to give every "
                            "partition a window")

    if system.faults:
        from repro.verify.resilience import scenario_problems
        for scenario in system.faults:
            problems.extend(scenario_problems(system, scenario))
    return problems


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _retask(task: TaskSpec, *, wcet: Optional[int] = None,
            period: Optional[int] = None,
            jitter: Optional[int] = None,
            priority: Optional[int] = None,
            max_activations: Optional[int] = None) -> TaskSpec:
    """A fresh TaskSpec with selected fields changed.

    The deadline and BCET are re-derived (deadline follows the period,
    BCET follows the WCET) exactly like the generator leaves them, so a
    mutated task never carries a stale deadline from its previous
    period.
    """
    return TaskSpec(task.name,
                    task.wcet if wcet is None else wcet,
                    period=task.period if period is None else period,
                    offset=task.offset,
                    priority=task.priority if priority is None
                    else priority,
                    partition=task.partition,
                    max_activations=task.max_activations
                    if max_activations is None else max_activations,
                    budget=task.budget,
                    jitter=task.jitter if jitter is None else jitter,
                    criticality=task.criticality)


def _chain_task_names(system: GeneratedSystem) -> set[str]:
    if system.chain is None:
        return set()
    return {system.chain.producer, system.chain.consumer}


def _cs_tasks(system: GeneratedSystem) -> set[str]:
    return {s.task for s in system.critical_sections}


def _pick_fp_task(rng: random.Random, system: GeneratedSystem,
                  exclude: set[str]) -> Optional[tuple[str, int]]:
    """A random (ecu, index) over fixed-priority tasks not in
    ``exclude``, or None when no task qualifies."""
    candidates = [(ecu, i)
                  for ecu in system.fp_ecus
                  for i, t in enumerate(system.tasksets[ecu])
                  if t.name not in exclude]
    if not candidates:
        return None
    return candidates[rng.randrange(len(candidates))]


def _scale_clamped(wcet: int, factor: float, period: int) -> int:
    return min(max(us(10), int(wcet * factor)), period)


# ----------------------------------------------------------------------
# Mutators.  Each takes (rng, system), returns a NEW system or None
# when inapplicable; the input is never modified.
# ----------------------------------------------------------------------
def mutate_util_up(rng: random.Random,
                   system: GeneratedSystem) -> Optional[GeneratedSystem]:
    """Inflate one fixed-priority task's WCET (toward the RTA cliff)."""
    pick = _pick_fp_task(rng, system, _cs_tasks(system))
    if pick is None:
        return None
    mutant = copy.deepcopy(system)
    ecu, index = pick
    task = mutant.tasksets[ecu][index]
    wcet = _scale_clamped(task.wcet, rng.choice(_SCALE_UP), task.period)
    mutant.tasksets[ecu][index] = _retask(task, wcet=wcet)
    return mutant


def mutate_util_down(rng: random.Random,
                     system: GeneratedSystem) -> Optional[GeneratedSystem]:
    """Deflate one fixed-priority task's WCET."""
    pick = _pick_fp_task(rng, system, _cs_tasks(system))
    if pick is None:
        return None
    mutant = copy.deepcopy(system)
    ecu, index = pick
    task = mutant.tasksets[ecu][index]
    wcet = _scale_clamped(task.wcet, rng.choice(_SCALE_DOWN), task.period)
    mutant.tasksets[ecu][index] = _retask(task, wcet=wcet)
    return mutant


def mutate_jitter(rng: random.Random,
                  system: GeneratedSystem) -> Optional[GeneratedSystem]:
    """Re-draw one fixed-priority task's release jitter."""
    pick = _pick_fp_task(rng, system, set())
    if pick is None:
        return None
    mutant = copy.deepcopy(system)
    ecu, index = pick
    task = mutant.tasksets[ecu][index]
    jitter = rng.choice((0, task.period // 8, task.period // 4,
                         task.period // 2))
    mutant.tasksets[ecu][index] = _retask(task, jitter=jitter)
    return mutant


def mutate_priority_swap(rng: random.Random,
                         system: GeneratedSystem
                         ) -> Optional[GeneratedSystem]:
    """Swap the priorities of two tasks on one ECU (uniqueness kept)."""
    ecus = [ecu for ecu in system.fp_ecus
            if len(system.tasksets[ecu]) >= 2]
    if not ecus:
        return None
    mutant = copy.deepcopy(system)
    ecu = ecus[rng.randrange(len(ecus))]
    tasks = mutant.tasksets[ecu]
    i, j = rng.sample(range(len(tasks)), 2)
    tasks[i], tasks[j] = (_retask(tasks[i], priority=tasks[j].priority),
                          _retask(tasks[j], priority=tasks[i].priority))
    # Re-establish ICPP: a ceiling never sits below a user's priority.
    by_name = {t.name: t for ts in mutant.tasksets.values() for t in ts}
    for section in mutant.critical_sections:
        user = by_name.get(section.task)
        if user is not None:
            resource = section.resource
            mutant.resources[resource] = max(mutant.resources[resource],
                                            user.priority)
    return mutant


def mutate_period_repick(rng: random.Random,
                         system: GeneratedSystem
                         ) -> Optional[GeneratedSystem]:
    """Re-draw a background task's period from the generator pool."""
    pick = _pick_fp_task(rng, system,
                         _chain_task_names(system) | _cs_tasks(system))
    if pick is None:
        return None
    mutant = copy.deepcopy(system)
    ecu, index = pick
    task = mutant.tasksets[ecu][index]
    period = rng.choice(PERIOD_POOL)
    mutant.tasksets[ecu][index] = _retask(
        task, period=period, wcet=min(task.wcet, period))
    return mutant


def mutate_can_id_swap(rng: random.Random,
                       system: GeneratedSystem
                       ) -> Optional[GeneratedSystem]:
    """Swap the identifiers (arbitration priority) of two background
    frames."""
    if system.can is None:
        return None
    chain_pdu = system.chain.pdu_name if system.chain else None
    indices = [i for i, s in enumerate(system.can.frame_specs)
               if s.name != chain_pdu]
    if len(indices) < 2:
        return None
    mutant = copy.deepcopy(system)
    i, j = rng.sample(indices, 2)
    specs = list(mutant.can.frame_specs)
    specs[i].can_id, specs[j].can_id = specs[j].can_id, specs[i].can_id
    mutant.can = replace(mutant.can, frame_specs=tuple(specs))
    return mutant


def mutate_can_period(rng: random.Random,
                      system: GeneratedSystem
                      ) -> Optional[GeneratedSystem]:
    """Re-draw one background frame's period (spec and packed traffic
    together — the analysed and the simulated period never diverge)."""
    if system.can is None:
        return None
    chain_pdu = system.chain.pdu_name if system.chain else None
    indices = [i for i, s in enumerate(system.can.frame_specs)
               if s.name != chain_pdu]
    if not indices:
        return None
    mutant = copy.deepcopy(system)
    index = indices[rng.randrange(len(indices))]
    specs = list(mutant.can.frame_specs)
    period = rng.choice(SIGNAL_PERIOD_POOL)
    specs[index].period = period
    specs[index].deadline = period
    name = specs[index].name
    frames = tuple(replace(f, period=period) if f.ipdu.name == name else f
                   for f in mutant.can.frames)
    mutant.can = replace(mutant.can, frame_specs=tuple(specs),
                         frames=frames)
    return mutant


def mutate_can_repack(rng: random.Random,
                      system: GeneratedSystem
                      ) -> Optional[GeneratedSystem]:
    """Shrink a background frame's DLC to exactly its payload (repack:
    the bus stops carrying padding bytes, shortening every transmission
    behind it)."""
    if system.can is None:
        return None
    chain_pdu = system.chain.pdu_name if system.chain else None
    sizes = {f.ipdu.name: f.ipdu.size_bytes for f in system.can.frames}
    indices = [i for i, s in enumerate(system.can.frame_specs)
               if s.name != chain_pdu and s.name in sizes
               and sizes[s.name] < s.dlc]
    if not indices:
        return None
    mutant = copy.deepcopy(system)
    index = indices[rng.randrange(len(indices))]
    specs = list(mutant.can.frame_specs)
    specs[index].dlc = sizes[specs[index].name]
    mutant.can = replace(mutant.can, frame_specs=tuple(specs))
    return mutant


def mutate_flexray_slot_swap(rng: random.Random,
                             system: GeneratedSystem
                             ) -> Optional[GeneratedSystem]:
    """Exchange the slot numbers of two static writers (disjointness is
    preserved by construction)."""
    if system.flexray is None or len(system.flexray.static_writers) < 2:
        return None
    mutant = copy.deepcopy(system)
    writers = list(mutant.flexray.static_writers)
    i, j = rng.sample(range(len(writers)), 2)
    a, b = writers[i].assignment, writers[j].assignment
    writers[i] = replace(writers[i], assignment=StaticSlotAssignment(
        b.slot, a.node, a.frame_name, a.base_cycle, a.repetition))
    writers[j] = replace(writers[j], assignment=StaticSlotAssignment(
        a.slot, b.node, b.frame_name, b.base_cycle, b.repetition))
    mutant.flexray = replace(mutant.flexray,
                             static_writers=tuple(writers))
    return mutant


def mutate_flexray_cycle_mux(rng: random.Random,
                             system: GeneratedSystem
                             ) -> Optional[GeneratedSystem]:
    """Re-draw one static writer's cycle multiplexing (repetition and
    base cycle), re-phasing its traffic to match."""
    if system.flexray is None or not system.flexray.static_writers:
        return None
    mutant = copy.deepcopy(system)
    writers = list(mutant.flexray.static_writers)
    index = rng.randrange(len(writers))
    writer = writers[index]
    repetition = rng.choice((1, 2, 4))
    base_cycle = rng.randrange(repetition)
    period = repetition * mutant.flexray.config.cycle_length
    assignment = StaticSlotAssignment(
        writer.assignment.slot, writer.assignment.node,
        writer.assignment.frame_name, base_cycle, repetition)
    writers[index] = replace(writer, assignment=assignment, period=period,
                             offset=rng.randrange(period))
    mutant.flexray = replace(mutant.flexray,
                             static_writers=tuple(writers))
    return mutant


def mutate_flexray_dynamic(rng: random.Random,
                           system: GeneratedSystem
                           ) -> Optional[GeneratedSystem]:
    """Resize and re-phase one dynamic-segment frame."""
    if system.flexray is None or not system.flexray.dynamic_writers:
        return None
    mutant = copy.deepcopy(system)
    writers = list(mutant.flexray.dynamic_writers)
    index = rng.randrange(len(writers))
    writer = writers[index]
    spec = copy.deepcopy(writer.spec)
    spec.size_bytes = rng.randint(1, 8)
    writers[index] = replace(writer, spec=spec,
                             offset=rng.randrange(writer.period))
    mutant.flexray = replace(mutant.flexray,
                             dynamic_writers=tuple(writers))
    return mutant


def mutate_tdma_inflate(rng: random.Random,
                        system: GeneratedSystem
                        ) -> Optional[GeneratedSystem]:
    """Inflate a TDMA task's WCET past the generator's window/3 margin —
    the edge where partition supply stops covering demand."""
    if system.tdma is None or not system.tdma.tasks:
        return None
    mutant = copy.deepcopy(system)
    tasks = list(mutant.tdma.tasks)
    index = rng.randrange(len(tasks))
    task = tasks[index]
    wcet = _scale_clamped(task.wcet, rng.choice(_TDMA_SCALE), task.period)
    tasks[index] = _retask(task, wcet=wcet)
    mutant.tdma = replace(mutant.tdma, tasks=tuple(tasks))
    return mutant


def mutate_tdma_overload(rng: random.Random,
                         system: GeneratedSystem
                         ) -> Optional[GeneratedSystem]:
    """Push one partition's highest-priority task toward overload:
    inflate its WCET *and* deepen its activation queue in one step.
    Response-time pressure only registers on the hp task (it is the
    only one the supply bound covers), and backlog only accumulates
    when re-activations queue instead of being shed — separately the
    two nudges are often behaviourally invisible, together they walk
    straight along the supply/demand edge."""
    if system.tdma is None or not system.tdma.tasks:
        return None
    mutant = copy.deepcopy(system)
    partitions = sorted({t.partition for t in mutant.tdma.tasks})
    partition = partitions[rng.randrange(len(partitions))]
    hp = mutant.tdma.hp_task(partition)
    wcet = _scale_clamped(hp.wcet, rng.choice(_TDMA_SCALE), hp.period)
    depth = rng.choice((2, 3, 4))
    tasks = tuple(
        _retask(t, wcet=wcet, max_activations=depth)
        if t.name == hp.name else t
        for t in mutant.tdma.tasks)
    mutant.tdma = replace(mutant.tdma, tasks=tasks)
    return mutant


def mutate_tdma_queue(rng: random.Random,
                      system: GeneratedSystem
                      ) -> Optional[GeneratedSystem]:
    """Raise a TDMA task's activation queue depth.  With a single
    pending activation an overloaded partition silently sheds work (the
    kernel drops re-activations) and responses plateau; queued
    activations let the backlog *accumulate* across major frames — the
    regime where the single-demand supply bound goes unsound."""
    if system.tdma is None or not system.tdma.tasks:
        return None
    mutant = copy.deepcopy(system)
    tasks = list(mutant.tdma.tasks)
    index = rng.randrange(len(tasks))
    task = tasks[index]
    tasks[index] = _retask(task, max_activations=rng.choice((2, 3, 4)))
    mutant.tdma = replace(mutant.tdma, tasks=tuple(tasks))
    return mutant


def mutate_tdma_period(rng: random.Random,
                       system: GeneratedSystem
                       ) -> Optional[GeneratedSystem]:
    """Re-draw a TDMA task's period, down to one major frame — below
    the generator's single-demand margin."""
    if system.tdma is None or not system.tdma.tasks:
        return None
    mutant = copy.deepcopy(system)
    tasks = list(mutant.tdma.tasks)
    index = rng.randrange(len(tasks))
    task = tasks[index]
    pool = TDMA_PERIOD_POOL + (mutant.tdma.major_frame,
                               2 * mutant.tdma.major_frame)
    period = rng.choice(pool)
    tasks[index] = _retask(task, period=period,
                           wcet=min(task.wcet, period))
    mutant.tdma = replace(mutant.tdma, tasks=tuple(tasks))
    return mutant


def mutate_tdma_major_frame(rng: random.Random,
                            system: GeneratedSystem
                            ) -> Optional[GeneratedSystem]:
    """Re-draw the TDMA major frame — every partition window stretches
    or shrinks with it."""
    if system.tdma is None:
        return None
    choices = [f for f in _MAJOR_FRAMES if f != system.tdma.major_frame]
    if not choices:
        return None
    mutant = copy.deepcopy(system)
    frame = rng.choice(choices)
    tasks = tuple(_retask(t, wcet=min(t.wcet, t.period))
                  for t in mutant.tdma.tasks)
    mutant.tdma = replace(mutant.tdma, major_frame=frame, tasks=tasks)
    return mutant


def mutate_chain_rewire(rng: random.Random,
                        system: GeneratedSystem
                        ) -> Optional[GeneratedSystem]:
    """Re-draw the cause-effect chain's period (producer task, consumer
    task, frame spec and E2E timeout all follow)."""
    if system.chain is None or system.can is None:
        return None
    mutant = copy.deepcopy(system)
    chain = mutant.chain
    period = rng.choice([p for p in _CHAIN_PERIODS if p != chain.period]
                        or list(_CHAIN_PERIODS))
    mutant.chain = ChainPlan(
        chain.producer, chain.producer_ecu, chain.consumer,
        chain.consumer_ecu, chain.signal_name, chain.signal_bits,
        chain.pdu_name, period, chain.data_id, chain.counter_bits,
        chain.max_delta_counter, 3 * period)
    for ecu, names in ((chain.producer_ecu, {chain.producer}),
                       (chain.consumer_ecu, {chain.consumer})):
        tasks = mutant.tasksets[ecu]
        for index, task in enumerate(tasks):
            if task.name in names:
                jitter = period if task.name == chain.consumer else 0
                tasks[index] = _retask(task, period=period, jitter=jitter)
    specs = list(mutant.can.frame_specs)
    for spec in specs:
        if spec.name == chain.pdu_name:
            spec.period = period
            spec.deadline = period
    mutant.can = replace(mutant.can, frame_specs=tuple(specs))
    return mutant


def mutate_drop_task(rng: random.Random,
                     system: GeneratedSystem) -> Optional[GeneratedSystem]:
    """Drop one background fixed-priority task (and any critical
    sections it owned; its resource goes too when orphaned)."""
    pick = _pick_fp_task(rng, system,
                         _chain_task_names(system) | _cs_tasks(system))
    if pick is None:
        return None
    ecu, index = pick
    if len(system.tasksets[ecu]) <= 1:
        return None
    mutant = copy.deepcopy(system)
    del mutant.tasksets[ecu][index]
    return mutant


def mutate_drop_frame(rng: random.Random,
                      system: GeneratedSystem
                      ) -> Optional[GeneratedSystem]:
    """Drop one background CAN frame (spec and packed traffic)."""
    if system.can is None:
        return None
    chain_pdu = system.chain.pdu_name if system.chain else None
    names = [s.name for s in system.can.frame_specs if s.name != chain_pdu]
    if not names:
        return None
    mutant = copy.deepcopy(system)
    name = names[rng.randrange(len(names))]
    mutant.can = replace(
        mutant.can,
        frames=tuple(f for f in mutant.can.frames
                     if f.ipdu.name != name),
        frame_specs=tuple(s for s in mutant.can.frame_specs
                          if s.name != name))
    return mutant


#: At most this many fault scenarios ride on one mutant — each costs a
#: baseline + faulted simulation pair at verification time.
_MAX_SCENARIOS = 2


def mutate_fault_chain(rng: random.Random,
                       system: GeneratedSystem
                       ) -> Optional[GeneratedSystem]:
    """Attach one chain-targeted fault scenario (E2E corruption, loss
    or delay, a CAN error burst, producer bus-off, or a transient
    producer-ECU reset) with a window wide enough that detection is
    guaranteed by construction (see
    :func:`repro.verify.resilience.min_duration`)."""
    if system.chain is None or system.can is None \
            or len(system.faults) >= _MAX_SCENARIOS:
        return None
    from repro.verify.resilience import CHAIN_KINDS, min_duration
    kind = CHAIN_KINDS[rng.randrange(len(CHAIN_KINDS))]
    period = system.chain.period
    mutant = copy.deepcopy(system)
    onset = period * rng.randint(2, 6)
    duration = min_duration(system, kind) + period * rng.randint(1, 3)
    mutant.faults.append(FaultScenario(kind, onset, duration))
    return mutant


def mutate_fault_babble(rng: random.Random,
                        system: GeneratedSystem
                        ) -> Optional[GeneratedSystem]:
    """Attach a babbling-idiot scenario: a rogue CAN node floods the
    bus behind a windowless guardian (the containment claim under
    test is that nothing gets through)."""
    if system.can is None or len(system.faults) >= _MAX_SCENARIOS:
        return None
    from repro.verify.resilience import min_duration
    mutant = copy.deepcopy(system)
    floor = min_duration(system, "tdma-babble")
    onset = floor * rng.randint(1, 4)
    duration = floor * rng.randint(1, 4)
    mutant.faults.append(FaultScenario("tdma-babble", onset, duration))
    return mutant


def mutate_fault_flexray(rng: random.Random,
                         system: GeneratedSystem
                         ) -> Optional[GeneratedSystem]:
    """Attach a FlexRay slot-corruption scenario on one static writer."""
    if system.flexray is None or not system.flexray.static_writers \
            or len(system.faults) >= _MAX_SCENARIOS:
        return None
    from repro.verify.resilience import min_duration
    writers = sorted(system.flexray.static_writers,
                     key=lambda w: w.assignment.slot)
    writer = writers[rng.randrange(len(writers))]
    target = writer.assignment.frame_name
    mutant = copy.deepcopy(system)
    onset = writer.period * rng.randint(2, 6)
    duration = (min_duration(system, "flexray-slot-loss", target)
                + writer.period * rng.randint(0, 2))
    mutant.faults.append(
        FaultScenario("flexray-slot-loss", onset, duration, target))
    return mutant


def mutate_fault_drop(rng: random.Random,
                      system: GeneratedSystem
                      ) -> Optional[GeneratedSystem]:
    """Remove one attached fault scenario."""
    if not system.faults:
        return None
    mutant = copy.deepcopy(system)
    del mutant.faults[rng.randrange(len(mutant.faults))]
    return mutant


#: The mutation catalogue, in the stable order lineage names refer to.
MUTATORS: tuple[tuple[str, Mutator], ...] = (
    ("util-up", mutate_util_up),
    ("util-down", mutate_util_down),
    ("jitter", mutate_jitter),
    ("priority-swap", mutate_priority_swap),
    ("period-repick", mutate_period_repick),
    ("can-id-swap", mutate_can_id_swap),
    ("can-period", mutate_can_period),
    ("can-repack", mutate_can_repack),
    ("fr-slot-swap", mutate_flexray_slot_swap),
    ("fr-cycle-mux", mutate_flexray_cycle_mux),
    ("fr-dynamic", mutate_flexray_dynamic),
    ("tdma-inflate", mutate_tdma_inflate),
    ("tdma-overload", mutate_tdma_overload),
    ("tdma-queue", mutate_tdma_queue),
    ("tdma-period", mutate_tdma_period),
    ("tdma-major-frame", mutate_tdma_major_frame),
    ("chain-rewire", mutate_chain_rewire),
    ("drop-task", mutate_drop_task),
    ("drop-frame", mutate_drop_frame),
    ("fault-chain", mutate_fault_chain),
    ("fault-babble", mutate_fault_babble),
    ("fault-fr-slot", mutate_fault_flexray),
    ("fault-drop", mutate_fault_drop),
)


def mutate(system: GeneratedSystem,
           rng: random.Random) -> tuple[GeneratedSystem, str]:
    """Apply one randomly chosen applicable mutator.

    Mutators are tried in a seed-determined order until one applies and
    yields a well-formed mutant; the result is ``(mutant, mutator
    name)``.  Raises :class:`AssertionError` if no mutator applies —
    impossible for any system the generator or shrinker emits (a system
    with at least one task always admits a WCET nudge).
    """
    order = rng.sample(range(len(MUTATORS)), len(MUTATORS))
    for index in order:
        name, mutator = MUTATORS[index]
        mutant = mutator(rng, system)
        if mutant is None:
            continue
        _prune_faults(mutant)
        problems = validate_system(mutant)
        assert not problems, (
            f"mutator {name} broke well-formedness: {problems}")
        return mutant, name
    raise AssertionError("no mutator applies to this system")


def _prune_faults(system: GeneratedSystem) -> None:
    """Drop fault scenarios a structural mutation invalidated.

    A chain rewire changes the period every chain-kind window floor is
    derived from; dropping a frame or subsystem can remove a scenario's
    injection point.  Scenarios that no longer validate are silently
    removed — the mutant stays well-formed instead of the mutator
    asserting."""
    if not system.faults:
        return
    from repro.verify.resilience import scenario_problems
    system.faults = [f for f in system.faults
                     if not scenario_problems(system, f)]
