"""Seeded random generation of valid distributed system configurations.

The differential oracle (:mod:`repro.verify.oracle`) needs a steady
supply of *valid but unchoreographed* systems: task sets with
priorities/periods/WCETs, CAN frame layouts packed from random signals,
an E2E-protected cause-effect chain, FlexRay static/dynamic traffic and
a TDMA-partitioned ECU.  Everything is derived from one
``random.Random(seed)`` stream, so the same ``(seed, size)`` pair always
yields byte-identical configurations — the determinism the acceptance
gate relies on.

The generator *constructs descriptions* (specs and plans) out of the
same building blocks the rest of the library uses
(:class:`~repro.osek.task.TaskSpec`, :func:`~repro.com.packing.pack_signals`,
:class:`~repro.network.can.CanFrameSpec`, ...); the oracle turns a
:class:`GeneratedSystem` into a live simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.com.e2e import E2eProfile
from repro.com.packing import PackableSignal, PackedFrame, pack_signals
from repro.com.signal import SignalSpec
from repro.errors import ConfigurationError
from repro.network.can import CanFrameSpec, frame_time
from repro.network.flexray import (DynamicFrameSpec, FlexRayConfig,
                                   StaticSlotAssignment)
from repro.osek.task import TaskSpec
from repro.osek.tdma import TdmaScheduler, build_even_schedule
from repro.units import ms, us

#: Task periods drawn for fixed-priority ECUs (harmonic-ish automotive mix).
PERIOD_POOL = (ms(5), ms(10), ms(20), ms(25), ms(50), ms(100))
#: Signal periods (>= 10 ms keeps generated bus load analysable).
SIGNAL_PERIOD_POOL = (ms(10), ms(20), ms(25), ms(50), ms(100))
#: Task periods on the TDMA-partitioned ECU (must exceed one major frame
#: plus one window so the single-demand supply bound applies).
TDMA_PERIOD_POOL = (ms(20), ms(50), ms(100))

CAN_BITRATE_BPS = 500_000
#: Background frame identifiers start here (period-monotonic order).
BASE_CAN_ID = 0x100
#: The E2E-protected chain frame outranks all background frames.
CHAIN_CAN_ID = 0xF0
#: Generated priorities start here; larger number = more important.
PRIORITY_BASE = 10
#: Generated CAN sets are trimmed to stay analysable.
MAX_BUS_UTILIZATION = 0.80

TDMA_MAJOR_FRAME = ms(10)


@dataclass(frozen=True)
class SizeSpec:
    """Knobs of one generation size class."""

    name: str
    n_ecus: int
    tasks_per_ecu: tuple[int, int]
    utilization: float
    n_signals: tuple[int, int]
    n_static_frames: tuple[int, int]
    n_dynamic_frames: int
    tdma_partitions: int
    tasks_per_partition: tuple[int, int]


SIZES: dict[str, SizeSpec] = {
    "small": SizeSpec("small", 2, (3, 4), 0.45, (10, 14), (3, 4), 2,
                      2, (1, 2)),
    "medium": SizeSpec("medium", 3, (4, 6), 0.55, (18, 26), (5, 6), 3,
                       3, (2, 3)),
    "large": SizeSpec("large", 4, (6, 8), 0.60, (30, 40), (8, 10), 3,
                      4, (2, 3)),
}


@dataclass(frozen=True)
class CriticalSection:
    """One task's ICPP critical section: pre/cs/post sum to its WCET."""

    task: str
    resource: str
    pre: int
    duration: int
    post: int


@dataclass(frozen=True)
class ChainPlan:
    """The generated E2E-protected cause-effect chain."""

    producer: str
    producer_ecu: str
    consumer: str
    consumer_ecu: str
    signal_name: str
    signal_bits: int
    pdu_name: str
    period: int
    data_id: int
    counter_bits: int
    max_delta_counter: int
    timeout: int

    def profile(self) -> E2eProfile:
        """Build the (stateless) E2E profile for either link end."""
        return E2eProfile(self.data_id, self.counter_bits,
                          self.max_delta_counter, self.timeout)


@dataclass(frozen=True)
class CanPlan:
    """Background CAN traffic: packed frames plus their frame specs."""

    bitrate_bps: int
    frames: tuple[PackedFrame, ...]
    frame_specs: tuple[CanFrameSpec, ...]

    def spec_of(self, pdu_name: str) -> CanFrameSpec:
        """Frame spec by PDU name."""
        for spec in self.frame_specs:
            if spec.name == pdu_name:
                return spec
        raise ConfigurationError(f"no CAN frame named {pdu_name!r}")


@dataclass(frozen=True)
class StaticWriter:
    """A periodic writer of one FlexRay static slot."""

    assignment: StaticSlotAssignment
    period: int
    offset: int


@dataclass(frozen=True)
class DynamicWriter:
    """A periodic enqueuer of one FlexRay dynamic frame."""

    spec: DynamicFrameSpec
    node: str
    period: int
    offset: int


@dataclass(frozen=True)
class FlexRayPlan:
    """FlexRay cluster configuration and traffic."""

    config: FlexRayConfig
    nodes: tuple[str, ...]
    static_writers: tuple[StaticWriter, ...]
    dynamic_writers: tuple[DynamicWriter, ...]


@dataclass(frozen=True)
class TdmaPlan:
    """The TDMA-partitioned ECU."""

    ecu: str
    partitions: tuple[str, ...]
    major_frame: int
    tasks: tuple[TaskSpec, ...]

    def scheduler(self) -> TdmaScheduler:
        """Fresh scheduler instance (even windows over the partitions)."""
        return build_even_schedule(list(self.partitions), self.major_frame)

    def hp_task(self, partition: str) -> TaskSpec:
        """Highest-priority task of a partition (the one the single-
        demand supply bound is valid for)."""
        members = [t for t in self.tasks if t.partition == partition]
        return max(members, key=lambda t: t.priority)


#: Fault-scenario kinds the resilience layer can inject
#: (see :mod:`repro.verify.resilience`).
SCENARIO_KINDS = ("can-error-burst", "can-bus-off", "flexray-slot-loss",
                  "tdma-babble", "ecu-reset", "e2e-corruption", "e2e-loss",
                  "e2e-delay")


@dataclass(frozen=True)
class FaultScenario:
    """One injected fault hypothesis riding along with a system.

    ``kind`` is one of :data:`SCENARIO_KINDS`; ``target`` names the
    affected element where the kind needs one (the static-slot frame
    for ``flexray-slot-loss``), and is ``""`` for kinds whose target is
    implied (the E2E chain, its producer ECU, or the CAN bus).  The
    fault is active over ``[start, start + duration)`` simulation ns.
    """

    kind: str
    start: int
    duration: int
    target: str = ""

    @property
    def end(self) -> int:
        return self.start + self.duration

    def label(self) -> str:
        """Stable display/subject label for verdicts and telemetry."""
        suffix = f":{self.target}" if self.target else ""
        return f"{self.kind}{suffix}@{self.start}"


@dataclass
class GeneratedSystem:
    """One complete generated configuration."""

    name: str
    seed: int
    size: str
    tasksets: dict[str, list[TaskSpec]] = field(default_factory=dict)
    resources: dict[str, int] = field(default_factory=dict)
    critical_sections: list[CriticalSection] = field(default_factory=list)
    chain: Optional[ChainPlan] = None
    can: Optional[CanPlan] = None
    flexray: Optional[FlexRayPlan] = None
    tdma: Optional[TdmaPlan] = None
    faults: list[FaultScenario] = field(default_factory=list)

    @property
    def fp_ecus(self) -> list[str]:
        """Fixed-priority ECU names, in deterministic order."""
        return sorted(self.tasksets)

    def all_task_specs(self) -> list[TaskSpec]:
        """Every task spec (fixed-priority ECUs + TDMA ECU).

        Tolerates a missing TDMA plan: shrunk counterexamples (see
        :mod:`repro.verify.shrink`) keep only the subsystems their
        failure needs.
        """
        specs = [t for ecu in self.fp_ecus for t in self.tasksets[ecu]]
        if self.tdma is not None:
            specs.extend(self.tdma.tasks)
        return specs


def _uunifast(rng: random.Random, n: int, total: float) -> list[float]:
    """UUniFast: split ``total`` utilization over ``n`` tasks uniformly."""
    utils = []
    remaining = total
    for i in range(1, n):
        nxt = remaining * rng.random() ** (1.0 / (n - i))
        utils.append(remaining - nxt)
        remaining = nxt
    utils.append(remaining)
    return utils


def _assign_priorities(rows: list[tuple[str, int, int]],
                       base: int = PRIORITY_BASE) -> list[TaskSpec]:
    """Rate-monotonic unique priorities: shorter period = higher.

    ``rows`` are ``(name, wcet, period)``; ties break on name so the
    assignment is deterministic.
    """
    order = sorted(rows, key=lambda r: (r[2], r[0]))
    priority_of = {name: base + len(order) - rank
                   for rank, (name, __, __) in enumerate(order)}
    return [TaskSpec(name, wcet, period=period,
                     priority=priority_of[name])
            for name, wcet, period in rows]


def _generate_taskset(rng: random.Random, ecu: str,
                      spec: SizeSpec) -> list[tuple[str, int, int]]:
    """Random (name, wcet, period) rows for one fixed-priority ECU."""
    n = rng.randint(*spec.tasks_per_ecu)
    rows = []
    for i, u in enumerate(_uunifast(rng, n, spec.utilization)):
        period = rng.choice(PERIOD_POOL)
        wcet = min(max(us(30), int(u * period)), period // 2)
        rows.append((f"{ecu}.T{i}", wcet, period))
    return rows


def _generate_can(rng: random.Random, spec: SizeSpec, ecus: list[str],
                  chain: ChainPlan) -> CanPlan:
    """Random signals, packed first-fit-decreasing into periodic frames.

    Identifiers are assigned period-monotonically starting at
    ``BASE_CAN_ID``; the frame set is trimmed (longest periods first
    stay) until worst-case bus utilization is analysable.
    """
    n = rng.randint(*spec.n_signals)
    signals = [PackableSignal(SignalSpec(f"sig{i}", rng.randint(1, 16)),
                              rng.choice(SIGNAL_PERIOD_POOL),
                              rng.choice(ecus))
               for i in range(n)]
    packed = pack_signals(signals, frame_bytes=8)
    packed.sort(key=lambda f: (f.period, f.ipdu.name))
    chain_spec = CanFrameSpec(chain.pdu_name, CHAIN_CAN_ID, dlc=8,
                              period=chain.period)
    while packed:
        specs = [CanFrameSpec(f.ipdu.name, BASE_CAN_ID + i, dlc=8,
                              period=f.period)
                 for i, f in enumerate(packed)]
        util = sum(frame_time(s.dlc, CAN_BITRATE_BPS) / s.period
                   for s in specs + [chain_spec])
        if util <= MAX_BUS_UTILIZATION:
            break
        packed.pop()  # shed the highest-id (slowest-added) frame
    else:
        specs = []
    return CanPlan(CAN_BITRATE_BPS, tuple(packed),
                   tuple([chain_spec] + specs))


def _generate_flexray(rng: random.Random, spec: SizeSpec) -> FlexRayPlan:
    """A FlexRay cluster: static slots with cycle multiplexing plus a
    handful of dynamic-segment frames (all guaranteed to fit one
    dynamic segment, so the conservative latency bound applies)."""
    n_static = rng.randint(*spec.n_static_frames)
    config = FlexRayConfig(slot_length=us(100), n_static_slots=n_static + 1,
                           minislot_length=us(10), n_minislots=24,
                           nit_length=us(50), bitrate_bps=10_000_000)
    nodes = ("FR0", "FR1")
    cycle = config.cycle_length
    static_writers = []
    for i in range(n_static):
        repetition = rng.choice((1, 2, 4))
        base_cycle = rng.randrange(repetition)
        assignment = StaticSlotAssignment(i + 1, nodes[i % 2], f"SF{i}",
                                          base_cycle, repetition)
        period = repetition * cycle
        static_writers.append(StaticWriter(assignment, period,
                                           rng.randrange(period)))
    dynamic_writers = []
    for i in range(spec.n_dynamic_frames):
        dyn = DynamicFrameSpec(f"DF{i}", frame_id=i + 1,
                               size_bytes=rng.randint(2, 8))
        period = 4 * cycle
        dynamic_writers.append(DynamicWriter(dyn, nodes[i % 2], period,
                                             rng.randrange(period)))
    return FlexRayPlan(config, nodes, tuple(static_writers),
                       tuple(dynamic_writers))


def _generate_tdma(rng: random.Random, spec: SizeSpec) -> TdmaPlan:
    """A TDMA-partitioned ECU with an even window schedule.

    WCETs stay below a third of one window and periods exceed one major
    frame plus one window, so the highest-priority task of each
    partition is covered by the single-demand supply bound.
    """
    ecu = "TDMA0"
    partitions = tuple(f"P{i}" for i in range(spec.tdma_partitions))
    window = TDMA_MAJOR_FRAME // spec.tdma_partitions
    rows = []
    owner = {}
    for partition in partitions:
        for i in range(rng.randint(*spec.tasks_per_partition)):
            name = f"{ecu}.{partition}.T{i}"
            wcet = rng.randint(us(100), max(us(100) + 1, window // 3))
            rows.append((name, wcet, rng.choice(TDMA_PERIOD_POOL)))
            owner[name] = partition
    specs = _assign_priorities(rows)
    tasks = tuple(TaskSpec(t.name, t.wcet, period=t.period,
                           priority=t.priority, partition=owner[t.name])
                  for t in specs)
    return TdmaPlan(ecu, partitions, TDMA_MAJOR_FRAME, tasks)


def generate(seed: int, size: str = "small") -> GeneratedSystem:
    """Generate one valid random system for ``(seed, size)``."""
    spec = SIZES.get(size)
    if spec is None:
        raise ConfigurationError(
            f"unknown size {size!r}; pick one of {sorted(SIZES)}")
    rng = random.Random(seed)
    system = GeneratedSystem(f"sys-{size}-{seed}", seed, size)
    ecus = [f"E{i}" for i in range(spec.n_ecus)]

    # -- cause-effect chain over CAN (producer on E0, consumer on E1) --
    chain_period = rng.choice((ms(10), ms(20)))
    chain = ChainPlan(
        producer="E0.prod", producer_ecu="E0",
        consumer="E1.cons", consumer_ecu="E1",
        signal_name="chain.seq", signal_bits=16,
        pdu_name="CHAIN", period=chain_period,
        data_id=(seed * 7919 + 0x1234) & 0xFFFF,
        counter_bits=4, max_delta_counter=1,
        timeout=3 * chain_period)
    system.chain = chain

    # -- fixed-priority ECUs -------------------------------------------
    for ecu in ecus:
        rows = _generate_taskset(rng, ecu, spec)
        if ecu == chain.producer_ecu:
            rows.append((chain.producer, us(200), chain_period))
        system.tasksets[ecu] = _assign_priorities(rows)

    # The consumer is sporadic (activated by chain-frame reception) but
    # analysed as periodic at the chain period with release jitter up to
    # one period (the worst delivery delay of a schedulable frame).  Top
    # priority on its ECU keeps its own busy window trivial.
    consumer_ecu_tasks = system.tasksets[chain.consumer_ecu]
    top = max(t.priority for t in consumer_ecu_tasks) + 1
    consumer_ecu_tasks.append(
        TaskSpec(chain.consumer, us(200), period=chain_period,
                 priority=top, jitter=chain_period, max_activations=3))

    # -- one ICPP resource shared by two tasks on E0 -------------------
    candidates = sorted((t for t in system.tasksets["E0"]
                         if t.name != chain.producer and t.wcet >= 3),
                        key=lambda t: t.priority)[:2]
    if len(candidates) == 2:
        resource = "R.E0"
        system.resources[resource] = max(t.priority for t in candidates)
        for task in candidates:
            duration = max(1, task.wcet // 4)
            pre = (task.wcet - duration) // 2
            system.critical_sections.append(CriticalSection(
                task.name, resource, pre, duration,
                task.wcet - duration - pre))

    system.can = _generate_can(rng, spec, ecus, chain)
    system.flexray = _generate_flexray(rng, spec)
    system.tdma = _generate_tdma(rng, spec)
    return system


def generate_many(seed: int, count: int,
                  size: str = "small") -> list[GeneratedSystem]:
    """Generate ``count`` systems, each seeded from ``(seed, index)``.

    Per-system seeds are spawn-derived by
    :func:`repro.exec.shard.derive_seed` — a pure function of the batch
    seed and the system's index, with no shared sequential stream — so
    system ``i`` is identical whether the batch is generated serially,
    in parallel chunks, in any order, or one system at a time
    (``generate_many(s, n)[:k] == generate_many(s, k)``).
    """
    from repro.exec.shard import derive_seed

    return [generate(derive_seed(seed, i), size) for i in range(count)]
