"""Differential oracle: analytic bounds versus simulated ground truth.

For each :class:`~repro.verify.generator.GeneratedSystem` the oracle

1. computes every analytic bound the library offers for it — task WCRTs
   (:mod:`repro.analysis.rta`), CAN frame latencies
   (:mod:`repro.analysis.can_rta`), FlexRay static/dynamic latencies
   (:mod:`repro.analysis.flexray_rta`), TDMA partition response bounds
   (:mod:`repro.analysis.tdma_bound`) and the end-to-end chain bound
   (:mod:`repro.analysis.e2e`);
2. builds and runs the *same* configuration on the simulation stack
   (OSEK kernels, CAN/FlexRay buses, COM with E2E protection);
3. asserts **soundness** — every observation must stay at or below its
   bound — and reports **tightness** (bound / observed max);
4. replays the trace through the invariant checkers of
   :mod:`repro.verify.invariants`.

Analyses that legitimately decline (the recurrence leaves its validity
region) are reported as *declined*, never silently skipped; a bound that
exists but is beaten by the simulation is a soundness violation — the
one thing this harness exists to catch.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
import statistics
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.analysis import can_rta, flexray_rta, rta, tdma_bound
from repro.analysis.e2e import Chain, SAMPLED, Stage
from repro.analysis.probes import ChainProbe
from repro.com.com import CanComAdapter, ComStack, PERIODIC
from repro.com.e2e import E2eReceiver, e2e_protected_pdu, protect_link
from repro.com.signal import SignalSpec
from repro.errors import AnalysisError
from repro.network.can import CanBus
from repro.network.flexray import FlexRayBus
from repro.osek.kernel import EcuKernel
from repro.osek.resource import OsekResource
from repro.osek.scheduler import FixedPriorityScheduler
from repro.osek.task import Acquire, Execute, Release
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.units import ms
from repro.verify.generator import (CriticalSection, GeneratedSystem,
                                    generate_many)
from repro.verify.invariants import (AliveCounterInvariant,
                                     E2eContainmentInvariant, Invariant,
                                     InvariantChecker,
                                     NoOverlappingExecution,
                                     PriorityCeilingInvariant,
                                     TdmaWindowInvariant, Violation)

#: Analysis layers in report order.
LAYERS = ("rta", "can", "flexray_static", "flexray_dynamic", "tdma", "e2e")


@dataclass
class Check:
    """One bound/observation pair."""

    layer: str
    subject: str
    bound: int
    observed: Optional[int]
    samples: int

    @property
    def sound(self) -> bool:
        """True when the observation respects the bound (vacuously true
        when nothing was observed)."""
        return self.observed is None or self.observed <= self.bound

    @property
    def tightness(self) -> Optional[float]:
        """bound / observed-max — how conservative the analysis is.

        ``None`` both when nothing was observed *and* when the maximum
        observation is zero (a same-instant delivery a shrunk or
        fuzzed degenerate system can produce): the ratio is undefined
        there, and returning ``None`` instead of dividing keeps
        infinities and ``ZeroDivisionError`` out of report digests.
        """
        if self.observed is None or self.observed == 0:
            return None
        return self.bound / self.observed

    def to_dict(self) -> dict:
        tightness = self.tightness
        return {"layer": self.layer, "subject": self.subject,
                "bound": self.bound, "observed": self.observed,
                "samples": self.samples, "sound": self.sound,
                "tightness": (None if tightness is None
                              else round(tightness, 4))}


@dataclass
class SystemVerdict:
    """Oracle result for one generated system."""

    name: str
    seed: int
    size: str
    checks: list[Check] = field(default_factory=list)
    declined: list[str] = field(default_factory=list)
    invariant_violations: list[Violation] = field(default_factory=list)
    records: int = 0
    #: DAQ sample rows when the measurement service rode along
    #: (``--daq``); excluded from :meth:`to_dict` so the verification
    #: digest is unchanged by sampling — the DAQ rows carry their own
    #: digest (:meth:`VerificationReport.measurement_digest`).
    daq_rows: list = field(default_factory=list)

    @property
    def soundness_violations(self) -> list[Check]:
        """Checks whose observation beats the analytic bound."""
        return [c for c in self.checks if not c.sound]

    def to_dict(self) -> dict:
        return {
            "name": self.name, "seed": self.seed, "size": self.size,
            "records": self.records,
            "declined": sorted(self.declined),
            "checks": [c.to_dict() for c in self.checks],
            "invariant_violations": [v.to_dict()
                                     for v in self.invariant_violations],
        }


@dataclass
class VerificationReport:
    """Aggregate over a batch of verified systems."""

    seed: int
    count: int
    size: str
    verdicts: list[SystemVerdict] = field(default_factory=list)

    @property
    def soundness_violations(self) -> int:
        return sum(len(v.soundness_violations) for v in self.verdicts)

    @property
    def invariant_violations(self) -> int:
        return sum(len(v.invariant_violations) for v in self.verdicts)

    @property
    def passed(self) -> bool:
        """Zero soundness violations and zero invariant violations."""
        return (self.soundness_violations == 0
                and self.invariant_violations == 0)

    def to_dict(self) -> dict:
        """Canonical form: verdicts are emitted in *sorted* order
        (by per-system seed, then name), not insertion order, so the
        digest and exit verdict are stable under any executor —
        serial, parallel, or resumed — regardless of completion order."""
        ordered = sorted(self.verdicts, key=lambda v: (v.seed, v.name))
        return {"seed": self.seed, "systems": self.count, "size": self.size,
                "verdicts": [v.to_dict() for v in ordered]}

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — two runs of the same
        (seed, count, size) must produce the identical digest."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    @property
    def daq_sample_count(self) -> int:
        return sum(len(v.daq_rows) for v in self.verdicts)

    def measurement_digest(self) -> str:
        """Canonical digest of the DAQ rows collected alongside
        verification (``--daq``), in the same sorted verdict order as
        :meth:`to_dict` — byte-identical across jobs/resume."""
        from repro.meas.service import samples_digest

        ordered = sorted(self.verdicts, key=lambda v: (v.seed, v.name))
        return samples_digest([[v.name, v.daq_rows] for v in ordered])

    def layer_summary(self) -> dict[str, dict]:
        """Per-layer aggregate: check/measurement/violation counts and
        the tightness distribution (min/median/max).

        Every layer that appears in any verdict's checks or declined
        entries is summarized — including layers outside :data:`LAYERS`
        and layers with zero checks or zero observations — so the
        totals always add up to the per-verdict counts and a
        zero-observation layer renders as ``None`` tightness rather
        than being dropped or dividing by zero.
        """
        summary = {}
        declined = [d.split(":", 1)[0] for v in self.verdicts
                    for d in v.declined]
        extra = sorted({c.layer for v in self.verdicts for c in v.checks
                        if c.layer not in LAYERS}
                       | {d for d in declined if d not in LAYERS})
        for layer in (*LAYERS, *extra):
            checks = [c for v in self.verdicts for c in v.checks
                      if c.layer == layer]
            ratios = sorted(c.tightness for c in checks
                            if c.tightness is not None)
            summary[layer] = {
                "checks": len(checks),
                "measured": sum(1 for c in checks if c.observed is not None),
                "declined": declined.count(layer),
                "violations": sum(1 for c in checks if not c.sound),
                "tightness_min": ratios[0] if ratios else None,
                "tightness_median": (statistics.median(ratios)
                                     if ratios else None),
                "tightness_max": ratios[-1] if ratios else None,
            }
        return summary


# ----------------------------------------------------------------------
# Analytic side
# ----------------------------------------------------------------------
# Each layer is solved by a dedicated pure function of exactly the
# sub-model that :func:`repro.perf.layer_keys` digests, returning a
# JSON-native ``{"rows": [[subject, bound-or-None], ...]}`` (None =
# the analysis declined for that subject).  That purity is what lets
# :func:`analyze_bounds` route every solve through the analysis memo
# cache when one is configured — and it is test-enforced:
# ``tests/test_perf_parity.py`` pins cached == uncached digests and
# ``tests/test_perf_invalidation.py`` pins the key/mutator matrix.

def _solve_rta(specs, cs_map) -> dict:
    """Per-ECU task WCRTs.  ``wcrt - jitter`` is the from-release
    bound, which is what the kernel's activation-to-completion
    measurement observes (release jitter of the sporadic consumer is
    realised by the bus, not re-applied by the kernel)."""
    result = rta.analyze(specs, cs_map)
    return {"rows": [
        [spec.name,
         None if result.wcrt[spec.name] < 0
         else result.wcrt[spec.name] - spec.jitter]
        for spec in specs]}


def _solve_can(frame_specs, bitrate_bps) -> dict:
    """CAN frame WCRTs in arbitration (can_id) order; negative WCRTs
    (analysis declined) pass through as None rows."""
    frames = sorted(frame_specs, key=lambda f: f.can_id)
    result = can_rta.analyze(frames, bitrate_bps)
    return {"rows": [
        [frame.name,
         None if result.wcrt[frame.name] < 0
         else result.wcrt[frame.name]]
        for frame in frames]}


def _solve_flexray_static(config, writers) -> dict:
    return {"rows": [
        [writer.assignment.frame_name,
         flexray_rta.static_latency_bound(config, writer.assignment)]
        for writer in writers]}


def _solve_flexray_dynamic(config, writers) -> dict:
    specs = [w.spec for w in writers]
    rows = []
    for writer in writers:
        competitors = [s for s in specs if s.name != writer.spec.name]
        try:
            bound = flexray_rta.dynamic_latency_bound(
                writer.spec, competitors, config)
        except AnalysisError:
            rows.append([writer.spec.name, None])
            continue
        rows.append([writer.spec.name, bound])
    return {"rows": rows}


def _solve_tdma(plan) -> dict:
    scheduler = plan.scheduler()
    rows = []
    for partition in plan.partitions:
        members = [t for t in plan.tasks if t.partition == partition]
        if not members:
            continue
        hp = plan.hp_task(partition)
        try:
            bound = tdma_bound.tdma_response_bound(
                scheduler, partition, hp.wcet, period=hp.period,
                max_activations=hp.max_activations)
        except AnalysisError:
            rows.append([hp.name, None])
            continue
        rows.append([hp.name, bound])
    return {"rows": rows}


def _solve_e2e(chain, producer, consumer, frame_wcrt) -> dict:
    """Chain bound from already-solved producer/consumer/bus numbers —
    pure in them, so its composite cache key hashes the upstream layer
    keys rather than re-deriving the inputs."""
    if producer is None or consumer is None or frame_wcrt < 0:
        return {"rows": [[chain.pdu_name, None]]}
    model = Chain(chain.pdu_name, [
        Stage("producer", producer),
        Stage("frame", frame_wcrt, SAMPLED, period=chain.period),
        Stage("consumer", consumer),
    ])
    return {"rows": [[chain.pdu_name, model.worst_case_latency()]]}


def analyze_bounds(system: GeneratedSystem
                   ) -> tuple[list[tuple[str, str, int]], list[str]]:
    """Every analytic bound for ``system`` as ``(layer, subject, bound)``
    rows, plus the ``layer:subject`` entries where analysis declined.

    Subsystems a shrunk or mutated system no longer carries (chain,
    CAN, FlexRay, TDMA) simply contribute no rows; the layers that are
    present are analysed exactly as for a full system.

    When an analysis memo cache is configured
    (:func:`repro.perf.configure`), memoization is two-level: the
    complete result is cached under the whole-system composite key
    (:func:`repro.perf.system_key`), so re-analysing an unchanged
    system costs one digest and one lookup; on a composite miss each
    layer's solve is routed through the memo under that layer's content
    key, so a mutant still reuses every untouched layer.  With no cache
    the solvers run directly.  All paths produce identical rows,
    declines and obs counters — the cache is invisible everywhere but
    in wall clock and ``perf.cache.*`` telemetry.
    """
    from repro.perf import get_memo, system_key

    memo = get_memo()
    if memo is None:
        return _solve_layers(system, None)

    def solve_all() -> dict:
        bounds, declined = _solve_layers(system, memo)
        return {"bounds": [list(row) for row in bounds],
                "declined": declined}

    out = memo.solve("system", system_key(system), solve_all)
    return ([tuple(row) for row in out["bounds"]], list(out["declined"]))


def _solve_layers(system: GeneratedSystem, memo
                  ) -> tuple[list[tuple[str, str, int]], list[str]]:
    """One pass over every present layer, each solve routed through
    ``memo`` under its per-layer key (or run directly when None)."""
    from repro.perf import layer_keys

    keys = layer_keys(system) if memo is not None else None

    def solve(layer: str, solver) -> dict:
        if memo is None:
            return solver()
        return memo.solve(layer, keys[layer], solver)

    bounds: list[tuple[str, str, int]] = []
    declined: list[str] = []
    chain = system.chain

    task_bound: dict[str, int] = {}
    for ecu in system.fp_ecus:
        specs = system.tasksets[ecu]
        names = {t.name for t in specs}
        # Restricted to this ECU's tasks: blocking_time only ever reads
        # sections owned by tasks in the analysed set, and the restriction
        # makes the solve a pure function of the rta:<ecu> key slice.
        cs_map: dict[str, list[tuple[int, int]]] = {}
        for section in system.critical_sections:
            if section.task in names:
                cs_map.setdefault(section.task, []).append(
                    (system.resources[section.resource],
                     section.duration))
        out = solve(f"rta:{ecu}",
                    functools.partial(_solve_rta, specs, cs_map))
        for name, bound in out["rows"]:
            if bound is None:
                declined.append(f"rta:{name}")
                continue
            task_bound[name] = bound
            bounds.append(("rta", name, bound))

    can_wcrt: Optional[dict] = None
    if system.can is not None:
        out = solve("can", functools.partial(
            _solve_can, system.can.frame_specs, system.can.bitrate_bps))
        can_wcrt = {name: (-1 if bound is None else bound)
                    for name, bound in out["rows"]}
        for name, bound in out["rows"]:
            if bound is None:
                declined.append(f"can:{name}")
                continue
            bounds.append(("can", name, bound))

    if system.flexray is not None:
        config = system.flexray.config
        out = solve("flexray_static", functools.partial(
            _solve_flexray_static, config,
            system.flexray.static_writers))
        for name, bound in out["rows"]:
            bounds.append(("flexray_static", name, bound))
        out = solve("flexray_dynamic", functools.partial(
            _solve_flexray_dynamic, config,
            system.flexray.dynamic_writers))
        for name, bound in out["rows"]:
            if bound is None:
                declined.append(f"flexray_dynamic:{name}")
                continue
            bounds.append(("flexray_dynamic", name, bound))

    if system.tdma is not None:
        out = solve("tdma", functools.partial(_solve_tdma, system.tdma))
        for name, bound in out["rows"]:
            if bound is None:
                declined.append(f"tdma:{name}")
                continue
            bounds.append(("tdma", name, bound))

    if chain is not None and can_wcrt is not None:
        out = solve("e2e", functools.partial(
            _solve_e2e, chain,
            task_bound.get(chain.producer),
            task_bound.get(chain.consumer),
            can_wcrt.get(chain.pdu_name, -1)))
        for name, bound in out["rows"]:
            if bound is None:
                declined.append(f"e2e:{name}")
                continue
            bounds.append(("e2e", name, bound))
    return bounds, declined


# ----------------------------------------------------------------------
# Simulated side
# ----------------------------------------------------------------------
@dataclass
class BuiltSystem:
    """Live simulation handles for one generated system.

    Handles of subsystems the system does not carry (shrunk
    counterexamples) are ``None``; their layers simply observe
    nothing.
    """

    sim: Simulator
    trace: Trace
    kernels: dict[str, EcuKernel]
    can_bus: Optional[CanBus]
    flexray_bus: Optional[FlexRayBus]
    probe: Optional[ChainProbe]
    receiver: Optional[E2eReceiver]
    horizon: int
    stacks: dict[str, ComStack] = field(default_factory=dict)
    rx_stack: Optional[ComStack] = None


def _cs_body(section: CriticalSection, resource: OsekResource):
    """Body factory: pre / critical section under ICPP / post."""
    def body(job):
        if section.pre:
            yield Execute(section.pre)
        yield Acquire(resource)
        yield Execute(section.duration)
        yield Release(resource)
        if section.post:
            yield Execute(section.post)
    return body


def default_horizon(system: GeneratedSystem) -> int:
    """Four times the longest period anywhere in the system."""
    periods = [t.period for t in system.all_task_specs()]
    if system.can is not None:
        periods += [f.period for f in system.can.frame_specs]
    if system.flexray is not None:
        periods += [w.period for w in system.flexray.static_writers]
        periods += [w.period for w in system.flexray.dynamic_writers]
    # A completely empty system still needs a positive horizon.
    return 4 * max(periods) if periods else ms(100)


def build_system(system: GeneratedSystem) -> BuiltSystem:
    """Instantiate the generated configuration on the simulation stack.

    Missing subsystems (a shrunk counterexample's dropped chain, CAN,
    FlexRay or TDMA plan) are simply not built; everything present is
    wired exactly as for a full system.
    """
    sim = Simulator()
    trace = Trace()
    chain = system.chain

    # -- CAN bus + per-ECU COM stacks ----------------------------------
    can_bus = None
    stacks: dict[str, ComStack] = {}
    rx_stack = None
    if system.can is not None:
        can_bus = CanBus(sim, system.can.bitrate_bps, trace)
        for ecu in system.fp_ecus:
            controller = can_bus.attach(ecu)
            frame_map = {f.name: f for f in system.can.frame_specs}
            adapter = CanComAdapter(controller, frame_map)
            stacks[ecu] = ComStack(sim, adapter, ecu, trace)
        rx_controller = can_bus.attach("RX")
        rx_stack = ComStack(sim, CanComAdapter(rx_controller, {}), "RX",
                            trace)
        for frame in system.can.frames:
            stacks[frame.sender].add_tx_pdu(frame.ipdu, PERIODIC,
                                            frame.period)

    # -- E2E-protected chain over CAN ----------------------------------
    probe = None
    receiver = None
    tx_stack = None
    on_producer_complete = on_consumer_complete = None
    if chain is not None and system.can is not None:
        profile = chain.profile()

        def chain_pdu():
            return e2e_protected_pdu(
                chain.pdu_name, 8,
                [SignalSpec(chain.signal_name, chain.signal_bits)],
                profile)

        tx_stack = stacks[chain.producer_ecu]
        tx_stack.add_tx_pdu(chain_pdu(), PERIODIC, chain.period)
        rx_stack.add_rx_pdu(chain_pdu())
        receiver = protect_link(tx_stack, rx_stack, chain.pdu_name,
                                profile)
        probe = ChainProbe(chain.pdu_name)
        produced = itertools.count(1)

        def on_producer_complete(job):
            seq = next(produced) % 65536
            probe.stamp(seq, job.activation_time)
            tx_stack.write_signal(chain.signal_name, seq)

        def on_consumer_complete(job):
            probe.observe(rx_stack.read_signal(chain.signal_name),
                          job.completed_at)

    # -- fixed-priority ECU kernels ------------------------------------
    resources = {name: OsekResource(name, ceiling)
                 for name, ceiling in system.resources.items()}
    sections = {s.task: s for s in system.critical_sections}

    kernels: dict[str, EcuKernel] = {}
    consumer_task = None
    for ecu in system.fp_ecus:
        kernel = EcuKernel(sim, FixedPriorityScheduler(), trace, name=ecu)
        kernels[ecu] = kernel
        for spec in system.tasksets[ecu]:
            if chain is not None and spec.name == chain.consumer \
                    and on_consumer_complete is not None:
                consumer_task = kernel.add_task(
                    spec, on_complete=on_consumer_complete,
                    auto_start=False)
            elif chain is not None and spec.name == chain.producer \
                    and on_producer_complete is not None:
                kernel.add_task(spec, on_complete=on_producer_complete)
            elif spec.name in sections:
                section = sections[spec.name]
                kernel.add_task(spec, body=_cs_body(
                    section, resources[section.resource]))
            else:
                kernel.add_task(spec)

    if consumer_task is not None:
        consumer_kernel = kernels[chain.consumer_ecu]
        rx_stack.on_signal(
            chain.signal_name,
            lambda __: consumer_kernel.activate(consumer_task))

    # -- TDMA ECU ------------------------------------------------------
    if system.tdma is not None:
        tdma_kernel = EcuKernel(sim, system.tdma.scheduler(), trace,
                                name=system.tdma.ecu)
        kernels[system.tdma.ecu] = tdma_kernel
        for spec in system.tdma.tasks:
            tdma_kernel.add_task(spec)

    # -- FlexRay cluster -----------------------------------------------
    flexray_bus = None
    if system.flexray is not None:
        flexray_bus = FlexRayBus(sim, system.flexray.config, trace)
        controllers = {node: flexray_bus.attach(node)
                       for node in system.flexray.nodes}
        for writer in system.flexray.static_writers:
            flexray_bus.assign_slot(writer.assignment)
        flexray_bus.start()

        def start_static(writer):
            controller = controllers[writer.assignment.node]
            payloads = itertools.count(1)

            def fire():
                controller.send_static(writer.assignment.slot,
                                       next(payloads))
                sim.schedule(writer.period, fire)

            sim.schedule_at(writer.offset, fire)

        def start_dynamic(writer):
            controller = controllers[writer.node]
            payloads = itertools.count(1)

            def fire():
                controller.queue_dynamic(writer.spec, next(payloads))
                sim.schedule(writer.period, fire)

            sim.schedule_at(writer.offset, fire)

        for writer in system.flexray.static_writers:
            start_static(writer)
        for writer in system.flexray.dynamic_writers:
            start_dynamic(writer)

    return BuiltSystem(sim, trace, kernels, can_bus, flexray_bus, probe,
                       receiver, default_horizon(system), stacks, rx_stack)


# ----------------------------------------------------------------------
# Differential verification
# ----------------------------------------------------------------------
def make_invariants(system: GeneratedSystem) -> list[Invariant]:
    """The invariant set matching one generated system."""
    task_ecu = {t.name: ecu for ecu in system.fp_ecus
                for t in system.tasksets[ecu]}
    if system.tdma is not None:
        task_ecu.update({t.name: system.tdma.ecu
                         for t in system.tdma.tasks})
    priorities = {t.name: t.priority for t in system.all_task_specs()}
    invariants: list[Invariant] = [
        NoOverlappingExecution(task_ecu),
        PriorityCeilingInvariant(priorities, system.resources, task_ecu),
    ]
    if system.tdma is not None:
        scheduler = system.tdma.scheduler()
        windows = [(w.start, w.length, w.partition)
                   for w in scheduler.windows]
        partition_of = {t.name: t.partition for t in system.tdma.tasks}
        invariants.append(TdmaWindowInvariant(
            windows, system.tdma.major_frame, partition_of))
    chain = system.chain
    if chain is not None and system.can is not None:
        invariants.append(AliveCounterInvariant(
            chain.pdu_name, 1 << chain.counter_bits,
            chain.max_delta_counter))
        invariants.append(E2eContainmentInvariant())
    return invariants


def _observations(built: BuiltSystem, layer: str, subject: str) -> list[int]:
    """Simulated measurements matching one analytic bound."""
    if layer in ("rta", "tdma"):
        return built.trace.data_values("task.complete", "response", subject)
    if layer == "can":
        return built.can_bus.latencies(subject) if built.can_bus else []
    if layer in ("flexray_static", "flexray_dynamic"):
        return (built.flexray_bus.latencies(subject)
                if built.flexray_bus else [])
    if layer == "e2e":
        return list(built.probe.latencies) if built.probe else []
    raise AnalysisError(f"unknown layer {layer!r}")


def verify_system(system: GeneratedSystem,
                  horizon: Optional[int] = None,
                  daq_period: Optional[int] = None) -> SystemVerdict:
    """Run the full differential check for one generated system.

    ``daq_period`` (ns, optional) attaches the measurement service and
    runs the default DAQ list alongside the differential run; the
    samples land in ``verdict.daq_rows``.  Sampling only *reads* the
    live object graph and keeps its records out of the simulation
    trace, so checks, invariants and the verification digest are the
    same with or without it.
    """
    with obs.span("verify.system", category="verify", system=system.name,
                  seed=system.seed, size=system.size):
        bounds, declined = analyze_bounds(system)
        built = build_system(system)
        service = None
        if daq_period is not None:
            from repro.meas.service import MeasurementService, default_daq

            service = MeasurementService.attach(built, system)
            service.connect()
            service.start_daq(default_daq(service.registry, daq_period))
        built.sim.run_until(horizon if horizon is not None
                            else built.horizon)
        checks = []
        for layer, subject, bound in bounds:
            values = _observations(built, layer, subject)
            checks.append(Check(layer, subject, bound,
                                max(values) if values else None,
                                len(values)))
        violations = InvariantChecker(
            make_invariants(system)).run(built.trace)
        if system.faults:
            # Injected-fault scenarios run in *separate* simulations
            # (the nominal differential run above stays fault-free);
            # unmet detect/contain/recover obligations surface as
            # invariant violations so every downstream consumer —
            # failure keys, shrinking, fuzz feedback — sees them.
            from repro.verify.resilience import verify_resilience
            for rv in verify_resilience(system):
                if not rv.supported:
                    declined.append(f"resilience:{rv.scenario.label()}")
                    continue
                violations.extend(rv.violations())
        verdict = SystemVerdict(system.name, system.seed, system.size,
                                checks, declined, violations,
                                len(built.trace))
        if service is not None:
            service.detach()
            verdict.daq_rows = service.sample_rows()
    if obs.enabled():
        obs.count("verify.systems")
        obs.count("verify.checks", len(verdict.checks))
        obs.count("verify.declined", len(verdict.declined))
        obs.count("verify.soundness_violations",
                  len(verdict.soundness_violations))
        obs.count("verify.invariant_violations",
                  len(verdict.invariant_violations))
        obs.count("verify.trace_records", verdict.records)
        # Overload symptoms: these make saturation *visible* to the
        # fuzzer's feedback signature — a mutant that starts shedding
        # activations or missing deadlines reached new behaviour even
        # while every bound still holds.
        lost = len(built.trace.records("task.activation_lost"))
        if lost:
            obs.count("verify.activations_lost", lost)
        missed = len(built.trace.records("task.deadline_miss"))
        if missed:
            obs.count("verify.deadline_misses", missed)
        for check in verdict.checks:
            if check.tightness is not None:
                obs.observe("verify.tightness", check.tightness,
                            buckets=obs.RATIO_BUCKETS)
        obs.harvest_trace(built.trace, system.name)
    return verdict


def _system_worker(horizon: Optional[int], system: GeneratedSystem,
                   seed: int) -> SystemVerdict:
    """Plan worker (module-level, hence picklable): one system per call.

    The ``seed`` argument is the engine's spawn-derived per-item seed;
    the system spec was already generated from it, so verification
    itself draws no randomness and the argument is unused.
    """
    return verify_system(system, horizon)


def _daq_system_worker(horizon: Optional[int], daq_period: int,
                       system: GeneratedSystem,
                       seed: int) -> SystemVerdict:
    """Plan worker for ``--daq`` runs: verification plus sampling.

    A separate worker (and a separate plan label in
    :func:`verify_many`) so checkpoint journals of plain and DAQ runs
    never mix result shapes."""
    return verify_system(system, horizon, daq_period)


def verify_many(seed: int, count: int, size: str = "small",
                horizon: Optional[int] = None, jobs: int = 1,
                checkpoint=None, resume: bool = False, retries: int = 1,
                progress=None,
                interrupt_after: Optional[int] = None,
                cache=None,
                daq_period: Optional[int] = None) -> VerificationReport:
    """Generate and differentially verify ``count`` systems.

    System specs are generated up front (cheap) and fanned out over
    :mod:`repro.exec` (simulation is the expensive half) — the specs
    travel to the workers by pickling, and results merge in plan order,
    so ``jobs=1`` and ``jobs=N`` produce identical report digests.
    ``checkpoint``/``resume`` journal per-system verdicts and skip
    completed systems on restart.

    ``cache`` (a :class:`repro.perf.CacheConfig`, or None) enables the
    analysis memo cache in whichever process runs each chunk via the
    plan's setup hook; the memo replays obs counters on hits, so report
    digests are identical with the cache on or off, at any job count.
    """
    from repro.exec import Plan, execute
    from repro.perf import memo as perf_memo

    setup = None if cache is None \
        else functools.partial(perf_memo.ensure, cache)
    systems = tuple(generate_many(seed, count, size))
    if daq_period is not None:
        label = (f"verify-daq:size={size}:horizon={horizon}"
                 f":period={daq_period}")
        worker = functools.partial(_daq_system_worker, horizon,
                                   daq_period)
    else:
        label = f"verify:size={size}:horizon={horizon}"
        worker = functools.partial(_system_worker, horizon)
    plan = Plan(label, worker, systems, base_seed=seed, setup=setup)
    outcome = execute(plan, jobs=jobs, retries=retries,
                      checkpoint=checkpoint, resume=resume,
                      progress=progress, interrupt_after=interrupt_after)
    outcome.raise_on_failure()
    return VerificationReport(seed, count, size, list(outcome.results))


def format_report(report: VerificationReport) -> str:
    """Deterministic human-readable summary of a verification batch."""
    lines = [f"differential verification: seed={report.seed} "
             f"systems={report.count} size={report.size}"]
    header = (f"  {'layer':<16} {'checks':>6} {'measured':>8} "
              f"{'declined':>8} {'violations':>10} {'tightness':>22}")
    lines.append(header)
    for layer, row in report.layer_summary().items():
        if row["tightness_min"] is None:
            spread = "-"
        else:
            spread = (f"{row['tightness_min']:.2f}/"
                      f"{row['tightness_median']:.2f}/"
                      f"{row['tightness_max']:.2f}")
        lines.append(f"  {layer:<16} {row['checks']:>6} "
                     f"{row['measured']:>8} {row['declined']:>8} "
                     f"{row['violations']:>10} {spread:>22}")
    lines.append(f"invariant violations: {report.invariant_violations}")
    lines.append(f"report digest: sha256:{report.digest()}")
    lines.append(f"verdict: {'PASS' if report.passed else 'FAIL'} "
                 f"({report.soundness_violations} soundness, "
                 f"{report.invariant_violations} invariant violation(s))")
    return "\n".join(lines)
