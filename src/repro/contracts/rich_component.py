"""Rich components: the AUTOSAR component model "conservatively extended"
with multi-viewpoint contracts and vertical assumptions (Section 3).

A :class:`RichComponent` wraps an :class:`~repro.core.component.SwComponent`
with one contract per *viewpoint* (functional, timing, safety, resource)
and a list of vertical assumptions.  The wrapped component is unchanged —
the extension is conservative, as the paper requires: any AUTOSAR-style
tool ignoring the richness still sees a plain component.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ContractError
from repro.contracts.contract import Contract, Var
from repro.contracts.vertical import VerticalAssumption
from repro.core.component import SwComponent

FUNCTIONAL = "functional"
TIMING = "timing"
SAFETY = "safety"
RESOURCE = "resource"

VIEWPOINTS = (FUNCTIONAL, TIMING, SAFETY, RESOURCE)


class RichComponent:
    """A component type plus its rich interface specification."""

    def __init__(self, component: SwComponent):
        self.component = component
        self.contracts: dict[str, Contract] = {}
        self.vertical: list[VerticalAssumption] = []
        component.contract = self

    @property
    def name(self) -> str:
        """The wrapped component's name."""
        return self.component.name

    def add_contract(self, viewpoint: str, contract: Contract) -> None:
        """Attach a contract under a viewpoint (one per viewpoint)."""
        if viewpoint not in VIEWPOINTS:
            raise ContractError(
                f"{self.name}: unknown viewpoint {viewpoint!r} "
                f"(use one of {VIEWPOINTS})")
        if viewpoint in self.contracts:
            raise ContractError(
                f"{self.name}: viewpoint {viewpoint!r} already has a "
                f"contract")
        self.contracts[viewpoint] = contract

    def add_vertical(self, assumption: VerticalAssumption) -> None:
        """Record an externally constructed vertical assumption."""
        self.vertical.append(assumption)

    def claim(self, kind: str, demand: float, confidence: float = 1.0,
              description: str = "") -> VerticalAssumption:
        """Convenience: record a vertical assumption owned by this
        component."""
        assumption = VerticalAssumption(self.name, kind, demand, confidence,
                                        description)
        self.vertical.append(assumption)
        return assumption

    def contract_for(self, viewpoint: str) -> Optional[Contract]:
        """The contract of a viewpoint, or None when unconstrained."""
        return self.contracts.get(viewpoint)

    def refines(self, abstract: "RichComponent",
                universe: dict[str, Var]) -> bool:
        """Cross-viewpoint dominance: every viewpoint the abstract
        component constrains must be refined by this component."""
        for viewpoint, abstract_contract in abstract.contracts.items():
            concrete = self.contracts.get(viewpoint)
            if concrete is None:
                return False
            if not concrete.refines(abstract_contract, universe):
                return False
        return True

    def __repr__(self) -> str:
        return (f"<RichComponent {self.name} "
                f"viewpoints={sorted(self.contracts)} "
                f"vertical={len(self.vertical)}>")
