"""Confidence aggregation over collections of vertical assumptions.

"System-level analysis [can] be performed up to a degree of confidence
characterized by the collection of vertical assumptions of system-level
design units" (Section 3).  Two standard aggregation rules are provided:

* **product** — treats assumption validities as independent events; the
  system analysis holds with probability ``prod(c_i)``;
* **min** — the weakest-link view: the analysis is no more credible than
  its least credible assumption.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ContractError
from repro.contracts.vertical import VerticalAssumption


def product_confidence(assumptions: Iterable[VerticalAssumption]) -> float:
    """Joint confidence under independence."""
    result = 1.0
    for assumption in assumptions:
        result *= assumption.confidence
    return result


def min_confidence(assumptions: Iterable[VerticalAssumption]) -> float:
    """Weakest-link confidence (1.0 for an empty collection)."""
    confidences = [a.confidence for a in assumptions]
    return min(confidences) if confidences else 1.0


def required_per_assumption(target: float, count: int) -> float:
    """Uniform per-assumption confidence needed so the product rule meets
    ``target`` over ``count`` assumptions.

    Useful for budgeting: with 50 design units and a 0.9 system target,
    each vertical assumption must individually reach ~0.9979.
    """
    if not 0.0 < target <= 1.0:
        raise ContractError(f"target must be in (0, 1], got {target}")
    if count <= 0:
        raise ContractError(f"count must be > 0, got {count}")
    return target ** (1.0 / count)


def confidence_report(assumptions: list[VerticalAssumption],
                      target: float = 0.9) -> dict:
    """Summary used by design reviews: joint confidences, whether the
    target is met, and the assumptions to strengthen first."""
    ranked = sorted(assumptions, key=lambda a: a.confidence)
    joint = product_confidence(assumptions)
    return {
        "count": len(assumptions),
        "product": joint,
        "min": min_confidence(assumptions),
        "meets_target": joint >= target,
        "target": target,
        "weakest": [(a.owner, a.confidence) for a in ranked[:5]],
    }
