"""Assumption/guarantee contracts over finite-domain variables.

The paper's Section 3 proposes contract-based interface specifications
whose compatibility can be analysed "beyond pure static checking".  The
substitution we make (documented in DESIGN.md): instead of extended timed
automata, contracts are predicates over declared variables with *finite
domains*, so refinement and compatibility are decided exactly by
enumeration.  This supports every operation the paper uses — compatibility,
dominance (refinement), composition — with decidable, testable semantics.

A :class:`Contract` pairs an assumption ``A`` (what the component expects
from its environment) with a guarantee ``G`` (what it promises).  The
*saturated* guarantee is ``A -> G``: outside its assumption a component
promises nothing.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional

from repro.errors import ContractError


class Var:
    """A model variable with an explicit finite domain."""

    def __init__(self, name: str, domain: Iterable):
        domain = tuple(domain)
        if not domain:
            raise ContractError(f"variable {name}: empty domain")
        self.name = name
        self.domain = domain

    def __repr__(self) -> str:
        return f"<Var {self.name}:{len(self.domain)} values>"


class Predicate:
    """A named boolean condition over named variables.

    ``fn`` receives an environment dict containing at least the declared
    variables.  Combinators build derived predicates; ``vars`` is the
    union of the operands' variables.
    """

    def __init__(self, fn: Callable[[dict], bool], variables: Iterable[str],
                 description: str = ""):
        self.fn = fn
        self.variables = frozenset(variables)
        self.description = description

    def __call__(self, env: dict) -> bool:
        missing = self.variables - set(env)
        if missing:
            raise ContractError(
                f"predicate {self.description!r}: environment missing "
                f"variables {sorted(missing)}")
        return bool(self.fn(env))

    # --- combinators ---------------------------------------------------
    def and_(self, other: "Predicate") -> "Predicate":
        """Conjunction of two predicates."""
        return Predicate(lambda env: self(env) and other(env),
                         self.variables | other.variables,
                         f"({self.description} and {other.description})")

    def or_(self, other: "Predicate") -> "Predicate":
        """Disjunction of two predicates."""
        return Predicate(lambda env: self(env) or other(env),
                         self.variables | other.variables,
                         f"({self.description} or {other.description})")

    def not_(self) -> "Predicate":
        """Negation of the predicate."""
        return Predicate(lambda env: not self(env), self.variables,
                         f"(not {self.description})")

    def implies(self, other: "Predicate") -> "Predicate":
        """Material implication `self -> other`."""
        return Predicate(lambda env: (not self(env)) or other(env),
                         self.variables | other.variables,
                         f"({self.description} implies "
                         f"{other.description})")

    @staticmethod
    def true(description: str = "true") -> "Predicate":
        """The always-true predicate (empty variable set)."""
        return Predicate(lambda env: True, (), description)

    @staticmethod
    def false(description: str = "false") -> "Predicate":
        """The always-false predicate (empty variable set)."""
        return Predicate(lambda env: False, (), description)

    def __repr__(self) -> str:
        return f"<Predicate {self.description!r}>"


def environments(variables: Iterable[Var]) -> Iterable[dict]:
    """All assignments over the given variables (cartesian product)."""
    variables = list(variables)
    names = [v.name for v in variables]
    for values in itertools.product(*(v.domain for v in variables)):
        yield dict(zip(names, values))


class Contract:
    """An assumption/guarantee pair."""

    def __init__(self, name: str, assumption: Predicate,
                 guarantee: Predicate):
        self.name = name
        self.assumption = assumption
        self.guarantee = guarantee

    @property
    def variables(self) -> frozenset:
        """All variables the assumption or guarantee mentions."""
        return self.assumption.variables | self.guarantee.variables

    def saturated_guarantee(self) -> Predicate:
        """``A -> G``: the promise in canonical (saturated) form."""
        return self.assumption.implies(self.guarantee)

    # ------------------------------------------------------------------
    def _relevant_vars(self, universe: dict[str, Var],
                       extra: frozenset = frozenset()) -> list[Var]:
        needed = self.variables | extra
        missing = needed - set(universe)
        if missing:
            raise ContractError(
                f"contract {self.name}: no domain declared for variables "
                f"{sorted(missing)}")
        return [universe[name] for name in sorted(needed)]

    def refines(self, abstract: "Contract",
                universe: dict[str, Var]) -> bool:
        """Dominance check: does this (concrete) contract refine
        ``abstract``?

        Standard conditions over saturated contracts: the concrete assumption is
        weaker (``A_abs -> A_conc``) and the concrete promise is stronger
        (``(A_abs and sat-G_conc) -> G_abs``), checked over all
        environments.
        """
        variables = self._relevant_vars(
            universe, abstract.variables)
        sat = self.saturated_guarantee()
        for env in environments(variables):
            if abstract.assumption(env) and not self.assumption(env):
                return False
            if (abstract.assumption(env) and sat(env)
                    and not abstract.guarantee(env)):
                return False
        return True

    def counterexample(self, abstract: "Contract",
                       universe: dict[str, Var]) -> Optional[dict]:
        """An environment witnessing a refinement failure (None = refines).
        More useful than a bare bool for integrator diagnostics."""
        variables = self._relevant_vars(universe, abstract.variables)
        sat = self.saturated_guarantee()
        for env in environments(variables):
            if abstract.assumption(env) and not self.assumption(env):
                return dict(env, reason="assumption not weakened")
            if (abstract.assumption(env) and sat(env)
                    and not abstract.guarantee(env)):
                return dict(env, reason="guarantee not strengthened")
        return None

    def compose(self, other: "Contract",
                name: Optional[str] = None) -> "Contract":
        """Parallel composition (simplified A/G algebra).

        Guarantee: both saturated guarantees hold.  Assumption: both
        assumptions hold, *or* some guarantee is already violated —
        i.e. ``(A1 and A2) or not (G1 and G2)`` — the standard relaxation
        that lets one component's guarantee discharge the other's
        assumption.
        """
        sat = self.saturated_guarantee().and_(other.saturated_guarantee())
        both = self.assumption.and_(other.assumption)
        assumption = both.or_(sat.not_())
        return Contract(name or f"({self.name} || {other.name})",
                        assumption, sat)

    def is_consistent(self, universe: dict[str, Var]) -> bool:
        """Satisfiable: some environment meets assumption and guarantee."""
        variables = self._relevant_vars(universe)
        return any(self.assumption(env) and self.guarantee(env)
                   for env in environments(variables))

    def __repr__(self) -> str:
        return (f"<Contract {self.name}: A={self.assumption.description!r} "
                f"G={self.guarantee.description!r}>")
