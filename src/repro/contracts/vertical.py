"""Vertical assumptions: resource claims with confidence levels.

Section 3: contract-based interfaces allow "so-called vertical assumptions
for capturing resource requirements at system-level … assumptions can be
annotated with confidence levels, reflecting design experience on the
ability to meet e.g. expected resource constraints."

A :class:`VerticalAssumption` is one such claim (this runnable needs at
most X of resource R); a :class:`ResourceOffer` is what a platform element
provides.  :func:`check_compliance` does the bottom-up propagation: given
an allocation of claims to offers, it sums demands per offer and reports
violations — the check performed "when committing to a given system
configuration".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ContractError

#: Well-known resource kinds.  Values are interpreted per kind:
#: cpu — utilization fraction; memory — bytes; bus — bits/second;
#: cost — currency units; weight — grams; failure_rate — failures/hour
#: (the dependability budget of a safety goal); latency — nanoseconds
#: (checked as claim >= observed, not summed).  The paper's Section 3
#: names "resource constraints, dependability, end-to-end latencies,
#: costs, weight, volume" as the dimensions rich interfaces must carry.
CPU = "cpu"
MEMORY = "memory"
BUS = "bus"
COST = "cost"
WEIGHT = "weight"
FAILURE_RATE = "failure_rate"
LATENCY = "latency"

_ADDITIVE = (CPU, MEMORY, BUS, COST, WEIGHT, FAILURE_RATE)


@dataclass(frozen=True)
class VerticalAssumption:
    """One resource claim made by a design unit (runnable, channel…)."""

    owner: str
    kind: str
    demand: float
    confidence: float = 1.0
    description: str = ""

    def __post_init__(self):
        if self.demand < 0:
            raise ContractError(
                f"{self.owner}: negative demand {self.demand}")
        if not 0.0 < self.confidence <= 1.0:
            raise ContractError(
                f"{self.owner}: confidence must be in (0, 1], got "
                f"{self.confidence}")


@dataclass(frozen=True)
class ResourceOffer:
    """Capacity offered by a platform element (ECU, bus, memory bank)."""

    provider: str
    kind: str
    capacity: float

    def __post_init__(self):
        if self.capacity <= 0:
            raise ContractError(
                f"{self.provider}: capacity must be > 0")


@dataclass
class ComplianceReport:
    """Outcome of a bottom-up compliance check."""

    ok: bool
    violations: list[str] = field(default_factory=list)
    #: (provider, kind) -> (demand, capacity)
    loads: dict = field(default_factory=dict)
    #: joint confidence of every assumption involved (product rule).
    confidence: float = 1.0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_compliance(assumptions: list[VerticalAssumption],
                     offers: list[ResourceOffer],
                     allocation: dict[str, str],
                     observed_latencies: Optional[dict[str, float]] = None
                     ) -> ComplianceReport:
    """Bottom-up vertical-assumption compliance.

    ``allocation`` maps each assumption owner to a provider.  Additive
    kinds (cpu/memory/bus) are summed per (provider, kind) and compared
    with the offer; ``latency`` claims are upper bounds compared with
    ``observed_latencies[owner]`` (e.g. from
    :mod:`repro.analysis` results).
    """
    offer_index = {(o.provider, o.kind): o for o in offers}
    report = ComplianceReport(ok=True)
    sums: dict[tuple, float] = {}
    for assumption in assumptions:
        report.confidence *= assumption.confidence
        if assumption.kind == LATENCY:
            observed = (observed_latencies or {}).get(assumption.owner)
            if observed is None:
                report.ok = False
                report.violations.append(
                    f"{assumption.owner}: latency claim "
                    f"{assumption.demand} has no observed/analysed value")
            elif observed > assumption.demand:
                report.ok = False
                report.violations.append(
                    f"{assumption.owner}: latency {observed} exceeds the "
                    f"claimed bound {assumption.demand}")
            continue
        if assumption.kind not in _ADDITIVE:
            raise ContractError(
                f"{assumption.owner}: unknown resource kind "
                f"{assumption.kind!r}")
        provider = allocation.get(assumption.owner)
        if provider is None:
            report.ok = False
            report.violations.append(
                f"{assumption.owner}: not allocated to any provider")
            continue
        key = (provider, assumption.kind)
        if key not in offer_index:
            report.ok = False
            report.violations.append(
                f"{assumption.owner}: provider {provider!r} offers no "
                f"{assumption.kind}")
            continue
        sums[key] = sums.get(key, 0.0) + assumption.demand
    for key, demand in sorted(sums.items()):
        capacity = offer_index[key].capacity
        report.loads[key] = (demand, capacity)
        if demand > capacity:
            report.ok = False
            provider, kind = key
            report.violations.append(
                f"{provider}: {kind} over-committed "
                f"({demand:.6g} > {capacity:.6g})")
    return report


def weakest_assumptions(assumptions: list[VerticalAssumption],
                        threshold: float = 0.9
                        ) -> list[VerticalAssumption]:
    """Claims whose confidence is below ``threshold`` — the items design
    reviews should spend effort on, sorted least-confident first."""
    weak = [a for a in assumptions if a.confidence < threshold]
    return sorted(weak, key=lambda a: a.confidence)
