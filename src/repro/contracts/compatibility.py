"""Contract-level compatibility of connected components.

Static port checking (types, directions) lives in the composition layer;
this module adds the behavioural check the paper asks for ("interface
compatibility analysis beyond pure static checking"): along a connector,
the source's saturated guarantee must establish the target's assumption
on the variables they share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.contracts.contract import Contract, Var, environments
from repro.contracts.rich_component import RichComponent
from repro.errors import ContractError


@dataclass
class CompatibilityResult:
    """Verdict of one contract-flow check, with counterexample."""
    ok: bool
    counterexample: Optional[dict] = None
    checked_environments: int = 0
    viewpoint: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_contract_flow(source: Contract, target: Contract,
                        universe: dict[str, Var]) -> CompatibilityResult:
    """Does the source's promise establish the target's assumption?

    Checked condition: for every environment, ``A_src and G_src ->
    A_tgt``.  A counterexample environment is returned on failure.
    """
    needed = source.variables | target.assumption.variables
    missing = needed - set(universe)
    if missing:
        raise ContractError(
            f"no domain declared for variables {sorted(missing)}")
    variables = [universe[name] for name in sorted(needed)]
    count = 0
    for env in environments(variables):
        count += 1
        if (source.assumption(env) and source.guarantee(env)
                and not target.assumption(env)):
            return CompatibilityResult(False, dict(env), count)
    return CompatibilityResult(True, None, count)


def check_composition_contracts(composition, rich_of: dict,
                                universe: dict[str, Var]) -> list[dict]:
    """Contract-check every sender-receiver connector of a composition.

    ``rich_of`` maps component *type* names to their
    :class:`RichComponent`.  Connectors whose endpoints both have rich
    specifications are checked on their shared viewpoints; the result
    rows carry the connector, viewpoint, verdict and counterexample —
    the integrator's acceptance report for a supplier delivery.
    """
    from repro.core.interface import SenderReceiverInterface

    instances, connectors = composition.flatten()
    by_name = {i.name: i for i in instances}
    rows = []
    for connector in connectors:
        source_instance = by_name[connector.source.instance]
        target_instance = by_name[connector.target.instance]
        port = source_instance.port(connector.source.port)
        if not isinstance(port.interface, SenderReceiverInterface):
            continue
        source_rich = rich_of.get(source_instance.component.name)
        target_rich = rich_of.get(target_instance.component.name)
        if source_rich is None or target_rich is None:
            rows.append({
                "connector": f"{connector.source} -> {connector.target}",
                "viewpoint": None,
                "ok": None,
                "counterexample": None,
                "note": "no rich specification on one side",
            })
            continue
        results = check_rich_connection(source_rich, target_rich,
                                        universe)
        if not results:
            rows.append({
                "connector": f"{connector.source} -> {connector.target}",
                "viewpoint": None,
                "ok": None,
                "counterexample": None,
                "note": "no shared viewpoints",
            })
        for result in results:
            rows.append({
                "connector": f"{connector.source} -> {connector.target}",
                "viewpoint": result.viewpoint,
                "ok": result.ok,
                "counterexample": result.counterexample,
                "note": "",
            })
    return rows


def check_rich_connection(source: RichComponent, target: RichComponent,
                          universe: dict[str, Var],
                          viewpoints: Optional[list[str]] = None
                          ) -> list[CompatibilityResult]:
    """Check all shared viewpoints along a connection.

    Viewpoints declared by only one side are skipped (nothing to check);
    the integrator can require specific viewpoints via ``viewpoints``.
    """
    results = []
    shared = viewpoints if viewpoints is not None else sorted(
        set(source.contracts) & set(target.contracts))
    for viewpoint in shared:
        source_contract = source.contracts.get(viewpoint)
        target_contract = target.contracts.get(viewpoint)
        if source_contract is None or target_contract is None:
            raise ContractError(
                f"viewpoint {viewpoint!r} missing on "
                f"{source.name if source_contract is None else target.name}")
        result = check_contract_flow(source_contract, target_contract,
                                     universe)
        result.viewpoint = viewpoint
        results.append(result)
    return results
