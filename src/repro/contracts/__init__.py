"""Rich contract-based interface specifications (paper Section 3)."""

from repro.contracts.compatibility import (CompatibilityResult,
                                           check_composition_contracts,
                                           check_contract_flow,
                                           check_rich_connection)
from repro.contracts.confidence import (confidence_report, min_confidence,
                                        product_confidence,
                                        required_per_assumption)
from repro.contracts.contract import Contract, Predicate, Var, environments
from repro.contracts.rich_component import (FUNCTIONAL, RESOURCE,
                                            RichComponent, SAFETY, TIMING,
                                            VIEWPOINTS)
from repro.contracts.vertical import (BUS, COST, CPU, ComplianceReport,
                                      FAILURE_RATE, LATENCY, MEMORY,
                                      ResourceOffer, VerticalAssumption,
                                      WEIGHT, check_compliance,
                                      weakest_assumptions)

__all__ = [
    "CompatibilityResult", "check_composition_contracts",
    "check_contract_flow", "check_rich_connection",
    "confidence_report", "min_confidence", "product_confidence",
    "required_per_assumption",
    "Contract", "Predicate", "Var", "environments",
    "FUNCTIONAL", "RESOURCE", "RichComponent", "SAFETY", "TIMING",
    "VIEWPOINTS",
    "BUS", "COST", "CPU", "ComplianceReport", "FAILURE_RATE", "LATENCY",
    "MEMORY", "ResourceOffer", "VerticalAssumption", "WEIGHT",
    "check_compliance", "weakest_assumptions",
]
