"""repro — reproduction of "Software Components for Reliable Automotive
Systems" (Heinecke et al., DATE 2008).

The library provides, at simulation fidelity:

* an AUTOSAR-like component model (SWCs, VFB, RTE) — :mod:`repro.core`;
* rich contract-based interfaces with vertical assumptions —
  :mod:`repro.contracts`;
* an OSEK-like OS with fixed-priority, TDMA and reservation scheduling —
  :mod:`repro.osek`;
* CAN / FlexRay / TTP / TT-Ethernet communication — :mod:`repro.network`;
* signal/frame COM services — :mod:`repro.com`;
* distributed schedulability and end-to-end latency analysis —
  :mod:`repro.analysis`;
* MPSoC/NoC execution platforms — :mod:`repro.noc`;
* fault injection and containment monitors — :mod:`repro.faults`;
* basic software services (modes, error handling, NVRAM, watchdog,
  network management, diagnostics) — :mod:`repro.bsw`;
* design-space exploration (allocation, priorities, frame packing,
  federated-to-integrated consolidation) — :mod:`repro.dse`;
* a legacy CAN overlay on time-triggered platforms — :mod:`repro.legacy`.
"""

from repro import units
from repro.errors import (AnalysisError, CompositionError, ConfigurationError,
                          ContractError, FaultContainmentViolation,
                          ProtocolError, ReproError, SchedulingError,
                          SimulationError)

__version__ = "1.0.0"

__all__ = [
    "units", "ReproError", "ConfigurationError", "SimulationError",
    "SchedulingError", "AnalysisError", "ContractError", "CompositionError",
    "FaultContainmentViolation", "ProtocolError",
]
