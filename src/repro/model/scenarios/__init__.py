"""The bundled scenario library: named, versioned system models.

Each scenario is one committed model document (``*.json`` next to this
file) exercising a characteristic automotive architecture, loadable by
name from code (``load_scenario("adas-fusion")``) or the CLI
(``repro model scenarios run adas-fusion``, ``repro verify --model
adas-fusion``).  Every bundled scenario is CI-pinned to validate
against the schema, round-trip digest-identically through the live
objects, and pass both ``repro verify`` and ``repro resilience`` with
zero violations (EXPERIMENTS E18).

========================  ============================================
name                      architecture
========================  ============================================
``adas-fusion``           camera/radar/fusion sensor chain: an
                          E2E-protected object-list chain over a
                          packed CAN bus, ICPP-shared fusion buffer
``gateway-multibus``      gateway-heavy multi-bus topology: four ECUs
                          bridging dense CAN traffic onto a FlexRay
                          backbone (static + dynamic segments)
``tdma-overload``         time-partitioned ECU driven into overload:
                          queued activations against partition supply
                          (the multi-activation busy-window regime)
``flexray-mixed``         FlexRay cluster mixing cycle-multiplexed
                          static slots with minislot dynamic traffic
``limp-home``             recovery cascade: chain faults (corruption,
                          loss, delay, bus-off, producer reset) driving
                          the substitute -> degrade -> restart policy
========================  ============================================
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError
from repro.model.build import Model, load_document

_HERE = os.path.dirname(__file__)

#: Scenario name -> bundled document file.
SCENARIO_FILES = {
    "adas-fusion": "adas_fusion.json",
    "gateway-multibus": "gateway_multibus.json",
    "tdma-overload": "tdma_overload.json",
    "flexray-mixed": "flexray_mixed.json",
    "limp-home": "limp_home.json",
}


def scenario_names() -> list[str]:
    """Every bundled scenario name, sorted."""
    return sorted(SCENARIO_FILES)


def scenario_path(name: str) -> str:
    """Absolute path of one bundled scenario document."""
    try:
        return os.path.join(_HERE, SCENARIO_FILES[name])
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; bundled scenarios: "
            f"{', '.join(scenario_names())}") from None


def load_scenario(name: str, validate: bool = True) -> Model:
    """Load one bundled scenario by name (validated by default)."""
    return Model.from_document(load_document(scenario_path(name)),
                               validate=validate)


def scenario_description(name: str) -> str:
    """One scenario's ``meta.description`` without full validation."""
    return load_document(scenario_path(name))["meta"].get(
        "description", "")
