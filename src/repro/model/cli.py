"""The ``repro model`` subcommand: work with model documents directly.

=========================  ===========================================
``validate PATH|NAME ...``  schema-check documents; print every problem
``digest PATH|NAME ...``    print each document's deterministic SHA-256
``convert PATH``            re-emit any accepted input (model document,
                            legacy corpus dict, counterexample payload)
                            as a canonical model document
``scenarios list``          the bundled scenario library
``scenarios validate``      CI gate: every bundled scenario validates
                            and round-trips digest-identically
``scenarios run [NAME...]`` verify + resilience matrix per scenario
                            (the EXPERIMENTS E18 table); accepts the
                            telemetry flags ``--metrics`` /
                            ``--trace-out`` / ``--events``
``testgen [PATH|NAME...]``  compile every model (default: all bundled
                            scenarios) into a deterministic pytest
                            suite under ``tests/generated/`` plus a
                            SHA-256 sync manifest
``testgen --check``         CI gate: regenerate in memory and fail on
                            any drift between models and their
                            generated tests (STALE / EDITED /
                            MISSING / EXTRA)
=========================  ===========================================

Exit codes follow the convention: ``0`` everything valid / every
obligation met, ``1`` a document is invalid or a verification failed,
``2`` an input could not be read at all (missing file, broken JSON,
usage error — argparse's own convention).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.errors import ConfigurationError
from repro.model.build import (Model, load_document, resilience_models,
                               verify_models)
from repro.model.scenarios import (SCENARIO_FILES, scenario_description,
                                   scenario_names, scenario_path)
from repro.model.schema import model_digest, validate_document

#: Exit codes: valid / invalid / unreadable.
EXIT_OK, EXIT_INVALID, EXIT_UNREADABLE = 0, 1, 2


def _load_ref(ref: str) -> dict:
    """The document behind ``ref``: a bundled scenario name or a file
    path.  Raises :class:`ConfigurationError` (unreadable) only."""
    if ref in SCENARIO_FILES:
        return load_document(scenario_path(ref))
    try:
        return load_document(ref)
    except OSError as exc:
        raise ConfigurationError(f"{ref}: cannot read ({exc})")


def model_from_ref(ref: str) -> Model:
    """The validated :class:`Model` behind a path or scenario name
    (accepts legacy corpus dicts too, like ``convert``)."""
    return Model.from_data(_load_ref(ref))


def _validate(refs: list[str]) -> int:
    status = EXIT_OK
    for ref in refs:
        try:
            document = _load_ref(ref)
        except ConfigurationError as exc:
            print(f"{ref}: UNREADABLE — {exc}", file=sys.stderr)
            status = max(status, EXIT_UNREADABLE)
            continue
        problems = validate_document(document)
        if problems:
            print(f"{ref}: INVALID ({len(problems)} problem(s))")
            for problem in problems:
                print(f"  {problem}")
            status = max(status, EXIT_INVALID)
        else:
            print(f"{ref}: OK digest={model_digest(document)[:16]}")
    return status


def _digest(refs: list[str]) -> int:
    status = EXIT_OK
    for ref in refs:
        try:
            document = _load_ref(ref)
        except ConfigurationError as exc:
            print(f"{ref}: UNREADABLE — {exc}", file=sys.stderr)
            status = max(status, EXIT_UNREADABLE)
            continue
        problems = validate_document(document)
        if problems:
            print(f"{ref}: INVALID ({len(problems)} problem(s))",
                  file=sys.stderr)
            status = max(status, EXIT_INVALID)
            continue
        print(f"{model_digest(document)}  {ref}")
    return status


def _convert(ref: str, output: Optional[str]) -> int:
    try:
        data = _load_ref(ref)
    except ConfigurationError as exc:
        print(f"{ref}: UNREADABLE — {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    try:
        model = Model.from_data(data)
    except ConfigurationError as exc:
        print(f"{ref}: {exc}", file=sys.stderr)
        return EXIT_INVALID
    text = model.to_json()
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {output} digest={model.digest()[:16]}")
    else:
        print(text)
    return EXIT_OK


def _scenarios_list() -> int:
    width = max(len(name) for name in scenario_names())
    for name in scenario_names():
        print(f"{name:<{width}}  {scenario_description(name)}")
    return EXIT_OK


def _scenarios_validate() -> int:
    """The CI gate: every bundled scenario document must validate and
    round-trip (model -> live system -> model) digest-identically."""
    status = EXIT_OK
    for name in scenario_names():
        document = load_document(scenario_path(name))
        problems = validate_document(document)
        if problems:
            print(f"{name}: INVALID ({len(problems)} problem(s))")
            for problem in problems:
                print(f"  {problem}")
            status = EXIT_INVALID
            continue
        model = Model.from_document(document, validate=False)
        digest = model.digest()
        again = model.roundtrip().digest()
        if digest != again:
            print(f"{name}: ROUND-TRIP MISMATCH {digest[:16]} != "
                  f"{again[:16]}")
            status = EXIT_INVALID
        else:
            print(f"{name}: OK digest={digest[:16]} round-trip=identical")
    return status


def _scenarios_run(names: list[str], jobs: int,
                   options=None) -> int:
    names = names or scenario_names()
    try:
        models = [Model.from_document(load_document(scenario_path(name)))
                  for name in names]
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_UNREADABLE
    telemetry = options is not None and bool(
        options.metrics or options.trace_out or options.events)
    if telemetry:
        from repro import obs

        obs.reset()
        obs.enable()
    status = EXIT_OK
    width = max(len(name) for name in names)
    try:
        for name, model in zip(names, models):
            verification = verify_models([model], jobs=jobs)
            resilience = resilience_models([model], jobs=jobs)
            passed = verification.passed and resilience.passed
            checks = sum(len(v.checks) for v in verification.verdicts)
            scenarios = sum(len(row["verdicts"])
                            for row in resilience.rows)
            print(f"{name:<{width}}  verify={'PASS' if verification.passed else 'FAIL'} "
                  f"(checks={checks} soundness="
                  f"{verification.soundness_violations} invariants="
                  f"{verification.invariant_violations})  "
                  f"resilience={'PASS' if resilience.passed else 'FAIL'} "
                  f"(scenarios={scenarios} unmet={resilience.unmet})")
            if not passed:
                status = EXIT_INVALID
    finally:
        if telemetry:
            obs.disable()
    print(f"scenario matrix: {'PASS' if status == EXIT_OK else 'FAIL'} "
          f"({len(names)} scenario(s))")
    if telemetry:
        if options.metrics:
            obs.write_prometheus(options.metrics)
        if options.trace_out:
            obs.write_chrome_trace(options.trace_out)
        if options.events:
            obs.write_events_jsonl(options.events)
        print(f"telemetry digest: sha256:{obs.digest()}")
    return status


def _testgen(options) -> int:
    """Generate the model-driven pytest suite, or ``--check`` it."""
    from repro.model import testgen
    from repro.model.schema import ModelValidationError

    try:
        if options.check:
            in_sync, lines = testgen.check_suite(
                options.refs, output_dir=options.output_dir)
            for line in lines:
                print(line)
            return EXIT_OK if in_sync else EXIT_INVALID
        modules = testgen.write_suite(options.refs,
                                      output_dir=options.output_dir)
    except ModelValidationError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_INVALID
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_UNREADABLE
    for module in modules:
        print(f"wrote {options.output_dir}/{module.filename} "
              f"({testgen.TESTS_PER_MODEL} tests) "
              f"model={module.model_digest[:12]} "
              f"file={module.sha256[:12]}")
    print(f"wrote {options.output_dir}/{testgen.MANIFEST_NAME} "
          f"({len(modules)} entr{'y' if len(modules) == 1 else 'ies'})")
    return EXIT_OK


def model_command(args: list[str]) -> int:
    """Entry point for ``repro model ...`` (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro model",
        description="validate, digest, convert and run system model "
                    "documents (bundled scenarios addressable by name)")
    commands = parser.add_subparsers(dest="command", required=True)

    sub = commands.add_parser(
        "validate", help="schema-check documents; exit 1 on any problem")
    sub.add_argument("refs", nargs="+", metavar="PATH|NAME")

    sub = commands.add_parser(
        "digest", help="print each valid document's deterministic digest")
    sub.add_argument("refs", nargs="+", metavar="PATH|NAME")

    sub = commands.add_parser(
        "convert", help="re-emit any accepted input (model document, "
                        "legacy corpus dict, counterexample payload) as "
                        "a canonical model document")
    sub.add_argument("ref", metavar="PATH|NAME")
    sub.add_argument("--output", "-o", metavar="PATH",
                     help="write here instead of stdout")

    sub = commands.add_parser(
        "testgen", help="compile models into a deterministic pytest "
                        "suite with a SHA-256 sync manifest "
                        "(--check: fail on drift)")
    sub.add_argument("refs", nargs="*", metavar="PATH|NAME",
                     help="model documents or bundled scenario names "
                          "(default: every bundled scenario)")
    sub.add_argument("--output-dir", metavar="DIR", dest="output_dir",
                     default=None,
                     help="generated-suite directory (default "
                          "tests/generated)")
    sub.add_argument("--check", action="store_true",
                     help="regenerate in memory and compare against "
                          "the committed suite instead of writing")

    scenarios = commands.add_parser(
        "scenarios", help="the bundled scenario library")
    actions = scenarios.add_subparsers(dest="action", required=True)
    actions.add_parser("list", help="names + one-line descriptions")
    actions.add_parser(
        "validate", help="CI gate: validate + round-trip every scenario")
    sub = actions.add_parser(
        "run", help="verify + resilience matrix per scenario (E18)")
    sub.add_argument("names", nargs="*", metavar="NAME",
                     help="scenario names (default: all)")
    sub.add_argument("--jobs", type=int, default=1)
    sub.add_argument("--metrics", metavar="PATH",
                     help="write merged metrics as Prometheus text")
    sub.add_argument("--trace-out", metavar="PATH", dest="trace_out",
                     help="write spans + DLT events as Chrome "
                          "trace-event JSON")
    sub.add_argument("--events", metavar="PATH",
                     help="write the full telemetry as a JSONL event "
                          "log")

    options = parser.parse_args(args)
    if options.command == "validate":
        return _validate(options.refs)
    if options.command == "digest":
        return _digest(options.refs)
    if options.command == "convert":
        return _convert(options.ref, options.output)
    if options.command == "testgen":
        if options.output_dir is None:
            from repro.model.testgen import DEFAULT_OUTPUT_DIR
            options.output_dir = DEFAULT_OUTPUT_DIR
        return _testgen(options)
    if options.action == "list":
        return _scenarios_list()
    if options.action == "validate":
        return _scenarios_validate()
    return _scenarios_run(options.names, options.jobs, options)
