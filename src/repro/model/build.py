"""Compile a validated model document into executable views, and back.

``model -> system``: :func:`system_from_model` turns a document into
the live :class:`~repro.verify.generator.GeneratedSystem` every
downstream consumer speaks — the differential oracle
(:func:`repro.verify.oracle.verify_system`), the resilience matrix
(:func:`repro.verify.resilience.verify_resilience`), the fuzzer's
mutation engine and the shrinker.  ``system -> model``:
:func:`model_from_system` is its exact inverse; the pair round-trips
to an identical :func:`~repro.model.schema.model_digest` (pinned by
``tests/test_model_roundtrip.py``).

:class:`Model` wraps a document with the ergonomic face (validate on
construction, digest, build, round-trip, autodetecting loader for
legacy corpus files), and :func:`verify_models` /
:func:`resilience_models` fan batches of models out over
:mod:`repro.exec` with the same jobs/resume-invariant digest
guarantees as ``verify_many`` / ``run_resilience``.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.model import convert, schema
from repro.verify.generator import CriticalSection, GeneratedSystem

#: ``meta.size`` label stamped on systems built from explicit models
#: (generator size classes are ``small``/``medium``/``large``).
MODEL_SIZE = "model"


# ----------------------------------------------------------------------
# system <-> document
# ----------------------------------------------------------------------
def model_from_system(system: GeneratedSystem,
                      description: str = "") -> dict:
    """The model document describing ``system`` exactly.

    Fixed-priority ECUs become ``scheduler: fixed-priority`` entries,
    the TDMA plan (when present) a ``scheduler: tdma`` entry; packed
    CAN traffic splits into its COM view (``com.frames``: I-PDUs with
    signal mappings) and its network view (``network.can``: frame
    specs with identifiers); the E2E chain and fault scenarios land in
    ``com.chains`` / ``resilience.scenarios``.
    """
    ecus: dict = {}
    for ecu in system.fp_ecus:
        ecus[ecu] = {"scheduler": "fixed-priority",
                     "tasks": [convert.task_to_dict(t)
                               for t in system.tasksets[ecu]]}
    if system.tdma is not None:
        plan = system.tdma
        ecus[plan.ecu] = {"scheduler": "tdma",
                          "partitions": list(plan.partitions),
                          "major_frame": plan.major_frame,
                          "tasks": [convert.task_to_dict(t)
                                    for t in plan.tasks]}
    can = None
    frames: list = []
    if system.can is not None:
        can = {"bitrate_bps": system.can.bitrate_bps,
               "frame_specs": [convert.frame_spec_to_dict(s)
                               for s in system.can.frame_specs]}
        frames = [{"ipdu": convert.ipdu_to_dict(f.ipdu),
                   "period": f.period, "sender": f.sender}
                  for f in system.can.frames]
    return {
        "format": schema.FORMAT,
        "format_version": schema.FORMAT_VERSION,
        "meta": {"name": system.name, "description": description,
                 "seed": system.seed, "size": system.size},
        "osek": {
            "ecus": ecus,
            "resources": {name: {"ceiling": ceiling}
                          for name, ceiling
                          in sorted(system.resources.items())},
            "critical_sections": [
                {"task": s.task, "resource": s.resource, "pre": s.pre,
                 "duration": s.duration, "post": s.post}
                for s in system.critical_sections],
        },
        "com": {
            "frames": frames,
            "chains": ([] if system.chain is None
                       else [convert.chain_to_dict(system.chain)]),
        },
        "network": {
            "can": can,
            "flexray": (None if system.flexray is None
                        else convert.flexray_to_dict(system.flexray)),
            "ttp": None,
            "tte": None,
        },
        "resilience": {
            "scenarios": [convert.fault_to_dict(f)
                          for f in system.faults],
        },
    }


def system_from_model(doc: dict) -> GeneratedSystem:
    """The live :class:`GeneratedSystem` a (valid) document describes.

    Callers that load untrusted input go through
    :func:`repro.model.schema.ensure_valid` first (:class:`Model` does
    so on construction); this function assumes the references resolve.
    """
    meta = doc["meta"]
    system = GeneratedSystem(meta["name"], meta.get("seed", 0),
                             meta.get("size", MODEL_SIZE))
    osek = doc["osek"]
    for name, ecu in osek["ecus"].items():
        if ecu["scheduler"] == "tdma":
            system.tdma = convert.tdma_from_dict(
                {"ecu": name, "partitions": ecu["partitions"],
                 "major_frame": ecu["major_frame"],
                 "tasks": ecu["tasks"]})
        else:
            system.tasksets[name] = [convert.task_from_dict(t)
                                     for t in ecu["tasks"]]
    system.resources = {name: data["ceiling"]
                        for name, data
                        in (osek.get("resources") or {}).items()}
    system.critical_sections = [
        CriticalSection(s["task"], s["resource"], s["pre"],
                        s["duration"], s["post"])
        for s in osek.get("critical_sections") or []]
    chains = doc["com"]["chains"]
    if chains:
        system.chain = convert.chain_from_dict(chains[0])
    can = doc["network"]["can"]
    if can is not None:
        system.can = convert.can_from_dict(
            {"bitrate_bps": can["bitrate_bps"],
             "frames": doc["com"]["frames"],
             "frame_specs": can["frame_specs"]})
    flexray = doc["network"]["flexray"]
    if flexray is not None:
        system.flexray = convert.flexray_from_dict(flexray)
    system.faults = [convert.fault_from_dict(f)
                     for f in doc["resilience"]["scenarios"]]
    return system


# ----------------------------------------------------------------------
# the Model wrapper
# ----------------------------------------------------------------------
def load_document(path: str) -> dict:
    """Parse one JSON document from ``path`` (no validation)."""
    with open(path, encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}: not valid JSON ({exc})")


@dataclass(frozen=True)
class Model:
    """One validated model document and its derived views."""

    document: dict

    # -- constructors --------------------------------------------------
    @classmethod
    def from_document(cls, document: dict,
                      validate: bool = True) -> "Model":
        if validate:
            schema.ensure_valid(document)
        return cls(document)

    @classmethod
    def from_system(cls, system: GeneratedSystem,
                    description: str = "") -> "Model":
        return cls(model_from_system(system, description))

    @classmethod
    def from_data(cls, data, validate: bool = True) -> "Model":
        """Autodetecting constructor: a model document, a legacy
        ``GeneratedSystem`` dict (``repro.verify.serialize``), or a
        corpus counterexample payload (its ``system`` entry) all
        coerce to a :class:`Model`."""
        if schema.is_model_document(data):
            return cls.from_document(data, validate=validate)
        if isinstance(data, dict) and isinstance(data.get("system"),
                                                 dict):
            return cls.from_data(data["system"], validate=validate)
        if isinstance(data, dict) and "tasksets" in data:
            from repro.verify.serialize import system_from_dict
            return cls.from_system(system_from_dict(data))
        raise ConfigurationError(
            "unrecognized document: neither a repro.model document, a "
            "legacy system dict, nor a corpus counterexample")

    @classmethod
    def from_file(cls, path: str, validate: bool = True) -> "Model":
        return cls.from_data(load_document(path), validate=validate)

    # -- views ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self.document["meta"]["name"]

    @property
    def description(self) -> str:
        return self.document["meta"].get("description", "")

    def digest(self) -> str:
        """The document's deterministic SHA-256 (traceability anchor)."""
        return schema.model_digest(self.document)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.document, indent=indent, sort_keys=True)

    def build(self) -> GeneratedSystem:
        """The live system this model describes."""
        return system_from_model(self.document)

    def roundtrip(self) -> "Model":
        """model -> live system -> model; digest-identical to self
        (the exchange format loses nothing any executable view needs —
        pinned by the scenario round-trip tests)."""
        return Model.from_system(self.build(), self.description)


# ----------------------------------------------------------------------
# batch runners (shared by `repro verify/resilience --model` and
# `repro model scenarios run`)
# ----------------------------------------------------------------------
def verify_models(models: Sequence[Model], jobs: int = 1,
                  horizon: Optional[int] = None, checkpoint=None,
                  resume: bool = False, retries: int = 1, progress=None,
                  cache=None, daq_period: Optional[int] = None):
    """Differentially verify every model; returns the same
    :class:`~repro.verify.oracle.VerificationReport` as
    ``verify_many`` (jobs=1 and jobs=N digests are identical).
    ``daq_period`` (ns) additionally runs the measurement service's
    default DAQ list per system (``verdict.daq_rows``)."""
    from repro.exec import Plan, execute
    from repro.perf import memo as perf_memo
    from repro.verify.oracle import (VerificationReport,
                                     _daq_system_worker, _system_worker)

    setup = None if cache is None \
        else functools.partial(perf_memo.ensure, cache)
    systems = tuple(model.build() for model in models)
    if daq_period is not None:
        label = (f"model-verify-daq:n={len(systems)}:horizon={horizon}"
                 f":period={daq_period}")
        worker = functools.partial(_daq_system_worker, horizon,
                                   daq_period)
    else:
        label = f"model-verify:n={len(systems)}:horizon={horizon}"
        worker = functools.partial(_system_worker, horizon)
    plan = Plan(label, worker, systems, base_seed=0, setup=setup)
    outcome = execute(plan, jobs=jobs, retries=retries,
                      checkpoint=checkpoint, resume=resume,
                      progress=progress)
    outcome.raise_on_failure()
    return VerificationReport(0, len(systems), MODEL_SIZE,
                              list(outcome.results))


def resilience_models(models: Sequence[Model], jobs: int = 1,
                      checkpoint=None, resume: bool = False,
                      retries: int = 1, progress=None):
    """Resilience-verify every model; models that declare their own
    ``resilience.scenarios`` run exactly those, models without get the
    standard fault matrix (mirroring ``run_resilience``)."""
    from repro.exec import Plan, execute
    from repro.verify.resilience import (ResilienceReport,
                                         _resilience_worker,
                                         standard_scenarios)

    systems = []
    for model in models:
        system = model.build()
        if not system.faults:
            system.faults = standard_scenarios(system)
        systems.append(system)
    plan = Plan(f"model-resilience:n={len(systems)}",
                _resilience_worker, tuple(systems), base_seed=0)
    outcome = execute(plan, jobs=jobs, retries=retries,
                      checkpoint=checkpoint, resume=resume,
                      progress=progress)
    outcome.raise_on_failure()
    return ResilienceReport(0, len(systems), MODEL_SIZE,
                            list(outcome.results))
