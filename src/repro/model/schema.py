"""The model document: layout, versioning, validation, digest.

A **model document** is one plain JSON object describing a complete
distributed system, the declarative exchange format of paper §2:

.. code-block:: text

    {
      "format": "repro.model",
      "format_version": 1,
      "meta":    {"name", "description", "seed", "size"},
      "osek":    {"ecus": {<name>: {"scheduler": "fixed-priority",
                                    "tasks": [...]}
                          | {"scheduler": "tdma", "partitions": [...],
                             "major_frame": ..., "tasks": [...]}},
                  "resources": {<name>: {"ceiling": int}},
                  "critical_sections": [...]},
      "com":     {"frames": [{"ipdu", "period", "sender"}, ...],
                  "chains": [<e2e chain>, ...]},
      "network": {"can": {"bitrate_bps", "frame_specs"} | null,
                  "flexray": {...} | null,
                  "ttp": null, "tte": null},
      "resilience": {"scenarios": [{"kind", "start", "duration",
                                    "target"}, ...]}
    }

``format_version`` is explicit and checked first: the loader refuses
unknown versions instead of guessing.  The ``ttp`` / ``tte`` sections
are *reserved* — the key must be present (so a document always names
every subsystem) but only ``null`` is accepted until the corresponding
schedule specs grow an executable view.

:func:`validate_document` performs structural checks (required
sections, field presence, basic types/ranges) and **reference
integrity** — every cross-reference in the document must resolve:

* ``com.frames[*].sender``  → a fixed-priority ECU in ``osek.ecus``;
* ``com.frames[*].ipdu.name`` and ``com.chains[*].pdu_name``
  (signal→frame packing)     → a ``network.can.frame_specs`` entry;
* ``com.chains[*].producer/consumer`` (task→ECU mapping)
                             → a task on the named ECU;
* ``osek.critical_sections[*].task/resource``
                             → a defined task / resource;
* TDMA ``tasks[*].partition`` → the ECU's partition list;
* ``resilience.scenarios[*]`` → the subsystem they inject into.

Every problem is reported as ``"<path>: <message>"`` (e.g.
``com.chains[0]: producer task 'E9.prod' is not a task of ECU 'E0'``)
so a hand-edited scenario file fails with something actionable, never
a ``KeyError`` three layers down.

:func:`model_digest` is the traceability anchor: a SHA-256 over the
canonical JSON form (sorted keys, no whitespace).  Two documents with
the same digest describe byte-identically the same system; every
derived artifact — verification reports, corpus entries, generated
views — can cite it (the MBSE sync-hash pattern).
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ConfigurationError
from repro.verify.generator import SCENARIO_KINDS

#: Magic tag every model document carries in its ``format`` field.
FORMAT = "repro.model"
#: The version this build writes.
FORMAT_VERSION = 1
#: The versions this build reads.
SUPPORTED_VERSIONS = (1,)

#: Top-level sections every document must carry (a missing subsystem
#: is declared ``null`` / empty, never omitted).
SECTIONS = ("meta", "osek", "com", "network", "resilience")

#: Reserved network sections: key required, only ``null`` accepted.
RESERVED_NETWORKS = ("ttp", "tte")

#: Every field of a serialized task spec (see
#: :func:`repro.model.convert.task_to_dict`).
TASK_FIELDS = ("name", "wcet", "period", "offset", "deadline", "priority",
               "partition", "max_activations", "budget", "jitter", "bcet",
               "criticality")

#: Every field of a serialized E2E chain.
CHAIN_FIELDS = ("producer", "producer_ecu", "consumer", "consumer_ecu",
                "signal_name", "signal_bits", "pdu_name", "period",
                "data_id", "counter_bits", "max_delta_counter", "timeout")

SCHEDULERS = ("fixed-priority", "tdma")


class ModelValidationError(ConfigurationError):
    """A model document failed validation; ``problems`` lists every
    ``"<path>: <message>"`` row (the exception text joins them)."""

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        summary = "; ".join(self.problems[:3])
        if len(self.problems) > 3:
            summary += f"; ... ({len(self.problems)} problems)"
        super().__init__(f"invalid model document: {summary}")


def is_model_document(data) -> bool:
    """True when ``data`` looks like a model document (its ``format``
    tag matches), regardless of whether it validates."""
    return isinstance(data, dict) and data.get("format") == FORMAT


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _is_int(value, minimum=None) -> bool:
    if not isinstance(value, int) or isinstance(value, bool):
        return False
    return minimum is None or value >= minimum


def _check_tasks(path: str, tasks, problems: list[str],
                 partitions=None) -> list[str]:
    """Validate one ECU's task list; returns the task names."""
    names: list[str] = []
    if not isinstance(tasks, list):
        problems.append(f"{path}.tasks: expected a list of tasks")
        return names
    for i, task in enumerate(tasks):
        where = f"{path}.tasks[{i}]"
        if not isinstance(task, dict):
            problems.append(f"{where}: expected a task object")
            continue
        missing = [f for f in TASK_FIELDS if f not in task]
        if missing:
            problems.append(f"{where}: missing task field(s) "
                            f"{', '.join(missing)}")
            continue
        name = task["name"]
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: task name must be a non-empty "
                            f"string")
            continue
        names.append(name)
        if not _is_int(task["wcet"], 1):
            problems.append(f"{where}: wcet must be a positive integer")
        if not _is_int(task["period"], 1):
            problems.append(f"{where}: period must be a positive integer")
        if not _is_int(task["priority"]):
            problems.append(f"{where}: priority must be an integer")
        if partitions is not None \
                and task["partition"] not in partitions:
            problems.append(
                f"{where}: partition {task['partition']!r} is not one "
                f"of this ECU's partitions {sorted(partitions)}")
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        problems.append(f"{path}: duplicate task name(s) "
                        f"{', '.join(duplicates)}")
    return names


def _validate_osek(osek, problems: list[str]):
    """Validate ``osek``; returns ({ecu: set(task names)} for
    fixed-priority ECUs, set of tdma ECU names, resource names)."""
    fp_tasks: dict[str, set] = {}
    tdma_ecus: set = set()
    resources: set = set()
    if not isinstance(osek, dict):
        problems.append("osek: expected an object")
        return fp_tasks, tdma_ecus, resources
    ecus = osek.get("ecus")
    if not isinstance(ecus, dict):
        problems.append("osek.ecus: expected an object mapping ECU "
                        "names to configurations")
        ecus = {}
    for name, ecu in sorted(ecus.items()):
        path = f"osek.ecus.{name}"
        if not isinstance(ecu, dict):
            problems.append(f"{path}: expected an object")
            continue
        scheduler = ecu.get("scheduler")
        if scheduler not in SCHEDULERS:
            problems.append(
                f"{path}: unknown scheduler {scheduler!r}; expected one "
                f"of {', '.join(SCHEDULERS)}")
            continue
        if scheduler == "tdma":
            tdma_ecus.add(name)
            partitions = ecu.get("partitions")
            if not (isinstance(partitions, list) and partitions):
                problems.append(f"{path}: a tdma ECU needs a non-empty "
                                f"'partitions' list")
                partitions = []
            if not _is_int(ecu.get("major_frame"), 1):
                problems.append(f"{path}: a tdma ECU needs a positive "
                                f"integer 'major_frame'")
            _check_tasks(path, ecu.get("tasks", []), problems,
                         partitions=set(partitions))
        else:
            names = _check_tasks(path, ecu.get("tasks", []), problems)
            fp_tasks[name] = set(names)
    if len(tdma_ecus) > 1:
        problems.append(
            f"osek.ecus: at most one tdma ECU is supported, got "
            f"{len(tdma_ecus)} ({', '.join(sorted(tdma_ecus))})")

    for name, resource in sorted((osek.get("resources") or {}).items()):
        if not (isinstance(resource, dict)
                and _is_int(resource.get("ceiling"))):
            problems.append(f"osek.resources.{name}: expected an object "
                            f"with an integer 'ceiling'")
            continue
        resources.add(name)

    all_tasks = {t for names in fp_tasks.values() for t in names}
    for i, section in enumerate(osek.get("critical_sections") or []):
        where = f"osek.critical_sections[{i}]"
        if not isinstance(section, dict):
            problems.append(f"{where}: expected an object")
            continue
        missing = [f for f in ("task", "resource", "pre", "duration",
                               "post") if f not in section]
        if missing:
            problems.append(f"{where}: missing field(s) "
                            f"{', '.join(missing)}")
            continue
        if section["task"] not in all_tasks:
            problems.append(
                f"{where}: task {section['task']!r} is not defined on "
                f"any fixed-priority ECU")
        if section["resource"] not in resources:
            problems.append(
                f"{where}: resource {section['resource']!r} is not "
                f"declared in osek.resources")
    return fp_tasks, tdma_ecus, resources


def _validate_network(network, problems: list[str]):
    """Validate ``network``; returns (CAN frame-spec names,
    FlexRay static frame names)."""
    can_frames: set = set()
    static_frames: set = set()
    if not isinstance(network, dict):
        problems.append("network: expected an object")
        return can_frames, static_frames
    for reserved in RESERVED_NETWORKS:
        if reserved not in network:
            problems.append(f"network.{reserved}: reserved section must "
                            f"be present (use null)")
        elif network[reserved] is not None:
            problems.append(
                f"network.{reserved}: {reserved.upper()} schedules are "
                f"reserved in format_version {FORMAT_VERSION}; only "
                f"null is accepted")

    can = network.get("can")
    if can is not None:
        if not isinstance(can, dict):
            problems.append("network.can: expected an object or null")
        else:
            if not _is_int(can.get("bitrate_bps"), 1):
                problems.append("network.can: bitrate_bps must be a "
                                "positive integer")
            specs = can.get("frame_specs")
            if not isinstance(specs, list):
                problems.append("network.can.frame_specs: expected a "
                                "list")
                specs = []
            names, ids = [], []
            for i, spec in enumerate(specs):
                where = f"network.can.frame_specs[{i}]"
                if not isinstance(spec, dict) or "name" not in spec \
                        or "can_id" not in spec:
                    problems.append(f"{where}: expected an object with "
                                    f"'name' and 'can_id'")
                    continue
                names.append(spec["name"])
                ids.append(spec["can_id"])
                if not _is_int(spec.get("period"), 1):
                    problems.append(f"{where}: period must be a "
                                    f"positive integer")
            for dup in sorted({n for n in names if names.count(n) > 1}):
                problems.append(f"network.can.frame_specs: duplicate "
                                f"frame name {dup!r}")
            for dup in sorted({i for i in ids if ids.count(i) > 1}):
                problems.append(f"network.can.frame_specs: duplicate "
                                f"CAN identifier {dup:#x}")
            can_frames = set(names)

    flexray = network.get("flexray")
    if flexray is not None:
        if not isinstance(flexray, dict):
            problems.append("network.flexray: expected an object or null")
        else:
            config = flexray.get("config")
            if not isinstance(config, dict):
                problems.append("network.flexray.config: expected an "
                                "object")
                config = {}
            for knob in ("slot_length", "n_static_slots",
                         "minislot_length", "n_minislots", "nit_length",
                         "bitrate_bps"):
                if not _is_int(config.get(knob), 1):
                    problems.append(f"network.flexray.config: {knob} "
                                    f"must be a positive integer")
            nodes = flexray.get("nodes")
            if not (isinstance(nodes, list) and nodes):
                problems.append("network.flexray: needs a non-empty "
                                "'nodes' list")
                nodes = []
            n_slots = config.get("n_static_slots")
            for i, writer in enumerate(flexray.get("static_writers")
                                       or []):
                where = f"network.flexray.static_writers[{i}]"
                if not isinstance(writer, dict):
                    problems.append(f"{where}: expected an object")
                    continue
                static_frames.add(writer.get("frame_name"))
                if writer.get("node") not in nodes:
                    problems.append(
                        f"{where}: node {writer.get('node')!r} is not "
                        f"in the cluster's node list")
                if _is_int(n_slots, 1) and not (
                        _is_int(writer.get("slot"), 1)
                        and writer["slot"] <= n_slots):
                    problems.append(
                        f"{where}: slot {writer.get('slot')!r} outside "
                        f"the static segment (1..{n_slots})")
            for i, writer in enumerate(flexray.get("dynamic_writers")
                                       or []):
                where = f"network.flexray.dynamic_writers[{i}]"
                if not isinstance(writer, dict):
                    problems.append(f"{where}: expected an object")
                    continue
                if writer.get("node") not in nodes:
                    problems.append(
                        f"{where}: node {writer.get('node')!r} is not "
                        f"in the cluster's node list")
    return can_frames, static_frames


def _validate_com(com, problems: list[str], fp_tasks, can_frames,
                  has_can: bool):
    if not isinstance(com, dict):
        problems.append("com: expected an object")
        return
    for i, frame in enumerate(com.get("frames") or []):
        where = f"com.frames[{i}]"
        if not (isinstance(frame, dict) and isinstance(
                frame.get("ipdu"), dict)):
            problems.append(f"{where}: expected an object with an "
                            f"'ipdu'")
            continue
        pdu_name = frame["ipdu"].get("name")
        if pdu_name not in can_frames:
            problems.append(
                f"{where}: I-PDU {pdu_name!r} has no matching "
                f"network.can frame spec (signal->frame packing "
                f"reference is dangling)")
        if frame.get("sender") not in fp_tasks:
            problems.append(
                f"{where}: sender {frame.get('sender')!r} is not a "
                f"fixed-priority ECU")
        for j, mapping in enumerate(frame["ipdu"].get("mappings") or []):
            if not (isinstance(mapping, dict)
                    and isinstance(mapping.get("signal"), dict)):
                problems.append(f"{where}.mappings[{j}]: expected a "
                                f"signal mapping object")

    chains = com.get("chains")
    if chains is None:
        problems.append("com.chains: expected a list (use [] for no "
                        "chain)")
        chains = []
    if len(chains) > 1:
        problems.append(f"com.chains: at most one E2E chain is "
                        f"supported, got {len(chains)}")
    for i, chain in enumerate(chains):
        where = f"com.chains[{i}]"
        if not isinstance(chain, dict):
            problems.append(f"{where}: expected an object")
            continue
        missing = [f for f in CHAIN_FIELDS if f not in chain]
        if missing:
            problems.append(f"{where}: missing chain field(s) "
                            f"{', '.join(missing)}")
            continue
        if not has_can:
            problems.append(f"{where}: an E2E chain needs a CAN bus "
                            f"(network.can is null)")
        for role in ("producer", "consumer"):
            ecu = chain[f"{role}_ecu"]
            task = chain[role]
            if ecu not in fp_tasks:
                problems.append(
                    f"{where}: {role} ECU {ecu!r} is not a "
                    f"fixed-priority ECU")
            elif task not in fp_tasks[ecu]:
                problems.append(
                    f"{where}: {role} task {task!r} is not a task of "
                    f"ECU {ecu!r}")
        if chain["pdu_name"] not in can_frames:
            problems.append(
                f"{where}: chain PDU {chain['pdu_name']!r} has no "
                f"matching network.can frame spec")
        if not _is_int(chain["period"], 1):
            problems.append(f"{where}: period must be a positive "
                            f"integer")
        elif _is_int(chain["timeout"]) \
                and chain["timeout"] < chain["period"]:
            problems.append(f"{where}: timeout below the chain period")


def _validate_resilience(resilience, problems: list[str], has_chain,
                         has_can, static_frames):
    if not isinstance(resilience, dict):
        problems.append("resilience: expected an object")
        return
    scenarios = resilience.get("scenarios")
    if not isinstance(scenarios, list):
        problems.append("resilience.scenarios: expected a list (use [] "
                        "for none)")
        return
    for i, scenario in enumerate(scenarios):
        where = f"resilience.scenarios[{i}]"
        if not isinstance(scenario, dict):
            problems.append(f"{where}: expected an object")
            continue
        kind = scenario.get("kind")
        if kind not in SCENARIO_KINDS:
            problems.append(
                f"{where}: unknown fault kind {kind!r}; expected one "
                f"of {', '.join(SCENARIO_KINDS)}")
            continue
        if not _is_int(scenario.get("start"), 0):
            problems.append(f"{where}: start must be a non-negative "
                            f"integer")
        if not _is_int(scenario.get("duration"), 1):
            problems.append(f"{where}: duration must be a positive "
                            f"integer")
        if kind == "flexray-slot-loss" \
                and scenario.get("target") not in static_frames:
            problems.append(
                f"{where}: target {scenario.get('target')!r} is not a "
                f"FlexRay static writer frame")
        if kind.startswith("e2e-") or kind in ("can-error-burst",
                                               "can-bus-off",
                                               "ecu-reset"):
            if not has_chain:
                problems.append(f"{where}: fault kind {kind!r} injects "
                                f"into the E2E chain, but the model "
                                f"has none")
        if kind == "tdma-babble" and not has_can:
            problems.append(f"{where}: fault kind {kind!r} needs a CAN "
                            f"bus")


def validate_document(doc) -> list[str]:
    """Every problem of ``doc``, as readable ``"<path>: <message>"``
    rows; an empty list means the document is valid."""
    if not isinstance(doc, dict):
        return ["model: document must be a JSON object"]
    problems: list[str] = []
    if doc.get("format") != FORMAT:
        problems.append(
            f"format: expected {FORMAT!r}, got {doc.get('format')!r} "
            f"(is this a repro.model document?)")
    version = doc.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        problems.append(
            f"format_version: unknown version {version!r}; this build "
            f"reads version(s) "
            f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)}")
        # The rest of the layout may legitimately differ in an unknown
        # version — stop here rather than emit misleading noise.
        return problems
    for section in SECTIONS:
        if section not in doc:
            problems.append(f"missing required section {section!r}")
    if problems:
        return problems

    meta = doc["meta"]
    if not isinstance(meta, dict):
        problems.append("meta: expected an object")
    elif not (isinstance(meta.get("name"), str) and meta["name"]):
        problems.append("meta.name: expected a non-empty string")

    fp_tasks, tdma_ecus, _resources = _validate_osek(doc["osek"],
                                                     problems)
    network = doc["network"] if isinstance(doc["network"], dict) else {}
    can_frames, static_frames = _validate_network(doc["network"],
                                                  problems)
    has_can = isinstance(network.get("can"), dict)
    com = doc["com"] if isinstance(doc["com"], dict) else {}
    _validate_com(doc["com"], problems, fp_tasks, can_frames, has_can)
    has_chain = bool(com.get("chains")) and has_can
    _validate_resilience(doc["resilience"], problems, has_chain,
                         has_can, static_frames)
    return problems


def ensure_valid(doc) -> None:
    """Raise :class:`ModelValidationError` unless ``doc`` validates."""
    problems = validate_document(doc)
    if problems:
        raise ModelValidationError(problems)


# ----------------------------------------------------------------------
# digest
# ----------------------------------------------------------------------
def canonical_json(doc: dict) -> str:
    """The canonical serialized form: sorted keys, no whitespace.

    Object key order never affects the digest; list order (tasks,
    frames, writers, scenarios) does — it is semantically meaningful
    (priority ties, packing order, plan order).
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def model_digest(doc: dict) -> str:
    """Deterministic SHA-256 over the canonical form — the model's
    traceability anchor (cited by reports and generated views)."""
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()
