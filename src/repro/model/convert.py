"""Per-subsystem dict converters shared by every serialized face.

One converter pair per building block — task specs, signals, I-PDUs,
CAN frame specs, CAN/FlexRay/TDMA plans, E2E chains, fault scenarios —
each mapping between the live dataclasses and plain JSON-native dicts
with every field spelled out (no pickling, readable by a human).

Both serialized faces of the library are built from these primitives:

* the **model document** of :mod:`repro.model.schema` (the versioned
  exchange format behind ``repro model`` and the scenario library);
* the **legacy corpus format** of :mod:`repro.verify.serialize`
  (flat ``GeneratedSystem`` dicts, as persisted under
  ``tests/corpus/``), which delegates here so the byte layout the
  corpus regression suite pins can never drift from the model's.

The cache keys of :mod:`repro.perf.keys` hash these dicts too, so a
field added here is automatically part of every layer's content key.
"""

from __future__ import annotations

from repro.com.ipdu import IPdu, SignalMapping
from repro.com.packing import PackedFrame
from repro.com.signal import SignalSpec
from repro.network.can import CanFrameSpec
from repro.network.flexray import (DynamicFrameSpec, FlexRayConfig,
                                   StaticSlotAssignment)
from repro.osek.task import TaskSpec
from repro.verify.generator import (CanPlan, ChainPlan, DynamicWriter,
                                    FaultScenario, FlexRayPlan,
                                    StaticWriter, TdmaPlan)


# ----------------------------------------------------------------------
# to dict
# ----------------------------------------------------------------------
def task_to_dict(task: TaskSpec) -> dict:
    return {"name": task.name, "wcet": task.wcet, "period": task.period,
            "offset": task.offset, "deadline": task.deadline,
            "priority": task.priority, "partition": task.partition,
            "max_activations": task.max_activations, "budget": task.budget,
            "jitter": task.jitter, "bcet": task.bcet,
            "criticality": task.criticality}


def signal_to_dict(spec: SignalSpec) -> dict:
    return {"name": spec.name, "width_bits": spec.width_bits,
            "initial": spec.initial, "transfer": spec.transfer,
            "timeout": spec.timeout}


def ipdu_to_dict(ipdu: IPdu) -> dict:
    return {"name": ipdu.name, "size_bytes": ipdu.size_bytes,
            "mappings": [{"signal": signal_to_dict(m.spec),
                          "start_bit": m.start_bit,
                          "update_bit": m.update_bit}
                         for m in ipdu.mappings]}


def frame_spec_to_dict(spec: CanFrameSpec) -> dict:
    return {"name": spec.name, "can_id": spec.can_id, "dlc": spec.dlc,
            "period": spec.period, "deadline": spec.deadline,
            "extended": spec.extended, "jitter": spec.jitter}


def can_to_dict(can: CanPlan) -> dict:
    return {"bitrate_bps": can.bitrate_bps,
            "frames": [{"ipdu": ipdu_to_dict(f.ipdu), "period": f.period,
                        "sender": f.sender} for f in can.frames],
            "frame_specs": [frame_spec_to_dict(s)
                            for s in can.frame_specs]}


def flexray_to_dict(plan: FlexRayPlan) -> dict:
    config = plan.config
    return {
        "config": {"slot_length": config.slot_length,
                   "n_static_slots": config.n_static_slots,
                   "minislot_length": config.minislot_length,
                   "n_minislots": config.n_minislots,
                   "nit_length": config.nit_length,
                   "bitrate_bps": config.bitrate_bps},
        "nodes": list(plan.nodes),
        "static_writers": [
            {"slot": w.assignment.slot, "node": w.assignment.node,
             "frame_name": w.assignment.frame_name,
             "base_cycle": w.assignment.base_cycle,
             "repetition": w.assignment.repetition,
             "period": w.period, "offset": w.offset}
            for w in plan.static_writers],
        "dynamic_writers": [
            {"name": w.spec.name, "frame_id": w.spec.frame_id,
             "size_bytes": w.spec.size_bytes, "node": w.node,
             "period": w.period, "offset": w.offset}
            for w in plan.dynamic_writers],
    }


def chain_to_dict(chain: ChainPlan) -> dict:
    return {"producer": chain.producer, "producer_ecu": chain.producer_ecu,
            "consumer": chain.consumer, "consumer_ecu": chain.consumer_ecu,
            "signal_name": chain.signal_name,
            "signal_bits": chain.signal_bits, "pdu_name": chain.pdu_name,
            "period": chain.period, "data_id": chain.data_id,
            "counter_bits": chain.counter_bits,
            "max_delta_counter": chain.max_delta_counter,
            "timeout": chain.timeout}


def tdma_to_dict(plan: TdmaPlan) -> dict:
    return {"ecu": plan.ecu, "partitions": list(plan.partitions),
            "major_frame": plan.major_frame,
            "tasks": [task_to_dict(t) for t in plan.tasks]}


def fault_to_dict(fault: FaultScenario) -> dict:
    return {"kind": fault.kind, "start": fault.start,
            "duration": fault.duration, "target": fault.target}


# ----------------------------------------------------------------------
# from dict
# ----------------------------------------------------------------------
def task_from_dict(data: dict) -> TaskSpec:
    return TaskSpec(data["name"], data["wcet"], period=data["period"],
                    offset=data["offset"], deadline=data["deadline"],
                    priority=data["priority"], partition=data["partition"],
                    max_activations=data["max_activations"],
                    budget=data["budget"], jitter=data["jitter"],
                    bcet=data["bcet"], criticality=data["criticality"])


def signal_from_dict(data: dict) -> SignalSpec:
    return SignalSpec(data["name"], data["width_bits"],
                      initial=data["initial"], transfer=data["transfer"],
                      timeout=data["timeout"])


def ipdu_from_dict(data: dict) -> IPdu:
    return IPdu(data["name"], data["size_bytes"],
                [SignalMapping(signal_from_dict(m["signal"]),
                               m["start_bit"], m["update_bit"])
                 for m in data["mappings"]])


def frame_spec_from_dict(data: dict) -> CanFrameSpec:
    return CanFrameSpec(data["name"], data["can_id"], dlc=data["dlc"],
                        period=data["period"], deadline=data["deadline"],
                        extended=data["extended"], jitter=data["jitter"])


def can_from_dict(data: dict) -> CanPlan:
    return CanPlan(
        data["bitrate_bps"],
        tuple(PackedFrame(ipdu_from_dict(f["ipdu"]), f["period"],
                          f["sender"]) for f in data["frames"]),
        tuple(frame_spec_from_dict(s) for s in data["frame_specs"]))


def flexray_from_dict(data: dict) -> FlexRayPlan:
    cfg = data["config"]
    config = FlexRayConfig(cfg["slot_length"], cfg["n_static_slots"],
                           minislot_length=cfg["minislot_length"],
                           n_minislots=cfg["n_minislots"],
                           nit_length=cfg["nit_length"],
                           bitrate_bps=cfg["bitrate_bps"])
    static = tuple(
        StaticWriter(StaticSlotAssignment(w["slot"], w["node"],
                                          w["frame_name"], w["base_cycle"],
                                          w["repetition"]),
                     w["period"], w["offset"])
        for w in data["static_writers"])
    dynamic = tuple(
        DynamicWriter(DynamicFrameSpec(w["name"], frame_id=w["frame_id"],
                                       size_bytes=w["size_bytes"]),
                      w["node"], w["period"], w["offset"])
        for w in data["dynamic_writers"])
    return FlexRayPlan(config, tuple(data["nodes"]), static, dynamic)


def chain_from_dict(data: dict) -> ChainPlan:
    return ChainPlan(**data)


def tdma_from_dict(data: dict) -> TdmaPlan:
    return TdmaPlan(data["ecu"], tuple(data["partitions"]),
                    data["major_frame"],
                    tuple(task_from_dict(t) for t in data["tasks"]))


def fault_from_dict(data: dict) -> FaultScenario:
    return FaultScenario(data["kind"], data["start"], data["duration"],
                         data.get("target", ""))
