"""Model-driven pytest generation with SHA-256 sync tracking.

The scenario library (:mod:`repro.model.scenarios`) is only as
trustworthy as the tests that pin it — and hand-written matrix tests
silently drift when a scenario document changes.  This module compiles
every model document into a **deterministic pytest module**: one
requirement-style test function per contract the model must honour
(schema validity, digest sync, round-trip identity, verify soundness,
trace invariants, resilience verdicts, DAQ measurement-digest
stability, structure inventory), each carrying a ``REQ-<MODEL>-NNN``
identifier and a docstring traced back to the model section it
exercises — the ICDEV requirement→test mapping applied to this
library's exchange format.

Sync tracking is the point: every generated file is recorded in a
**manifest** (``tests/generated/manifest.json``) mapping the source
model's :func:`~repro.model.schema.model_digest` to the generated
file's SHA-256.  ``repro model testgen --check`` re-renders the suite
in memory and compares three ways —

* rendered content vs the manifest entry (**STALE**: the model or the
  generator changed without regeneration);
* the manifest entry vs the bytes on disk (**EDITED**: a generated
  file was modified by hand);
* the rendered module set vs the files on disk (**MISSING** /
  **EXTRA**);

— so CI fails whenever either side of the model↔test mapping moves
alone.  Generation is byte-deterministic: no timestamps, sorted
iteration everywhere, and the behavioural pins (DAQ digest, structure
counts, resilience scenario count) are computed from the same
simulated-time machinery the generated tests re-run.

Exit-code contract (matching ``repro model``): ``0`` in sync / files
written, ``1`` drift or an invalid model, ``2`` an unreadable input.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.model import schema
from repro.model.build import Model, load_document
from repro.model.scenarios import SCENARIO_FILES, scenario_path

#: Bumping this forces every generated module STALE (regenerate).
GENERATOR_VERSION = 1

#: Where the committed suite lives (relative to the repo root).
DEFAULT_OUTPUT_DIR = os.path.join("tests", "generated")

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro.model.testgen/manifest"
MANIFEST_VERSION = 1

#: Sampling parameters baked into the DAQ-stability requirement: one
#: millisecond period over a twenty-millisecond horizon of simulated
#: time (literals are inlined into the generated module so it stays
#: self-contained).
DAQ_PERIOD_NS = 1_000_000
DAQ_HORIZON_NS = 20_000_000

#: Tests emitted per model (pinned by the manifest's ``tests`` field).
TESTS_PER_MODEL = 8


def _slug(name: str) -> str:
    """Identifier-safe slug of a model name (``adas-fusion`` ->
    ``adas_fusion``)."""
    slug = re.sub(r"[^0-9A-Za-z]+", "_", name).strip("_").lower()
    if not slug:
        raise ConfigurationError(
            f"model name {name!r} reduces to an empty slug")
    return slug


def file_sha256(content: str) -> str:
    """SHA-256 of a generated module's exact byte content."""
    return hashlib.sha256(content.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GeneratedModule:
    """One rendered pytest module and its provenance."""

    filename: str
    source: str        #: the ref this was generated from (name or path)
    source_path: str   #: the document file behind the ref
    model_digest: str
    content: str

    @property
    def sha256(self) -> str:
        return file_sha256(self.content)

    def manifest_entry(self) -> dict:
        return {
            "file": self.filename,
            "source": self.source,
            "source_path": self.source_path,
            "model_digest": self.model_digest,
            "sha256": self.sha256,
            "tests": TESTS_PER_MODEL,
        }


# ----------------------------------------------------------------------
# facts: everything the generated module pins as a literal
# ----------------------------------------------------------------------
def _structure(system) -> dict:
    """The inventory literals of one compiled system."""
    tdma_tasks = 0 if system.tdma is None else len(system.tdma.tasks)
    return {
        "ecus": len(system.tasksets) + (0 if system.tdma is None else 1),
        "tasks": sum(len(ts) for ts in system.tasksets.values())
        + tdma_tasks,
        "can_frames": 0 if system.can is None else len(system.can.frames),
        "has_flexray": system.flexray is not None,
        "has_chain": system.chain is not None,
        "declared_faults": len(system.faults),
    }


def model_facts(model: Model) -> dict:
    """Every behavioural pin the generated module embeds: structure
    counts, the resilience scenario count (declared or the standard
    matrix), and the DAQ measurement digest at the baked-in sampling
    parameters.  Deterministic — same model, same facts."""
    from repro.meas.batch import measure_models
    from repro.verify.resilience import standard_scenarios

    system = model.build()
    facts = _structure(system)
    facts["resilience_scenarios"] = (
        len(system.faults) if system.faults
        else len(standard_scenarios(system)))
    report = measure_models([model], period=DAQ_PERIOD_NS,
                            horizon=DAQ_HORIZON_NS)
    facts["daq_samples"] = report.sample_count
    facts["daq_digest"] = report.digest()
    return facts


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _req(name: str, number: int) -> tuple[str, str]:
    """(function-name prefix, requirement id) for test ``number``."""
    upper = re.sub(r"[^0-9A-Za-z]+", "-", name).strip("-").upper()
    return (f"test_REQ_{_slug(name).upper()}_{number:03d}",
            f"REQ-{upper}-{number:03d}")


def _loader_lines(source: str, source_path: str,
                  bundled: bool) -> list[str]:
    if bundled:
        return [
            f'SOURCE = "{source}"  # bundled scenario name',
            "",
            "",
            "def _document() -> dict:",
            "    from repro.model.scenarios import scenario_path",
            "    return load_document(scenario_path(SOURCE))",
        ]
    return [
        f"SOURCE = {source_path!r}  # model document path",
        "",
        "",
        "def _document() -> dict:",
        "    return load_document(SOURCE)",
    ]


def render_module(model: Model, source: str, source_path: str,
                  bundled: bool) -> str:
    """The full pytest module for one model, as a deterministic
    string (byte-identical across runs for the same model + code)."""
    name = model.name
    digest = model.digest()
    facts = model_facts(model)
    slug = _slug(name)
    fault_origin = ("declared in resilience.scenarios"
                    if facts["declared_faults"]
                    else "the standard fault matrix")

    def test(number: int, label: str, sections: str, doc: str,
             body: list[str]) -> list[str]:
        fn, req = _req(name, number)
        head = [f"def {fn}_{label}():",
                f'    """{req} [{sections}] — {doc}"""']
        return ["", ""] + head + body

    lines = [
        '"""GENERATED TEST SUITE — DO NOT EDIT BY HAND.',
        "",
        f"Source model : {name}",
        f"Source file  : {source_path}",
        f"Model digest : sha256:{digest}",
        f"Generator    : repro.model.testgen v{GENERATOR_VERSION}",
        "",
        "Regenerate after any intentional model or behaviour change:",
        "",
        "    PYTHONPATH=src python -m repro model testgen",
        "",
        "Drift between the model and this suite is detected by the CI",
        "gate (testgen-smoke):",
        "",
        "    PYTHONPATH=src python -m repro model testgen --check",
        "",
        "The sync manifest next to this file maps the source model",
        "digest to this file's SHA-256.",
        '"""',
        "",
        "import functools",
        "",
        "from repro.model.build import Model, load_document",
        "from repro.model.schema import model_digest, validate_document",
        "",
        f'MODEL_DIGEST = "{digest}"',
    ]
    lines += _loader_lines(source, source_path, bundled)
    lines += [
        "",
        "",
        "@functools.lru_cache(maxsize=None)",
        "def _model() -> Model:",
        "    return Model.from_document(_document(), validate=False)",
    ]

    lines += test(
        1, "schema_valid", "meta, osek, com, network, resilience",
        f"the committed document validates against format_version "
        f"{schema.FORMAT_VERSION} with zero problems.",
        ["    assert validate_document(_document()) == []"])

    lines += test(
        2, "source_digest_in_sync", "meta",
        "the committed document is byte-for-byte the one this suite\n"
        "    was generated from (the sync anchor — on mismatch,\n"
        "    regenerate with `repro model testgen`).",
        ["    assert model_digest(_document()) == MODEL_DIGEST"])

    lines += test(
        3, "roundtrip_digest_identical", "osek, com, network",
        "model -> live system -> model round-trips to the identical\n"
        "    digest: the exchange format loses nothing any executable\n"
        "    view needs.",
        ["    assert _model().roundtrip().digest() == MODEL_DIGEST"])

    lines += test(
        4, "structure_inventory", "osek, com, network, resilience",
        f"the compiled system exposes exactly the modelled inventory:\n"
        f"    {facts['ecus']} ECU(s), {facts['tasks']} task(s), "
        f"{facts['can_frames']} CAN frame(s),\n"
        f"    flexray={facts['has_flexray']}, "
        f"chain={facts['has_chain']}, "
        f"{facts['declared_faults']} declared fault scenario(s).",
        ["    system = _model().build()",
         "    tdma_tasks = (0 if system.tdma is None",
         "                  else len(system.tdma.tasks))",
         "    ecus = len(system.tasksets) + \\",
         "        (0 if system.tdma is None else 1)",
         "    tasks = sum(len(ts) for ts in system.tasksets.values()) \\",
         "        + tdma_tasks",
         f"    assert ecus == {facts['ecus']}",
         f"    assert tasks == {facts['tasks']}",
         "    frames = (0 if system.can is None",
         "              else len(system.can.frames))",
         f"    assert frames == {facts['can_frames']}",
         f"    assert (system.flexray is not None) is "
         f"{facts['has_flexray']}",
         f"    assert (system.chain is not None) is "
         f"{facts['has_chain']}",
         f"    assert len(system.faults) == {facts['declared_faults']}"])

    lines += test(
        5, "verify_sound", "osek, com, network",
        "every analytic bound holds against the simulated\n"
        "    observation: 0 soundness violations, 0 trace-invariant\n"
        "    violations, no declined layer.",
        ["    from repro.model.build import verify_models",
         "    report = verify_models([_model()])",
         "    assert report.soundness_violations == 0",
         "    assert report.invariant_violations == 0",
         "    assert report.passed",
         "    assert all(not v.declined for v in report.verdicts)"])

    lines += test(
        6, "trace_invariants_hold", "osek, network",
        "replaying the nominal simulation trace through every\n"
        "    pluggable invariant (CPU overlap, TDMA windows, priority\n"
        "    ceiling, alive counter, E2E containment) yields zero\n"
        "    violations.",
        ["    from repro.verify import (InvariantChecker, build_system,",
         "                              make_invariants)",
         "    system = _model().build()",
         "    built = build_system(system)",
         "    built.sim.run_until(built.horizon)",
         "    checker = InvariantChecker(make_invariants(system))",
         "    assert checker.run(built.trace) == []"])

    lines += test(
        7, "resilience_verdicts", "resilience",
        f"all {facts['resilience_scenarios']} fault scenario(s) "
        f"({fault_origin}) are\n"
        "    detected within the analytic bound, contained, and\n"
        "    recovered: 0 unmet obligations.",
        ["    from repro.model.build import resilience_models",
         "    report = resilience_models([_model()])",
         "    assert report.unmet == 0",
         "    assert report.passed",
         "    scenarios = sum(len(row['verdicts'])",
         "                    for row in report.rows)",
         f"    assert scenarios == {facts['resilience_scenarios']}"])

    lines += test(
        8, "daq_measurement_digest_stable", "meas",
        f"sampling the default DAQ list (period "
        f"{DAQ_PERIOD_NS} ns, horizon\n"
        f"    {DAQ_HORIZON_NS} ns of simulated time) reproduces the\n"
        "    generation-time measurement digest byte-for-byte.",
        ["    from repro.meas.batch import measure_models",
         f"    report = measure_models([_model()], "
         f"period={DAQ_PERIOD_NS},",
         f"                            horizon={DAQ_HORIZON_NS})",
         f"    assert report.sample_count == {facts['daq_samples']}",
         "    assert report.digest() == \\",
         f"        \"{facts['daq_digest']}\""])

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# planning: refs -> rendered modules
# ----------------------------------------------------------------------
def _resolve(ref: str) -> tuple[Model, str, bool]:
    """(validated model, document path, is-bundled) behind ``ref``.

    Raises :class:`ConfigurationError` for unreadable inputs and
    :class:`~repro.model.schema.ModelValidationError` for invalid
    documents (the CLI maps them to exit 2 / 1 respectively)."""
    if ref in SCENARIO_FILES:
        path = scenario_path(ref)
        document = load_document(path)
        relative = os.path.relpath(path)
        source_path = relative if not relative.startswith("..") else path
        return (Model.from_document(document), source_path, True)
    try:
        document = load_document(ref)
    except OSError as exc:
        raise ConfigurationError(f"{ref}: cannot read ({exc})")
    return Model.from_data(document), ref, False


def plan_modules(refs: Optional[Sequence[str]] = None
                 ) -> list[GeneratedModule]:
    """Render every requested model (default: all bundled scenarios)
    in memory, sorted by generated filename."""
    refs = list(refs) if refs else sorted(SCENARIO_FILES)
    modules = []
    seen: dict[str, str] = {}
    for ref in refs:
        model, source_path, bundled = _resolve(ref)
        filename = f"test_gen_{_slug(model.name)}.py"
        if filename in seen:
            raise ConfigurationError(
                f"{ref}: generated module {filename!r} collides with "
                f"{seen[filename]!r} (model names must have distinct "
                f"slugs)")
        seen[filename] = ref
        modules.append(GeneratedModule(
            filename, ref, source_path, model.digest(),
            render_module(model, ref, source_path, bundled)))
    return sorted(modules, key=lambda m: m.filename)


def build_manifest(modules: Sequence[GeneratedModule]) -> dict:
    return {
        "format": MANIFEST_FORMAT,
        "format_version": MANIFEST_VERSION,
        "generator_version": GENERATOR_VERSION,
        "entries": [m.manifest_entry() for m in modules],
    }


def manifest_json(manifest: dict) -> str:
    """Canonical on-disk form of the manifest (stable across runs)."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# write + check
# ----------------------------------------------------------------------
def write_suite(refs: Optional[Sequence[str]] = None,
                output_dir: str = DEFAULT_OUTPUT_DIR
                ) -> list[GeneratedModule]:
    """Generate (or regenerate) the suite and its manifest on disk.

    Stale ``test_gen_*.py`` files from removed models are deleted so
    the directory always mirrors the manifest exactly."""
    modules = plan_modules(refs)
    os.makedirs(output_dir, exist_ok=True)
    keep = {m.filename for m in modules} | {MANIFEST_NAME}
    for name in sorted(os.listdir(output_dir)):
        if name.startswith("test_gen_") and name.endswith(".py") \
                and name not in keep:
            os.remove(os.path.join(output_dir, name))
    for module in modules:
        with open(os.path.join(output_dir, module.filename), "w",
                  encoding="utf-8") as handle:
            handle.write(module.content)
    with open(os.path.join(output_dir, MANIFEST_NAME), "w",
              encoding="utf-8") as handle:
        handle.write(manifest_json(build_manifest(modules)))
    return modules


def _disk_sha(path: str) -> Optional[str]:
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return None


def check_suite(refs: Optional[Sequence[str]] = None,
                output_dir: str = DEFAULT_OUTPUT_DIR
                ) -> tuple[bool, list[str]]:
    """Compare the committed suite against an in-memory regeneration.

    Returns ``(in_sync, report lines)``.  Problems are reported per
    file as STALE / EDITED / MISSING / EXTRA (see module docstring);
    unreadable or invalid models raise and are mapped to exit codes by
    the CLI."""
    modules = plan_modules(refs)
    lines: list[str] = []
    problems = 0

    manifest_path = os.path.join(output_dir, MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError:
        return False, [f"{manifest_path}: MISSING — no sync manifest; "
                       f"run `repro model testgen`"]
    except json.JSONDecodeError as exc:
        return False, [f"{manifest_path}: EDITED — manifest is not "
                       f"valid JSON ({exc}); run `repro model testgen`"]
    entries = {e.get("file"): e for e in manifest.get("entries", [])}
    if manifest.get("generator_version") != GENERATOR_VERSION:
        lines.append(
            f"{manifest_path}: STALE — generated by generator "
            f"v{manifest.get('generator_version')}, this build is "
            f"v{GENERATOR_VERSION}; run `repro model testgen`")
        problems += 1

    for module in modules:
        path = os.path.join(output_dir, module.filename)
        entry = entries.pop(module.filename, None)
        disk = _disk_sha(path)
        if entry is None or disk is None:
            lines.append(f"{module.source}: MISSING — {path} is not "
                         f"tracked/present; run `repro model testgen`")
            problems += 1
            continue
        if entry.get("sha256") != module.sha256 \
                or entry.get("model_digest") != module.model_digest:
            if entry.get("model_digest") != module.model_digest:
                why = (f"the model changed (digest "
                       f"{str(entry.get('model_digest'))[:12]} -> "
                       f"{module.model_digest[:12]})")
            else:
                why = ("generated behaviour pins changed (generator "
                       "or library behaviour moved)")
            lines.append(f"{module.source}: STALE — {why} without "
                         f"regeneration; run `repro model testgen`")
            problems += 1
            continue
        if disk != entry.get("sha256"):
            lines.append(
                f"{module.source}: EDITED — {path} was modified by "
                f"hand (sha {disk[:12]} != manifest "
                f"{entry['sha256'][:12]}); never edit generated "
                f"files, change the model and regenerate")
            problems += 1
            continue
        lines.append(f"{module.source}: OK {module.filename} "
                     f"model={module.model_digest[:12]} "
                     f"file={module.sha256[:12]}")

    for leftover in sorted(entries):
        lines.append(f"{leftover}: EXTRA — tracked in the manifest but "
                     f"not generated from the requested models; run "
                     f"`repro model testgen`")
        problems += 1
    if os.path.isdir(output_dir):
        tracked = {m.filename for m in modules} | set(
            e.get("file") for e in manifest.get("entries", []))
        for name in sorted(os.listdir(output_dir)):
            if name.startswith("test_gen_") and name.endswith(".py") \
                    and name not in tracked:
                lines.append(f"{name}: EXTRA — present in {output_dir} "
                             f"but not in the manifest; run "
                             f"`repro model testgen`")
                problems += 1

    verdict = ("IN SYNC" if problems == 0
               else f"DRIFT ({problems} problem(s))")
    lines.append(f"generated suite: {verdict} "
                 f"({len(modules)} module(s), "
                 f"{len(modules) * TESTS_PER_MODEL} test(s))")
    return problems == 0, lines
