"""Versioned declarative system exchange format (the paper's §2 made real).

The paper's methodology is *meta-model plus exchange format*: one
declarative description of the complete distributed system — OS
configuration, COM packing, bus schedules, E2E chains, recovery
policies — from which every executable view is derived.  This package
is that format for the repro library:

* :mod:`repro.model.schema` — the document layout, explicit
  ``format_version``, structural + reference-integrity validation with
  human-readable error messages, and a deterministic SHA-256 model
  digest for traceability;
* :mod:`repro.model.convert` — the per-subsystem dict converters
  (tasks, signals, I-PDUs, CAN/FlexRay/TDMA plans, chains, fault
  scenarios) shared with the legacy corpus format of
  :mod:`repro.verify.serialize`;
* :mod:`repro.model.build` — compile a validated model into the live
  :class:`~repro.verify.generator.GeneratedSystem` the differential
  oracle consumes, and back, so ``repro verify`` / ``repro
  resilience`` / ``repro fuzz`` all run from a model file;
* :mod:`repro.model.scenarios` — the bundled scenario library
  (ADAS sensor fusion, gateway-heavy multi-bus, TDMA overload,
  FlexRay mixed cluster, limp-home cascade), each loadable by name;
* :mod:`repro.model.testgen` — model-driven pytest generation: compile
  every model into a deterministic requirement-traced test module under
  ``tests/generated/`` with a SHA-256 sync manifest, and detect drift
  between models and their generated tests (``repro model testgen
  --check``);
* :mod:`repro.model.cli` — the ``repro model`` subcommand
  (``validate`` / ``digest`` / ``convert`` / ``testgen`` /
  ``scenarios``).
"""

from repro.model.build import (Model, load_document, model_from_system,
                               resilience_models, system_from_model,
                               verify_models)
from repro.model.schema import (FORMAT, FORMAT_VERSION, SUPPORTED_VERSIONS,
                                ModelValidationError, canonical_json,
                                ensure_valid, is_model_document,
                                model_digest, validate_document)
from repro.model.scenarios import (load_scenario, scenario_description,
                                   scenario_names, scenario_path)

__all__ = [
    "FORMAT", "FORMAT_VERSION", "SUPPORTED_VERSIONS",
    "ModelValidationError", "canonical_json", "ensure_valid",
    "is_model_document", "model_digest", "validate_document",
    "Model", "load_document", "model_from_system", "system_from_model",
    "verify_models", "resilience_models",
    "load_scenario", "scenario_description", "scenario_names",
    "scenario_path",
]
