"""The COM service: signal-level communication over packed I-PDUs.

One :class:`ComStack` runs per node.  On the transmit side it owns the
node's outgoing I-PDUs and their transmission modes (periodic, direct,
mixed); on the receive side it unpacks incoming PDUs into signal values,
fires per-signal callbacks, and monitors reception deadlines — the
"communication errors" use case of the paper's error-handling concept is
driven by these timeout notifications.

The stack is bus-agnostic: a small adapter binds it to a CAN controller
(:class:`CanComAdapter`) or a FlexRay static slot
(:class:`FlexRayComAdapter`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.com.ipdu import IPdu
from repro.com.signal import SignalSpec, SignalValue, TRIGGERED
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

PERIODIC = "periodic"
DIRECT = "direct"
MIXED = "mixed"


class CanComAdapter:
    """Binds a ComStack to a CAN controller via a PDU -> frame map."""

    def __init__(self, controller, frame_specs: dict[str, object]):
        self.controller = controller
        self.frame_specs = frame_specs
        self._rx_callback = None
        controller.on_receive(self._on_frame)

    def transmit(self, ipdu: IPdu, payload: int) -> None:
        """Send the PDU's payload as its configured CAN frame."""
        spec = self.frame_specs.get(ipdu.name)
        if spec is None:
            raise ConfigurationError(
                f"no CAN frame configured for ipdu {ipdu.name}")
        self.controller.send(spec, payload)

    def set_rx_callback(self, callback: Callable[[str, int], None]) -> None:
        """Install the ComStack's PDU-reception entry point."""
        self._rx_callback = callback

    def _on_frame(self, spec, msg) -> None:
        if self._rx_callback is not None:
            self._rx_callback(spec.name, msg.payload)


class FlexRayComAdapter:
    """Binds a ComStack to FlexRay static slots via a PDU -> slot map."""

    def __init__(self, controller, slot_of_pdu: dict[str, int]):
        self.controller = controller
        self.slot_of_pdu = slot_of_pdu
        self._rx_callback = None
        controller.on_receive(self._on_frame)

    def transmit(self, ipdu: IPdu, payload: int) -> None:
        """Write the PDU's payload into its static slot buffer."""
        slot = self.slot_of_pdu.get(ipdu.name)
        if slot is None:
            raise ConfigurationError(
                f"no FlexRay slot configured for ipdu {ipdu.name}")
        self.controller.send_static(slot, payload)

    def set_rx_callback(self, callback: Callable[[str, int], None]) -> None:
        """Install the ComStack's PDU-reception entry point."""
        self._rx_callback = callback

    def _on_frame(self, frame_name, msg, slot) -> None:
        if self._rx_callback is not None:
            self._rx_callback(frame_name, msg.payload)


class TteComAdapter:
    """Binds a ComStack to TT-Ethernet streams (one per PDU).

    ``transmit`` updates the stream's payload buffer; the switch ships
    it at the stream's scheduled dispatch instants — time-triggered
    state transfer, like a FlexRay static slot.
    """

    def __init__(self, switch, node: str, tx_streams: set,
                 rx_streams: set):
        self.switch = switch
        self.node = node
        self.tx_streams = set(tx_streams)
        self.rx_streams = set(rx_streams)
        self._rx_callback = None
        #: stream -> write stamp of the last payload delivered upward.
        #: A TT stream re-ships its buffer every period; the COM layer
        #: must see each *written* payload exactly once (its update bits
        #: are only valid for the write that produced it).
        self._last_stamp: dict[str, int] = {}
        switch.on_receive(node, self._on_frame)

    def transmit(self, ipdu: IPdu, payload: int) -> None:
        """Update the PDU's TT stream buffer (shipped on schedule)."""
        if ipdu.name not in self.tx_streams:
            raise ConfigurationError(
                f"no TT stream configured for ipdu {ipdu.name}")
        self.switch.set_tt_payload(ipdu.name, payload)

    def set_rx_callback(self, callback: Callable[[str, int], None]) -> None:
        """Install the ComStack's PDU-reception entry point."""
        self._rx_callback = callback

    def _on_frame(self, name, msg) -> None:
        if self._rx_callback is None or name not in self.rx_streams \
                or msg.payload is None:
            return
        if self._last_stamp.get(name) == msg.enqueue_time:
            return  # periodic re-shipment of an already-seen write
        self._last_stamp[name] = msg.enqueue_time
        self._rx_callback(name, msg.payload)


class TxPdu:
    """Transmit-side state of one I-PDU."""

    def __init__(self, ipdu: IPdu, mode: str, period: Optional[int],
                 group: Optional[str] = None):
        if mode not in (PERIODIC, DIRECT, MIXED):
            raise ConfigurationError(f"ipdu {ipdu.name}: unknown mode {mode}")
        if mode in (PERIODIC, MIXED) and (period is None or period <= 0):
            raise ConfigurationError(
                f"ipdu {ipdu.name}: {mode} mode needs a positive period")
        self.ipdu = ipdu
        self.mode = mode
        self.period = period
        self.group = group
        self.enabled = True
        self.tx_count = 0


class ComStack:
    """Per-node COM service instance."""

    def __init__(self, sim: Simulator, adapter, node: str,
                 trace: Optional[Trace] = None):
        self.sim = sim
        self.adapter = adapter
        self.node = node
        self.trace = trace if trace is not None else Trace()
        self._signals: dict[str, SignalValue] = {}
        self._tx_pdus: dict[str, TxPdu] = {}
        self._rx_pdus: dict[str, IPdu] = {}
        self._signal_to_tx_pdu: dict[str, TxPdu] = {}
        self._rx_callbacks: dict[str, list[Callable]] = {}
        self._timeout_callbacks: dict[str, list[Callable]] = {}
        self._timeout_handles: dict[str, object] = {}
        self.timed_out: set[str] = set()
        #: interposers on the rx path (fault injection): each gets
        #: (pdu_name, payload) and returns the payload to pass on, or
        #: None to drop the PDU.  A registry instead of ad-hoc method
        #: capture so several interposers stack and revert safely.
        self._rx_filters: list[Callable[[str, int], Optional[int]]] = []
        #: e2e protection: pdu name -> E2eSender / E2eReceiver.
        self._tx_protectors: dict[str, object] = {}
        self._rx_checkers: dict[str, object] = {}
        #: forced app-visible signal values (error reaction: substitute
        #: a default/last-good value while the source is untrusted).
        self._substitutions: dict[str, int] = {}
        # Late-bound so fault adapters can interpose on _on_pdu.
        adapter.set_rx_callback(
            lambda name, payload: self._dispatch_pdu(name, payload))

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_tx_pdu(self, ipdu: IPdu, mode: str = PERIODIC,
                   period: Optional[int] = None,
                   group: Optional[str] = None) -> None:
        """Register an outgoing PDU; its signals become writable here.

        ``group`` assigns the PDU to an I-PDU group, which mode
        management can switch off and on as a unit (e.g. silencing
        comfort traffic in a limp-home mode).
        """
        if ipdu.name in self._tx_pdus:
            raise ConfigurationError(f"duplicate tx pdu {ipdu.name}")
        tx = TxPdu(ipdu, mode, period, group)
        self._tx_pdus[ipdu.name] = tx
        for mapping in ipdu.mappings:
            self._register_signal(mapping.spec)
            self._signal_to_tx_pdu[mapping.spec.name] = tx
        if mode in (PERIODIC, MIXED):
            self._schedule_periodic(tx)

    def add_rx_pdu(self, ipdu: IPdu) -> None:
        """Register an incoming PDU; its signals become readable here and
        their reception deadlines are monitored."""
        if ipdu.name in self._rx_pdus:
            raise ConfigurationError(f"duplicate rx pdu {ipdu.name}")
        self._rx_pdus[ipdu.name] = ipdu
        for mapping in ipdu.mappings:
            self._register_signal(mapping.spec)
            if mapping.spec.timeout is not None:
                self._arm_timeout(mapping.spec)

    def tx_pdu(self, pdu_name: str) -> TxPdu:
        """Transmit-side state of a registered tx PDU."""
        tx = self._tx_pdus.get(pdu_name)
        if tx is None:
            raise ConfigurationError(
                f"node {self.node}: unknown tx pdu {pdu_name!r}")
        return tx

    def rx_pdu(self, pdu_name: str) -> IPdu:
        """A registered rx PDU by name."""
        ipdu = self._rx_pdus.get(pdu_name)
        if ipdu is None:
            raise ConfigurationError(
                f"node {self.node}: unknown rx pdu {pdu_name!r}")
        return ipdu

    def protect_tx_pdu(self, pdu_name: str, sender) -> None:
        """Attach an E2E sender: every transmission of the PDU is
        stamped with the sender's counter and CRC fields."""
        self.tx_pdu(pdu_name)  # must exist
        if pdu_name in self._tx_protectors:
            raise ConfigurationError(
                f"node {self.node}: tx pdu {pdu_name} already protected")
        self._tx_protectors[pdu_name] = sender

    def protect_rx_pdu(self, pdu_name: str, receiver) -> None:
        """Attach an E2E receiver: every reception of the PDU is checked
        before its signals reach the application; receptions that fail
        the check are contained (values and callbacks untouched)."""
        self.rx_pdu(pdu_name)  # must exist
        if pdu_name in self._rx_checkers:
            raise ConfigurationError(
                f"node {self.node}: rx pdu {pdu_name} already protected")
        self._rx_checkers[pdu_name] = receiver

    def add_rx_filter(self,
                      fltr: Callable[[str, int], Optional[int]]) -> None:
        """Install an rx-path interposer (idempotent per filter)."""
        if fltr not in self._rx_filters:
            self._rx_filters.append(fltr)

    def remove_rx_filter(self,
                         fltr: Callable[[str, int], Optional[int]]) -> None:
        """Uninstall an rx-path interposer (no-op when absent)."""
        if fltr in self._rx_filters:
            self._rx_filters.remove(fltr)

    def _register_signal(self, spec: SignalSpec) -> None:
        existing = self._signals.get(spec.name)
        if existing is not None and existing.spec is not spec:
            raise ConfigurationError(
                f"signal {spec.name} registered twice with different specs")
        if existing is None:
            self._signals[spec.name] = SignalValue(spec)
            self._rx_callbacks[spec.name] = []
            self._timeout_callbacks[spec.name] = []

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def write_signal(self, name: str, value: int) -> None:
        """Write a signal value; TRIGGERED signals transmit immediately."""
        signal = self._require(name)
        signal.write(value, self.sim.now)
        tx = self._signal_to_tx_pdu.get(name)
        if tx is None:
            return
        if signal.spec.transfer == TRIGGERED and tx.mode in (DIRECT, MIXED):
            self._transmit(tx)

    def read_signal(self, name: str) -> int:
        """Current value of a signal (initial value before any reception).

        While a substitution is active (error reaction), the substituted
        value is returned instead of the received one.
        """
        substituted = self._substitutions.get(name)
        if substituted is not None:
            return substituted
        return self._require(name).value

    def substitute_signal(self, name: str, value: int) -> None:
        """Force the app-visible value of a signal (degraded operation:
        reads return ``value`` until :meth:`clear_substitution`).  The
        underlying reception state keeps updating in the background so
        clearing the substitution resumes with live data."""
        signal = self._require(name)
        signal.spec._check_range(value)
        self._substitutions[name] = value
        self.trace.log(self.sim.now, "com.substituted", name,
                       node=self.node, value=value)

    def clear_substitution(self, name: str) -> None:
        """Drop a forced signal value; reads see live data again."""
        self._require(name)
        if self._substitutions.pop(name, None) is not None:
            self.trace.log(self.sim.now, "com.substitution_cleared", name,
                           node=self.node)

    def substituted_signals(self) -> list[str]:
        """Names of signals currently carrying a forced value."""
        return sorted(self._substitutions)

    def send_pdu(self, pdu_name: str) -> None:
        """Transmit a tx PDU now, regardless of its mode.

        Used by callers that need call-style semantics: update several
        signals, then ship them in one frame (e.g. the RTE's remote
        operation invocation).
        """
        tx = self._tx_pdus.get(pdu_name)
        if tx is None:
            raise ConfigurationError(
                f"node {self.node}: unknown tx pdu {pdu_name!r}")
        self._transmit(tx)

    def signal_age(self, name: str) -> Optional[int]:
        """ns since last reception of the signal (None = never received)."""
        signal = self._require(name)
        if signal.last_reception is None:
            return None
        return self.sim.now - signal.last_reception

    def on_signal(self, name: str, callback: Callable[[int], None]) -> None:
        """Callback on each fresh reception of a signal value."""
        self._require(name)
        self._rx_callbacks[name].append(callback)

    def on_timeout(self, name: str, callback: Callable[[], None]) -> None:
        """Callback when the signal's reception deadline elapses."""
        signal = self._require(name)
        if signal.spec.timeout is None:
            raise ConfigurationError(
                f"signal {name} has no timeout configured")
        self._timeout_callbacks[name].append(callback)

    def _require(self, name: str) -> SignalValue:
        signal = self._signals.get(name)
        if signal is None:
            raise ConfigurationError(
                f"node {self.node}: unknown signal {name!r}")
        return signal

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def _schedule_periodic(self, tx: TxPdu) -> None:
        def fire():
            self._transmit(tx)
            self.sim.schedule(tx.period, fire)

        self.sim.schedule(tx.period, fire)

    def set_group_enabled(self, group: str, enabled: bool) -> int:
        """Enable/disable every tx PDU of an I-PDU group; returns the
        number of PDUs affected.  Disabled PDUs transmit nothing (their
        periodic timers keep running so re-enabling needs no re-sync)."""
        affected = 0
        for tx in self._tx_pdus.values():
            if tx.group == group:
                tx.enabled = enabled
                affected += 1
        if affected == 0:
            raise ConfigurationError(
                f"node {self.node}: no tx pdus in group {group!r}")
        return affected

    def _transmit(self, tx: TxPdu) -> None:
        if not tx.enabled:
            self.trace.log(self.sim.now, "com.tx_suppressed", tx.ipdu.name,
                           node=self.node)
            return
        values = {}
        updated = set()
        for mapping in tx.ipdu.mappings:
            signal = self._signals[mapping.spec.name]
            values[mapping.spec.name] = signal.value
            if signal.consume_update():
                updated.add(mapping.spec.name)
        protector = self._tx_protectors.get(tx.ipdu.name)
        if protector is not None:
            protector.protect(values, updated)
        payload = tx.ipdu.pack(values, updated)
        tx.tx_count += 1
        self.trace.log(self.sim.now, "com.tx", tx.ipdu.name, node=self.node)
        self.adapter.transmit(tx.ipdu, payload)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _dispatch_pdu(self, pdu_name: str, payload: int) -> None:
        """Adapter entry point: run interposers, then process the PDU."""
        for fltr in list(self._rx_filters):
            payload = fltr(pdu_name, payload)
            if payload is None:
                return  # interposer dropped the PDU
        self._on_pdu(pdu_name, payload)

    def _on_pdu(self, pdu_name: str, payload: int) -> None:
        ipdu = self._rx_pdus.get(pdu_name)
        if ipdu is None:
            return  # not for us
        if not isinstance(payload, int):
            raise ConfigurationError(
                f"node {self.node}: pdu {pdu_name} carried non-integer "
                f"payload {payload!r}")
        now = self.sim.now
        checker = self._rx_checkers.get(pdu_name)
        if checker is not None:
            from repro.com.e2e import E2E_OK
            if checker.check(payload) != E2E_OK:
                # Containment: a failed check never reaches the
                # application — no value update, no callbacks, no
                # deadline-rearm credit for the corrupt reception.
                self.trace.log(now, "com.rx_blocked", pdu_name,
                               node=self.node, verdict=checker.state)
                return
        self.trace.log(now, "com.rx", pdu_name, node=self.node)
        for name, decoded in ipdu.unpack(payload).items():
            signal = self._signals[name]
            signal.last_reception = now
            if name in self.timed_out:
                self.timed_out.remove(name)
                self.trace.log(now, "com.timeout_recovered", name,
                               node=self.node)
            if signal.spec.timeout is not None:
                self._arm_timeout(signal.spec)
            if not decoded["updated"]:
                continue
            signal.value = decoded["value"]
            for callback in self._rx_callbacks[name]:
                callback(decoded["value"])

    def _arm_timeout(self, spec: SignalSpec) -> None:
        handle = self._timeout_handles.get(spec.name)
        if handle is not None:
            handle.cancel()
        self._timeout_handles[spec.name] = self.sim.schedule(
            spec.timeout, lambda: self._timeout_fired(spec))

    def _timeout_fired(self, spec: SignalSpec) -> None:
        self._timeout_handles[spec.name] = None
        self.timed_out.add(spec.name)
        self.trace.log(self.sim.now, "com.timeout", spec.name,
                       node=self.node)
        for callback in self._timeout_callbacks[spec.name]:
            callback()

    def __repr__(self) -> str:
        return (f"<ComStack {self.node} tx={len(self._tx_pdus)} "
                f"rx={len(self._rx_pdus)}>")
