"""I-PDUs: bit-exact packing of signals into frame payloads.

An :class:`IPdu` maps signals to bit positions within a payload of up to 8
bytes (CAN) or larger (FlexRay).  Packing is little-endian bit order: bit
``i`` of the payload integer is bit ``i % 8`` of byte ``i // 8``.  Optional
per-signal *update bits* let a receiver distinguish fresh data from
repeated background transmission.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.com.signal import SignalSpec


class SignalMapping:
    """Placement of one signal (and optionally its update bit) in a PDU."""

    def __init__(self, spec: SignalSpec, start_bit: int,
                 update_bit: Optional[int] = None):
        if start_bit < 0:
            raise ConfigurationError(
                f"signal {spec.name}: negative start bit")
        self.spec = spec
        self.start_bit = start_bit
        self.update_bit = update_bit

    @property
    def end_bit(self) -> int:
        """One past the last payload bit used (excluding the update bit)."""
        return self.start_bit + self.spec.width_bits

    def bits_used(self) -> set[int]:
        """Set of payload bit positions this mapping occupies."""
        bits = set(range(self.start_bit, self.end_bit))
        if self.update_bit is not None:
            bits.add(self.update_bit)
        return bits

    def __repr__(self) -> str:
        return f"<SignalMapping {self.spec.name}@{self.start_bit}>"


class IPdu:
    """A packed protocol data unit."""

    def __init__(self, name: str, size_bytes: int,
                 mappings: Optional[list[SignalMapping]] = None):
        if size_bytes <= 0:
            raise ConfigurationError(f"ipdu {name}: size must be > 0")
        self.name = name
        self.size_bytes = size_bytes
        self.mappings: list[SignalMapping] = []
        for mapping in (mappings or []):
            self.add(mapping)

    def add(self, mapping: SignalMapping) -> None:
        """Add a signal mapping, rejecting overlap and overflow."""
        limit = self.size_bytes * 8
        if mapping.end_bit > limit or (mapping.update_bit is not None
                                       and mapping.update_bit >= limit):
            raise ConfigurationError(
                f"ipdu {self.name}: signal {mapping.spec.name} exceeds "
                f"{self.size_bytes} bytes")
        new_bits = mapping.bits_used()
        for existing in self.mappings:
            clash = existing.bits_used() & new_bits
            if clash:
                raise ConfigurationError(
                    f"ipdu {self.name}: {mapping.spec.name} overlaps "
                    f"{existing.spec.name} at bits {sorted(clash)[:4]}")
        if any(m.spec.name == mapping.spec.name for m in self.mappings):
            raise ConfigurationError(
                f"ipdu {self.name}: duplicate signal {mapping.spec.name}")
        self.mappings.append(mapping)

    def signal_names(self) -> list[str]:
        """Names of the mapped signals, in mapping order."""
        return [m.spec.name for m in self.mappings]

    def mapping_of(self, signal_name: str) -> SignalMapping:
        """Mapping of a signal by name (KeyError when absent)."""
        for mapping in self.mappings:
            if mapping.spec.name == signal_name:
                return mapping
        raise KeyError(f"ipdu {self.name}: no signal {signal_name!r}")

    @property
    def bits_free(self) -> int:
        """Unoccupied payload bits remaining in the PDU."""
        used = set()
        for mapping in self.mappings:
            used |= mapping.bits_used()
        return self.size_bytes * 8 - len(used)

    # ------------------------------------------------------------------
    def pack(self, values: dict[str, int],
             updated: Optional[set[str]] = None) -> int:
        """Encode signal values into the payload integer.

        ``updated`` names the signals whose update bit should be set
        (ignored for mappings without one).
        """
        payload = 0
        for mapping in self.mappings:
            value = values.get(mapping.spec.name, mapping.spec.initial)
            mapping.spec._check_range(value)
            payload |= value << mapping.start_bit
            if mapping.update_bit is not None and updated is not None \
                    and mapping.spec.name in updated:
                payload |= 1 << mapping.update_bit
        return payload

    def unpack(self, payload: int) -> dict[str, dict]:
        """Decode the payload: ``{signal: {"value": v, "updated": bool}}``.

        Signals without an update bit are always reported updated.
        """
        out = {}
        for mapping in self.mappings:
            mask = (1 << mapping.spec.width_bits) - 1
            value = (payload >> mapping.start_bit) & mask
            if mapping.update_bit is not None:
                fresh = bool((payload >> mapping.update_bit) & 1)
            else:
                fresh = True
            out[mapping.spec.name] = {"value": value, "updated": fresh}
        return out

    def __repr__(self) -> str:
        return (f"<IPdu {self.name} {self.size_bytes}B "
                f"signals={self.signal_names()}>")


def pack_sequentially(name: str, size_bytes: int, specs: list[SignalSpec],
                      with_update_bits: bool = False) -> IPdu:
    """Build an I-PDU by laying signals out back-to-back.

    With ``with_update_bits`` each signal is followed by its update bit.
    Raises when the signals do not fit.
    """
    pdu = IPdu(name, size_bytes)
    bit = 0
    for spec in specs:
        update_bit = None
        if with_update_bits:
            update_bit = bit + spec.width_bits
        pdu.add(SignalMapping(spec, bit, update_bit))
        bit += spec.width_bits + (1 if with_update_bits else 0)
    return pdu
