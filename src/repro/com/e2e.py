"""End-to-end protection of COM signal groups (AUTOSAR E2E style).

The paper's Section 4 demands that an integrated architecture catch
value and timing failures *at the consumer*: "delivered values are wrong
(detected by range checks or CRC at the consumer)".  This module
provides that consumer-side net for COM I-PDUs, modelled on the AUTOSAR
E2E library (profile 1 flavour):

* the **sender** stamps every transmission of a protected PDU with an
  alive counter and a CRC salted with a per-group *data ID*, so a
  receiver can tell *this* group's frames from any other bit pattern;
* the **receiver** recomputes the CRC, tracks the counter delta, and
  supervises reception with a timeout driven by the simulator clock,
  classifying every check into ``OK / REPEATED / WRONG_SEQUENCE /
  CRC_ERROR / TIMEOUT``.

The protection travels inside the PDU payload as two ordinary mapped
signals (``<pdu>.e2e_cnt`` and ``<pdu>.e2e_crc``), so it survives any
transport (CAN, FlexRay, TT-Ethernet) unchanged and is subject to the
same fault injection as application data — which is the point: a
corruption or omission injected by :class:`~repro.faults.injector.
ComSignalAdapter` is *detected* here instead of silently consumed.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.com.ipdu import IPdu, SignalMapping
from repro.com.signal import SignalSpec
from repro.sim.trace import Trace

#: Receiver-side check verdicts.
E2E_OK = "ok"
E2E_REPEATED = "repeated"
E2E_WRONG_SEQUENCE = "wrong_sequence"
E2E_CRC_ERROR = "crc_error"
E2E_TIMEOUT = "timeout"

E2E_VERDICTS = (E2E_OK, E2E_REPEATED, E2E_WRONG_SEQUENCE, E2E_CRC_ERROR,
                E2E_TIMEOUT)

#: Suffixes of the protection signals a protected PDU carries.
COUNTER_SUFFIX = ".e2e_cnt"
CRC_SUFFIX = ".e2e_crc"

_CRC8_POLY = 0x1D  # SAE J1850, the AUTOSAR Crc_CalculateCRC8 polynomial


def crc8(data: bytes, start: int = 0xFF) -> int:
    """CRC-8 (poly 0x1D, SAE J1850) over ``data``, MSB first."""
    crc = start
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ _CRC8_POLY) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc ^ 0xFF


class E2eProfile:
    """Static protection parameters of one signal group.

    ``data_id`` salts the CRC so a frame of one group can never pass the
    check of another; ``max_delta_counter`` is the largest counter jump
    the receiver accepts as OK (lost-but-tolerated frames); ``timeout``
    is the receiver's reception supervision window in ns.
    """

    def __init__(self, data_id: int, counter_bits: int = 4,
                 max_delta_counter: int = 1,
                 timeout: Optional[int] = None):
        if not 0 <= data_id <= 0xFFFF:
            raise ConfigurationError(
                f"e2e data_id {data_id:#x} must fit 16 bits")
        if not 1 <= counter_bits <= 8:
            raise ConfigurationError("e2e counter_bits must be 1..8")
        if not 1 <= max_delta_counter < (1 << counter_bits) - 1:
            raise ConfigurationError(
                f"e2e max_delta_counter {max_delta_counter} must be in "
                f"1..{(1 << counter_bits) - 2}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("e2e timeout must be > 0")
        self.data_id = data_id
        self.counter_bits = counter_bits
        self.max_delta_counter = max_delta_counter
        self.timeout = timeout

    @property
    def counter_modulo(self) -> int:
        return 1 << self.counter_bits

    def __repr__(self) -> str:
        return (f"<E2eProfile data_id={self.data_id:#06x} "
                f"cnt={self.counter_bits}b timeout={self.timeout}>")


def e2e_protected_pdu(name: str, size_bytes: int, specs: list[SignalSpec],
                      profile: E2eProfile,
                      with_update_bits: bool = False) -> IPdu:
    """Lay out ``specs`` back-to-back and append the protection fields.

    The counter and CRC ride at the tail of the payload as two ordinary
    signals named ``<name>.e2e_cnt`` / ``<name>.e2e_crc``; both sides of
    a link must build the PDU with the same call.
    """
    pdu = IPdu(name, size_bytes)
    bit = 0
    for spec in specs:
        update_bit = spec.width_bits + bit if with_update_bits else None
        pdu.add(SignalMapping(spec, bit, update_bit))
        bit += spec.width_bits + (1 if with_update_bits else 0)
    counter = SignalSpec(name + COUNTER_SUFFIX, profile.counter_bits)
    crc = SignalSpec(name + CRC_SUFFIX, 8)
    pdu.add(SignalMapping(counter, bit))
    pdu.add(SignalMapping(crc, bit + profile.counter_bits))
    return pdu


def _protection_names(pdu: IPdu) -> tuple[str, str]:
    counter_name = pdu.name + COUNTER_SUFFIX
    crc_name = pdu.name + CRC_SUFFIX
    names = set(pdu.signal_names())
    if counter_name not in names or crc_name not in names:
        raise ConfigurationError(
            f"ipdu {pdu.name} carries no e2e protection fields; build it "
            f"with e2e_protected_pdu()")
    return counter_name, crc_name


def _crc_of_payload(pdu: IPdu, profile: E2eProfile, payload: int,
                    crc_mapping: SignalMapping) -> int:
    """CRC over data_id || payload-with-crc-field-zeroed."""
    mask = ((1 << crc_mapping.spec.width_bits) - 1) << crc_mapping.start_bit
    blanked = payload & ~mask
    data = bytes([profile.data_id & 0xFF, (profile.data_id >> 8) & 0xFF])
    data += blanked.to_bytes(pdu.size_bytes, "little")
    return crc8(data)


class E2eSender:
    """Transmit-side protection: stamps counter and CRC at pack time.

    Installed on a :class:`~repro.com.com.ComStack` via
    ``protect_tx_pdu``; the stack calls :meth:`protect` on every
    transmission of the PDU, *after* application values are gathered and
    *before* packing.
    """

    def __init__(self, ipdu: IPdu, profile: E2eProfile):
        self.ipdu = ipdu
        self.profile = profile
        self.counter_name, self.crc_name = _protection_names(ipdu)
        self._counter = profile.counter_modulo - 1  # first tx wraps to 0
        self.protected_count = 0

    def protect(self, values: dict, updated: set) -> None:
        """Fill the protection fields into ``values`` (in place)."""
        self._counter = (self._counter + 1) % self.profile.counter_modulo
        values[self.counter_name] = self._counter
        values[self.crc_name] = 0
        blank = self.ipdu.pack(values, updated)
        crc_mapping = self.ipdu.mapping_of(self.crc_name)
        values[self.crc_name] = _crc_of_payload(
            self.ipdu, self.profile, blank, crc_mapping)
        updated |= {self.counter_name, self.crc_name}
        self.protected_count += 1

    def __repr__(self) -> str:
        return f"<E2eSender {self.ipdu.name} counter={self._counter}>"


class E2eReceiver:
    """Receive-side check state machine with timeout supervision.

    ``check(payload)`` classifies one reception; the simulator-driven
    timeout fires :data:`E2E_TIMEOUT` whenever no *valid* reception
    arrived within ``profile.timeout`` (and keeps firing once per
    window while the drought lasts, so debouncing error managers see a
    steady FAILED stream, not a single edge).

    Verdict listeners receive every classification, including the OK
    stream — that is what lets a recovery orchestrator both debounce
    failures and heal them again.
    """

    def __init__(self, sim, ipdu: IPdu, profile: E2eProfile,
                 trace: Optional[Trace] = None, node: str = ""):
        self.sim = sim
        self.ipdu = ipdu
        self.profile = profile
        self.trace = trace if trace is not None else Trace()
        self.node = node
        self.counter_name, self.crc_name = _protection_names(ipdu)
        self._crc_mapping = ipdu.mapping_of(self.crc_name)
        self._last_counter: Optional[int] = None
        self._timeout_handle = None
        self._listeners: list[Callable[[str], None]] = []
        self.state = E2E_OK
        #: verdict -> number of classifications (timeouts included).
        self.counts: dict[str, int] = {v: 0 for v in E2E_VERDICTS}
        self.last_ok_time: Optional[int] = None
        if profile.timeout is not None:
            self._arm_timeout()

    # ------------------------------------------------------------------
    def on_verdict(self, listener: Callable[[str], None]) -> None:
        """Listener called with the verdict of every classification."""
        self._listeners.append(listener)

    def check(self, payload: int) -> str:
        """Classify one reception of the protected PDU."""
        decoded = self.ipdu.unpack(payload)
        rx_crc = decoded[self.crc_name]["value"]
        rx_counter = decoded[self.counter_name]["value"]
        calc = _crc_of_payload(self.ipdu, self.profile, payload,
                               self._crc_mapping)
        if calc != rx_crc:
            return self._classify(E2E_CRC_ERROR)
        if self._last_counter is None:
            delta = 1  # first reception initialises the sequence
        else:
            delta = (rx_counter - self._last_counter) \
                % self.profile.counter_modulo
        # A CRC-valid frame always resynchronises the sequence.
        self._last_counter = rx_counter
        if delta == 0:
            return self._classify(E2E_REPEATED, counter=rx_counter)
        if delta > self.profile.max_delta_counter:
            return self._classify(E2E_WRONG_SEQUENCE, counter=rx_counter)
        self.last_ok_time = self.sim.now
        if self.profile.timeout is not None:
            self._arm_timeout()
        return self._classify(E2E_OK, counter=rx_counter)

    def _classify(self, verdict: str, **extra) -> str:
        """Record one verdict.  ``extra`` data (e.g. the received alive
        counter for CRC-valid frames) rides on the trace record so
        trace-level invariants can re-check the classification."""
        self.state = verdict
        self.counts[verdict] += 1
        self.trace.log(self.sim.now, f"e2e.{verdict}", self.ipdu.name,
                       node=self.node, **extra)
        for listener in self._listeners:
            listener(verdict)
        return verdict

    # ------------------------------------------------------------------
    def _arm_timeout(self) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
        self._timeout_handle = self.sim.schedule(self.profile.timeout,
                                                 self._timeout_fired)

    def _timeout_fired(self) -> None:
        # Re-arm first: supervision keeps running while the drought
        # lasts, emitting one TIMEOUT per supervision window.
        self._arm_timeout()
        self._classify(E2E_TIMEOUT)

    def stop(self) -> None:
        """Cancel timeout supervision (end of scenario teardown)."""
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None

    @property
    def error_count(self) -> int:
        """Classifications that were not OK."""
        return sum(n for verdict, n in self.counts.items()
                   if verdict != E2E_OK)

    def __repr__(self) -> str:
        return (f"<E2eReceiver {self.ipdu.name} state={self.state} "
                f"errors={self.error_count}>")


def protect_link(tx_stack, rx_stack, pdu_name: str,
                 profile: E2eProfile) -> E2eReceiver:
    """Protect one PDU end-to-end across a tx and an rx ComStack.

    Convenience wrapper: installs an :class:`E2eSender` on the transmit
    stack and an :class:`E2eReceiver` on the receive stack, returning
    the receiver (whose verdicts drive error handling).
    """
    tx_pdu = tx_stack.tx_pdu(pdu_name).ipdu
    rx_pdu = rx_stack.rx_pdu(pdu_name)
    sender = E2eSender(tx_pdu, profile)
    receiver = E2eReceiver(rx_stack.sim, rx_pdu, profile,
                           trace=rx_stack.trace, node=rx_stack.node)
    tx_stack.protect_tx_pdu(pdu_name, sender)
    rx_stack.protect_rx_pdu(pdu_name, receiver)
    return receiver
