"""COM signals: the unit of application data on the network.

A :class:`SignalSpec` describes width, initial value and transfer property
(AUTOSAR COM vocabulary): ``TRIGGERED`` signals cause immediate transmission
of their I-PDU when written, ``PENDING`` signals ride along with the PDU's
periodic transmission.  :class:`SignalValue` is the runtime store with an
update flag used for update-bit handling.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError

TRIGGERED = "triggered"
PENDING = "pending"


class SignalSpec:
    """Static description of one signal."""

    def __init__(self, name: str, width_bits: int, initial: int = 0,
                 transfer: str = PENDING, timeout: Optional[int] = None):
        if width_bits <= 0 or width_bits > 64:
            raise ConfigurationError(
                f"signal {name}: width must be 1..64 bits")
        if transfer not in (TRIGGERED, PENDING):
            raise ConfigurationError(
                f"signal {name}: unknown transfer property {transfer!r}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"signal {name}: timeout must be > 0")
        self.name = name
        self.width_bits = width_bits
        self.initial = initial
        self.transfer = transfer
        self.timeout = timeout
        self._check_range(initial)

    @property
    def max_value(self) -> int:
        """Largest raw value the signal's width can carry."""
        return (1 << self.width_bits) - 1

    def _check_range(self, value: int) -> None:
        if not isinstance(value, int):
            raise ConfigurationError(
                f"signal {self.name}: value must be int, got {type(value)}")
        if not 0 <= value <= self.max_value:
            raise ConfigurationError(
                f"signal {self.name}: value {value} exceeds "
                f"{self.width_bits} bits")

    def __repr__(self) -> str:
        return f"<SignalSpec {self.name} {self.width_bits}b {self.transfer}>"


class SignalValue:
    """Runtime value of a signal plus freshness bookkeeping."""

    def __init__(self, spec: SignalSpec):
        self.spec = spec
        self.value = spec.initial
        self.updated = False
        self.last_update: Optional[int] = None
        self.last_reception: Optional[int] = None

    def write(self, value: int, now: int) -> None:
        """Set the value, marking the signal updated (transmit side)."""
        self.spec._check_range(value)
        self.value = value
        self.updated = True
        self.last_update = now

    def consume_update(self) -> bool:
        """Return and clear the update flag (transmit-side update bit)."""
        updated, self.updated = self.updated, False
        return updated

    def __repr__(self) -> str:
        return f"<SignalValue {self.spec.name}={self.value}>"
