"""Signal-to-frame packing optimization.

Packing decides which signals share a frame.  It trades bus bandwidth
(fewer frames amortize the per-frame overhead) against latency (a packed
frame must be sent at the period of its fastest signal).  The classic
heuristic — used here and by the consolidation DSE — groups signals by
period and first-fit-decreasing packs each group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.com.ipdu import IPdu, SignalMapping
from repro.com.signal import SignalSpec


@dataclass(frozen=True)
class PackableSignal:
    """A signal awaiting frame assignment: spec + period + source node."""

    spec: SignalSpec
    period: int
    sender: str

    def __post_init__(self):
        if self.period <= 0:
            raise ConfigurationError(
                f"signal {self.spec.name}: period must be > 0")


@dataclass
class PackedFrame:
    """Result of packing: an I-PDU plus its transmission period/sender."""

    ipdu: IPdu
    period: int
    sender: str


def pack_signals(signals: list[PackableSignal], frame_bytes: int = 8,
                 name_prefix: str = "PDU") -> list[PackedFrame]:
    """First-fit-decreasing packing, grouped by (sender, period).

    Signals from different nodes never share a frame (one sender per
    frame); signals with different periods never share a frame, so no
    signal is transmitted faster than needed.
    """
    if frame_bytes <= 0:
        raise ConfigurationError("frame_bytes must be > 0")
    capacity = frame_bytes * 8
    groups: dict[tuple[str, int], list[PackableSignal]] = {}
    for signal in signals:
        if signal.spec.width_bits > capacity:
            raise ConfigurationError(
                f"signal {signal.spec.name} ({signal.spec.width_bits}b) "
                f"cannot fit a {frame_bytes}-byte frame")
        groups.setdefault((signal.sender, signal.period), []).append(signal)

    frames: list[PackedFrame] = []
    for (sender, period), members in sorted(
            groups.items(), key=lambda item: (item[0][0], item[0][1])):
        members = sorted(members, key=lambda s: -s.spec.width_bits)
        bins: list[list[PackableSignal]] = []
        fill: list[int] = []
        for signal in members:
            placed = False
            for index, used in enumerate(fill):
                if used + signal.spec.width_bits <= capacity:
                    bins[index].append(signal)
                    fill[index] += signal.spec.width_bits
                    placed = True
                    break
            if not placed:
                bins.append([signal])
                fill.append(signal.spec.width_bits)
        for index, bin_signals in enumerate(bins):
            pdu = IPdu(f"{name_prefix}_{sender}_{period}_{index}",
                       frame_bytes)
            bit = 0
            for signal in bin_signals:
                pdu.add(SignalMapping(signal.spec, bit))
                bit += signal.spec.width_bits
            frames.append(PackedFrame(pdu, period, sender))
    return frames


def packing_bandwidth_bps(frames: list[PackedFrame],
                          overhead_bits_per_frame: int = 47 + 24) -> float:
    """Bus bandwidth the packed set consumes (bits/second).

    Default overhead approximates a worst-case stuffed CAN frame header
    plus stuffing on an 8-byte body minus the body itself; callers doing
    precise CAN math should use :func:`repro.network.can.frame_bits`.
    """
    total = 0.0
    for frame in frames:
        bits = frame.ipdu.size_bytes * 8 + overhead_bits_per_frame
        total += bits * (1e9 / frame.period)
    return total


def unpacked_bandwidth_bps(signals: list[PackableSignal],
                           overhead_bits_per_frame: int = 47 + 24) -> float:
    """Bandwidth if every signal travelled in its own frame — the baseline
    the packing heuristic is measured against."""
    total = 0.0
    for signal in signals:
        bits = signal.spec.width_bits + overhead_bits_per_frame
        total += bits * (1e9 / signal.period)
    return total
