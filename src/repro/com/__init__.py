"""COM services: signals, I-PDUs, packing, and the per-node COM stack."""

from repro.com.com import (CanComAdapter, ComStack, DIRECT, FlexRayComAdapter,
                           MIXED, PERIODIC, TteComAdapter, TxPdu)
from repro.com.e2e import (E2E_CRC_ERROR, E2E_OK, E2E_REPEATED, E2E_TIMEOUT,
                           E2E_VERDICTS, E2E_WRONG_SEQUENCE, E2eProfile,
                           E2eReceiver, E2eSender, crc8, e2e_protected_pdu,
                           protect_link)
from repro.com.ipdu import IPdu, SignalMapping, pack_sequentially
from repro.com.packing import (PackableSignal, PackedFrame,
                               pack_signals, packing_bandwidth_bps,
                               unpacked_bandwidth_bps)
from repro.com.signal import PENDING, SignalSpec, SignalValue, TRIGGERED

__all__ = [
    "CanComAdapter", "ComStack", "DIRECT", "FlexRayComAdapter", "MIXED",
    "PERIODIC", "TteComAdapter", "TxPdu",
    "E2E_CRC_ERROR", "E2E_OK", "E2E_REPEATED", "E2E_TIMEOUT",
    "E2E_VERDICTS", "E2E_WRONG_SEQUENCE", "E2eProfile", "E2eReceiver",
    "E2eSender", "crc8", "e2e_protected_pdu", "protect_link",
    "IPdu", "SignalMapping", "pack_sequentially",
    "PackableSignal", "PackedFrame", "pack_signals",
    "packing_bandwidth_bps", "unpacked_bandwidth_bps",
    "PENDING", "SignalSpec", "SignalValue", "TRIGGERED",
]
