"""COM services: signals, I-PDUs, packing, and the per-node COM stack."""

from repro.com.com import (CanComAdapter, ComStack, DIRECT, FlexRayComAdapter,
                           MIXED, PERIODIC, TteComAdapter, TxPdu)
from repro.com.ipdu import IPdu, SignalMapping, pack_sequentially
from repro.com.packing import (PackableSignal, PackedFrame,
                               pack_signals, packing_bandwidth_bps,
                               unpacked_bandwidth_bps)
from repro.com.signal import PENDING, SignalSpec, SignalValue, TRIGGERED

__all__ = [
    "CanComAdapter", "ComStack", "DIRECT", "FlexRayComAdapter", "MIXED",
    "PERIODIC", "TteComAdapter", "TxPdu",
    "IPdu", "SignalMapping", "pack_sequentially",
    "PackableSignal", "PackedFrame", "pack_signals",
    "packing_bandwidth_bps", "unpacked_bandwidth_bps",
    "PENDING", "SignalSpec", "SignalValue", "TRIGGERED",
]
