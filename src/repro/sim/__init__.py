"""Discrete-event simulation substrate (virtual time, processes, traces)."""

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.process import Delay, Process, Signal, Wait, all_done, spawn
from repro.sim.trace import Record, Trace, summarize
from repro.sim.clock import DriftingClock, precision

__all__ = [
    "EventHandle", "Simulator",
    "Delay", "Process", "Signal", "Wait", "all_done", "spawn",
    "Record", "Trace", "summarize",
    "DriftingClock", "precision",
]
