"""Trace recording and querying.

Every simulated subsystem (OS kernel, buses, NoC, BSW services) reports what
happened through a :class:`Trace`: a flat, time-ordered list of records.
Analyses over traces (response times, jitter, end-to-end latencies) live in
:mod:`repro.sim.trace` so that simulation results and analytic bounds can be
compared with the same vocabulary.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Record:
    """One traced occurrence.

    ``category`` is a dotted event kind such as ``"task.activate"`` or
    ``"bus.tx_done"``; ``subject`` names the entity (task name, frame id);
    ``data`` carries event-specific details.
    """

    time: int
    category: str
    subject: str
    data: dict = field(default_factory=dict)

    def get(self, key: str, default=None):
        """Tolerant access to an optional ``data`` key (never raises)."""
        return self.data.get(key, default)


class Trace:
    """Append-only record store with simple query helpers.

    By default the trace grows without bound — every record of a run is
    queryable, which is what the verification oracle and the invariants
    need.  Long soak simulations can instead cap memory with
    ``max_records``: when the trace exceeds the cap, the oldest quarter
    (plus any excess) is evicted, optionally handed to a ``spill``
    target first.  The target is either a plain callable (e.g.
    :func:`jsonl_spill` to stream records to disk) or a writer object
    with ``write_batch()`` — and optionally ``close()`` — such as
    :class:`repro.meas.mtf.MtfWriter`.  Queries then see only the
    retained tail; :attr:`spilled` counts what was evicted.
    :meth:`close` spills the retained tail too, so end-of-run records
    are never silently dropped.  With both parameters at their
    defaults the behaviour is exactly the historical unbounded one.
    """

    def __init__(self, max_records: Optional[int] = None,
                 spill=None):
        if max_records is not None and max_records < 4:
            raise ConfigurationError(
                f"max_records must be >= 4, got {max_records}")
        self._records: list[Record] = []
        self._max_records = max_records
        self._spill_target = spill
        self._spill = as_spill_sink(spill)
        #: number of records evicted by the bound (0 in unbounded mode).
        self.spilled = 0
        self._closed = False

    def log(self, time: int, category: str, subject: str, **data: Any) -> None:
        """Append one record.  ``time`` must be non-decreasing per caller
        discipline; the trace itself does not enforce global ordering."""
        self._records.append(Record(time, category, subject, data))
        if self._max_records is not None \
                and len(self._records) > self._max_records:
            # Evict down to 3/4 of the cap in one batch, so the
            # amortised per-log cost stays O(1) instead of shifting the
            # whole list on every append at the boundary.
            keep = (self._max_records * 3) // 4
            evicted = self._records[:len(self._records) - keep]
            if self._spill is not None:
                self._spill(evicted)
            self.spilled += len(evicted)
            del self._records[:len(evicted)]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def records(self, category: Optional[str] = None,
                subject: Optional[str] = None,
                predicate: Optional[Callable[[Record], bool]] = None
                ) -> list[Record]:
        """Filtered view of the trace.

        ``category`` matches exactly or as a dotted prefix (``"task"``
        matches ``"task.activate"``).
        """
        out = []
        for rec in self._records:
            if category is not None and not _category_matches(rec.category,
                                                              category):
                continue
            if subject is not None and rec.subject != subject:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def times(self, category: str, subject: Optional[str] = None) -> list[int]:
        """Timestamps of matching records."""
        return [r.time for r in self.records(category, subject)]

    def data_values(self, category: str, key: str,
                    subject: Optional[str] = None) -> list:
        """Values of a ``data`` key over matching records.

        Records lacking the key are skipped rather than raising — a
        partially-instrumented subsystem yields fewer measurements, not
        a crash.
        """
        return [r.data[key] for r in self.records(category, subject)
                if key in r.data]

    # ------------------------------------------------------------------
    # Derived timing metrics
    # ------------------------------------------------------------------
    def spans(self, start_category: str, end_category: str,
              subject: str) -> list[tuple[int, int]]:
        """Pair each start record with the next end record for ``subject``.

        Used for activation→completion (response time) and tx_request→rx
        (message latency) measurements.  Unmatched trailing starts are
        dropped (the job was still running at the end of the horizon).
        """
        starts = self.times(start_category, subject)
        ends = self.times(end_category, subject)
        pairs = []
        ei = 0
        for s in starts:
            while ei < len(ends) and ends[ei] < s:
                ei += 1
            if ei == len(ends):
                break
            pairs.append((s, ends[ei]))
            ei += 1
        return pairs

    def response_times(self, subject: str,
                       start_category: str = "task.activate",
                       end_category: str = "task.complete") -> list[int]:
        """Per-job response times (end - start) for ``subject``."""
        return [e - s for s, e in self.spans(start_category, end_category,
                                             subject)]

    def jitter(self, category: str, subject: str) -> int:
        """Peak-to-peak inter-arrival jitter of matching records.

        Defined as ``max(interval) - min(interval)`` over consecutive
        occurrences; 0 when fewer than three records exist.
        """
        ts = self.times(category, subject)
        if len(ts) < 3:
            return 0
        intervals = [b - a for a, b in zip(ts, ts[1:])]
        return max(intervals) - min(intervals)

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()

    def close(self) -> None:
        """Flush the retained tail to the spill target and close it.

        Without this, end-of-run records — everything logged since the
        last eviction — would never reach the spill file.  The tail is
        spilled in order after everything already evicted, the target's
        own ``close()`` is called when it has one (e.g. an MTF writer
        sealing its directory), and the trace is emptied.  Idempotent;
        a no-op spill-wise when no spill target is configured."""
        if self._closed:
            return
        if self._spill is not None and self._records:
            self._spill(list(self._records))
            self.spilled += len(self._records)
            self._records.clear()
        closer = getattr(self._spill_target, "close", None)
        if callable(closer):
            closer()
        self._closed = True

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """Flat dict rows (time/category/subject + data keys), for
        post-processing with external tooling."""
        rows = []
        for rec in self._records:
            row = {"time": rec.time, "category": rec.category,
                   "subject": rec.subject}
            row.update(rec.data)
            rows.append(row)
        return rows

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`to_dicts`.

        Two traces digest equal iff they recorded the same events in
        the same order with the same payloads — the equivalence notion
        the kernel-queue parity tests pin (bucket vs heap dispatch must
        be byte-identical, not merely statistically alike).
        """
        body = json.dumps(self.to_dicts(), sort_keys=True,
                          separators=(",", ":"), default=str)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def save_csv(self, path: str) -> int:
        """Write the trace as CSV (data dict serialized per-key into a
        ``key=value;...`` column); returns the record count."""
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "category", "subject", "data"])
            for rec in self._records:
                data = ";".join(f"{k}={v}" for k, v in rec.data.items())
                writer.writerow([rec.time, rec.category, rec.subject,
                                 data])
        return len(self._records)

    def __repr__(self) -> str:
        return f"<Trace {len(self._records)} records>"


def _category_matches(actual: str, wanted: str) -> bool:
    return actual == wanted or actual.startswith(wanted + ".")


def as_spill_sink(spill) -> Optional[Callable[[list], None]]:
    """Normalize a spill target to a batch callable.

    Accepts ``None``, a plain callable, or a writer object exposing
    ``write_batch()`` (the protocol of :class:`repro.meas.mtf.MtfWriter`
    and the DAQ sinks).  Anything else is a configuration error —
    silently ignoring a mistyped sink would drop records."""
    if spill is None:
        return None
    write_batch = getattr(spill, "write_batch", None)
    if callable(write_batch):
        return write_batch
    if callable(spill):
        return spill
    raise ConfigurationError(
        f"spill target {spill!r} is neither callable nor a writer "
        f"with write_batch()")


def jsonl_spill(path: str) -> Callable[[list[Record]], None]:
    """Spill callback for :class:`Trace` that appends evicted records to
    ``path`` as JSON lines (one record per line, sorted keys)."""
    def spill(records: list[Record]) -> None:
        with open(path, "a", encoding="utf-8") as handle:
            for rec in records:
                handle.write(json.dumps(
                    {"time": rec.time, "category": rec.category,
                     "subject": rec.subject, "data": rec.data},
                    sort_keys=True) + "\n")
    return spill


def summarize(values: list[int]) -> dict:
    """min/avg/max summary of a list of durations (empty-safe)."""
    if not values:
        return {"count": 0, "min": None, "avg": None, "max": None}
    return {
        "count": len(values),
        "min": min(values),
        "avg": sum(values) / len(values),
        "max": max(values),
    }
