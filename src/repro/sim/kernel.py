"""Discrete-event simulation kernel.

The kernel is deliberately small: a queue of timestamped callbacks and a
``now`` cursor.  All time is integer nanoseconds (:mod:`repro.units`),
so event ordering is exact and runs are reproducible.

Ties are broken by (priority, sequence number): events scheduled at the same
instant fire in ascending priority, then insertion order.  This makes
simultaneous hardware events (e.g. two CAN controllers requesting the bus on
the same bit edge) deterministic without hidden dependence on heap internals.

Two queue implementations share that contract:

* :class:`BucketEventQueue` (the default) — an int-heap of *distinct*
  timestamps over per-timestamp buckets.  Simulated workloads are
  dominated by same-instant bursts (every task release at a hyperperiod
  boundary, every CAN controller reacting to the same bus edge), and a
  bucket turns each burst into O(1) list appends/pops instead of
  O(log n) heap churn per event.  A bucket stays a plain FIFO list
  while every event in it shares one priority — the overwhelmingly
  common case — and converts itself to a (priority, seq) heap on the
  first mixed-priority push.
* :class:`HeapEventQueue` — the classic single binary heap of handles,
  kept as the executable reference: ``tests/test_kernel_queue.py``
  pins byte-identical event order and trace digests across both.

``run_until`` dispatches in timestamp batches (one ``now`` update and
one bucket walk per distinct instant), re-checking the queue head after
every callback so events a callback schedules *at the current instant*
interleave by (priority, seq) exactly as the single-heap loop did.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro import obs
from repro.errors import SimulationError


class EventHandle:
    """Handle to a scheduled event, usable for cancellation.

    Cancellation is lazy: the queue entry stays in place but is skipped
    when popped.  This keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time: int, priority: int, seq: int,
                 callback: Callable[[], Any]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return ((self.time, self.priority, self.seq)
                < (other.time, other.priority, other.seq))

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} prio={self.priority} {state}>"


class HeapEventQueue:
    """Reference queue: one binary heap ordered by (time, priority, seq).

    This is the historical implementation, kept both as the equivalence
    baseline for :class:`BucketEventQueue` and as a drop-in for
    workloads with strictly scattered timestamps.
    """

    __slots__ = ("_heap",)

    def __init__(self):
        self._heap: list[EventHandle] = []

    def push(self, handle: EventHandle) -> None:
        heapq.heappush(self._heap, handle)

    def peek(self) -> Optional[EventHandle]:
        """The next live event without removing it (drops cancelled
        entries it encounters); None when the queue is empty."""
        heap = self._heap
        while heap:
            if heap[0].cancelled:
                heapq.heappop(heap)
                continue
            return heap[0]
        return None

    def pop(self) -> Optional[EventHandle]:
        head = self.peek()
        if head is not None:
            heapq.heappop(self._heap)
        return head

    @property
    def pending(self) -> int:
        return sum(1 for h in self._heap if not h.cancelled)


class _Bucket:
    """Events of one timestamp.

    Lives as a FIFO list (``items`` + ``head`` cursor) while every
    event pushed so far shares one priority — seq order *is* priority
    order then, and push/pop are O(1) appends and cursor bumps.  The
    first push with a different priority converts the unconsumed tail
    into a (priority, seq, handle) heap; ``heap is not None`` marks
    the converted state.
    """

    __slots__ = ("items", "head", "heap")

    def __init__(self, handle: EventHandle):
        self.items: list[EventHandle] = [handle]
        self.head = 0
        self.heap: Optional[list] = None

    def add(self, handle: EventHandle) -> None:
        if self.heap is not None:
            heapq.heappush(self.heap,
                           (handle.priority, handle.seq, handle))
        elif not self.items \
                or handle.priority == self.items[0].priority:
            # Uniform priority so far (items[0] is a valid witness even
            # when already consumed — FIFO mode implies it shares the
            # bucket's one priority): seq is monotonic, append keeps
            # (priority, seq) order.
            self.items.append(handle)
        else:
            self.heap = [(h.priority, h.seq, h)
                         for h in self.items[self.head:]
                         if not h.cancelled]
            heapq.heapify(self.heap)
            heapq.heappush(self.heap,
                           (handle.priority, handle.seq, handle))
            self.items = []
            self.head = 0

    def peek(self) -> Optional[EventHandle]:
        if self.heap is not None:
            heap = self.heap
            while heap:
                if heap[0][2].cancelled:
                    heapq.heappop(heap)
                    continue
                return heap[0][2]
            return None
        items = self.items
        head = self.head
        while head < len(items) and items[head].cancelled:
            head += 1
        self.head = head
        return items[head] if head < len(items) else None

    def pop(self) -> Optional[EventHandle]:
        handle = self.peek()
        if handle is None:
            return None
        if self.heap is not None:
            heapq.heappop(self.heap)
        else:
            self.head += 1
        return handle

    @property
    def pending(self) -> int:
        if self.heap is not None:
            return sum(1 for entry in self.heap
                       if not entry[2].cancelled)
        return sum(1 for h in self.items[self.head:] if not h.cancelled)


class BucketEventQueue:
    """Array-backed bucket queue: an int-heap of distinct timestamps
    plus a :class:`_Bucket` per timestamp.

    Heap operations happen per *distinct timestamp*, not per event, and
    compare plain ints instead of handle tuples; every same-instant
    burst beyond the first event costs O(1).  ``_times`` may carry a
    stale entry for a timestamp whose bucket drained and was recreated
    within the same instant; :meth:`peek` discards stale entries
    lazily, exactly like cancelled handles.
    """

    __slots__ = ("_times", "_buckets")

    def __init__(self):
        self._times: list[int] = []
        self._buckets: dict[int, _Bucket] = {}

    def push(self, handle: EventHandle) -> None:
        bucket = self._buckets.get(handle.time)
        if bucket is None:
            self._buckets[handle.time] = _Bucket(handle)
            heapq.heappush(self._times, handle.time)
        else:
            bucket.add(handle)

    def _head(self) -> Optional[tuple[int, _Bucket, EventHandle]]:
        while self._times:
            time = self._times[0]
            bucket = self._buckets.get(time)
            head = None if bucket is None else bucket.peek()
            if head is None:
                if bucket is not None:
                    del self._buckets[time]
                heapq.heappop(self._times)
                continue
            return time, bucket, head
        return None

    def peek(self) -> Optional[EventHandle]:
        entry = self._head()
        return None if entry is None else entry[2]

    def pop(self) -> Optional[EventHandle]:
        entry = self._head()
        if entry is None:
            return None
        _, bucket, handle = entry
        bucket.pop()
        return handle

    @property
    def pending(self) -> int:
        return sum(bucket.pending for bucket in self._buckets.values())


#: Queue class a :class:`Simulator` builds when none is injected.
#: Module attribute on purpose: equivalence tests (and bisection of a
#: suspected ordering bug) can swap in :class:`HeapEventQueue` for
#: every simulator a harness constructs internally.
DEFAULT_QUEUE_CLASS = BucketEventQueue


class Simulator:
    """Event-driven simulator with integer-nanosecond virtual time.

    Typical use::

        sim = Simulator()
        sim.schedule(1000, lambda: print("fired at", sim.now))
        sim.run_until(10_000)

    ``queue`` injects an event-queue instance (anything implementing
    push/peek/pop/pending); by default a fresh
    :data:`DEFAULT_QUEUE_CLASS` is used.
    """

    def __init__(self, queue=None):
        self.now: int = 0
        #: total events executed (introspection / throughput metrics).
        self.executed: int = 0
        self._queue = queue if queue is not None else DEFAULT_QUEUE_CLASS()
        self._seq = itertools.count()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], Any],
                 priority: int = 0) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, priority)

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    priority: int = 0) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}")
        handle = EventHandle(time, priority, next(self._seq), callback)
        self._queue.push(handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        handle = self._queue.pop()
        if handle is None:
            return False
        self.now = handle.time
        self.executed += 1
        handle.callback()
        return True

    def run_until(self, horizon: int) -> None:
        """Run all events with time <= ``horizon``; leave ``now`` at the
        horizon even if the queue drains early."""
        if horizon < self.now:
            raise SimulationError(
                f"horizon {horizon} is before now={self.now}")
        self._stopped = False
        # Telemetry is deliberately coarse here: one counter update per
        # run_until call (executed-event and dispatch-batch deltas), not
        # per event — the kernel loop is the hottest path in the repo
        # and must not pay a per-event flag check.
        executed_before = self.executed
        batches = 0
        queue = self._queue
        while not self._stopped:
            head = queue.peek()
            if head is None or head.time > horizon:
                break
            batch_time = head.time
            self.now = batch_time
            batches += 1
            # Drain this instant as one batch.  Callbacks may schedule
            # new events at the same instant; re-peeking after every
            # callback keeps them interleaved by (priority, seq) with
            # the events already waiting — identical to popping a
            # single global heap one event at a time.
            while not self._stopped:
                handle = queue.peek()
                if handle is None or handle.time != batch_time:
                    break
                queue.pop()
                self.executed += 1
                handle.callback()
        if not self._stopped:
            self.now = horizon
        if self.executed != executed_before:
            obs.count("sim.events", self.executed - executed_before)
            obs.count("sim.dispatch_batches", batches)

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed.  Guard long-running models
        with ``max_events`` to catch accidental infinite event chains.
        """
        self._stopped = False
        count = 0
        while not self._stopped and self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        if count:
            obs.count("sim.events", count)
        return count

    def stop(self) -> None:
        """Stop ``run``/``run_until`` after the current event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return self._queue.pending

    def __repr__(self) -> str:
        return f"<Simulator now={self.now} pending={self.pending}>"
