"""Discrete-event simulation kernel.

The kernel is deliberately small: a priority queue of timestamped callbacks
and a ``now`` cursor.  All time is integer nanoseconds (:mod:`repro.units`),
so event ordering is exact and runs are reproducible.

Ties are broken by (priority, sequence number): events scheduled at the same
instant fire in ascending priority, then insertion order.  This makes
simultaneous hardware events (e.g. two CAN controllers requesting the bus on
the same bit edge) deterministic without hidden dependence on heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro import obs
from repro.errors import SimulationError


class EventHandle:
    """Handle to a scheduled event, usable for cancellation.

    Cancellation is lazy: the queue entry stays in the heap but is skipped
    when popped.  This keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time: int, priority: int, seq: int,
                 callback: Callable[[], Any]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return ((self.time, self.priority, self.seq)
                < (other.time, other.priority, other.seq))

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} prio={self.priority} {state}>"


class Simulator:
    """Event-driven simulator with integer-nanosecond virtual time.

    Typical use::

        sim = Simulator()
        sim.schedule(1000, lambda: print("fired at", sim.now))
        sim.run_until(10_000)
    """

    def __init__(self):
        self.now: int = 0
        #: total events executed (introspection / throughput metrics).
        self.executed: int = 0
        self._queue: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], Any],
                 priority: int = 0) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, priority)

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    priority: int = 0) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}")
        handle = EventHandle(time, priority, next(self._seq), callback)
        heapq.heappush(self._queue, handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = handle.time
            self.executed += 1
            handle.callback()
            return True
        return False

    def run_until(self, horizon: int) -> None:
        """Run all events with time <= ``horizon``; leave ``now`` at the
        horizon even if the queue drains early."""
        if horizon < self.now:
            raise SimulationError(
                f"horizon {horizon} is before now={self.now}")
        self._stopped = False
        # Telemetry is deliberately coarse here: one counter update per
        # run_until call (the executed-event delta), not per event — the
        # kernel loop is the hottest path in the repo and must not pay a
        # per-event flag check.
        executed_before = self.executed
        while self._queue and not self._stopped:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > horizon:
                break
            self.step()
        if not self._stopped:
            self.now = horizon
        if self.executed != executed_before:
            obs.count("sim.events", self.executed - executed_before)

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed.  Guard long-running models
        with ``max_events`` to catch accidental infinite event chains.
        """
        self._stopped = False
        count = 0
        while not self._stopped and self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        if count:
            obs.count("sim.events", count)
        return count

    def stop(self) -> None:
        """Stop ``run``/``run_until`` after the current event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for h in self._queue if not h.cancelled)

    def __repr__(self) -> str:
        return f"<Simulator now={self.now} pending={self.pending}>"
