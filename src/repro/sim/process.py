"""Generator-based processes on top of the event kernel.

A process is a Python generator that yields *wait requests*:

* ``yield Delay(ticks)`` — sleep for a duration of virtual time;
* ``yield Wait(signal)`` — block until a :class:`Signal` fires (the value
  passed to :meth:`Signal.fire` is returned by the ``yield``).

This gives bus nodes, application tasks and fault injectors a natural
sequential coding style while the kernel stays callback-based underneath.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Delay:
    """Wait request: sleep for ``ticks`` nanoseconds."""

    __slots__ = ("ticks",)

    def __init__(self, ticks: int):
        if ticks < 0:
            raise SimulationError(f"negative delay {ticks}")
        self.ticks = ticks


class Signal:
    """A broadcast condition processes can wait on.

    Firing a signal wakes every currently-waiting process exactly once and
    hands each the fired value.  Signals are reusable (fire repeatedly).
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._waiters: list[Process] = []
        self.fire_count = 0

    def fire(self, value: Any = None) -> None:
        """Wake all waiters, delivering ``value`` to their yield."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)

    @property
    def waiter_count(self) -> int:
        """Processes currently blocked on the signal."""
        return len(self._waiters)

    def __repr__(self) -> str:
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class Wait:
    """Wait request: block until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class Process:
    """Drives a generator against a :class:`Simulator`.

    The process starts immediately (its first segment runs at the current
    simulation time via a zero-delay event) and ends when the generator
    returns.  ``process.done`` and ``process.result`` expose completion.
    """

    def __init__(self, sim: Simulator, generator: Generator,
                 name: str = "process"):
        self.sim = sim
        self.name = name
        self._gen = generator
        self.done = False
        self.result: Any = None
        self._pending_handle = sim.schedule(0, lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._pending_handle = None
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return
        if isinstance(request, Delay):
            self._pending_handle = self.sim.schedule(
                request.ticks, lambda: self._resume(None))
        elif isinstance(request, Wait):
            request.signal._waiters.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {request!r}; "
                f"expected Delay or Wait")

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if self.done:
            return
        self.done = True
        if self._pending_handle is not None:
            self._pending_handle.cancel()
        self._gen.close()

    def __repr__(self) -> str:
        state = "done" if self.done else "active"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, generator: Generator, name: str = "process") -> Process:
    """Start ``generator`` as a process on ``sim``."""
    return Process(sim, generator, name)


def all_done(processes: Iterable[Process]) -> bool:
    """True when every process in the iterable has finished."""
    return all(p.done for p in processes)
