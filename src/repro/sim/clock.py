"""Local clocks with bounded drift.

Time-triggered protocols rest on the assumption that every node's local
clock stays within a known precision of the global time base.  A
:class:`DriftingClock` models a crystal with a constant ppm deviation plus an
initial offset; :func:`precision` computes the cluster precision the TDMA
design must tolerate (guard times around slots).
"""

from __future__ import annotations

from typing import Iterable

PPM = 1_000_000


class DriftingClock:
    """Converts between global simulation time and a node's local time.

    ``drift_ppm`` > 0 means the local clock runs fast.  A perfect clock is
    ``DriftingClock()``.
    """

    def __init__(self, drift_ppm: float = 0.0, offset_ns: int = 0):
        self.drift_ppm = drift_ppm
        self.offset_ns = offset_ns

    def local_time(self, global_time: int) -> int:
        """Local reading at a given global instant."""
        skew = round(global_time * self.drift_ppm / PPM)
        return global_time + skew + self.offset_ns

    def global_duration(self, local_duration: int) -> int:
        """Global time that elapses while the local clock counts
        ``local_duration`` ns."""
        rate = 1.0 + self.drift_ppm / PPM
        return round(local_duration / rate)

    def error_at(self, global_time: int) -> int:
        """Absolute deviation from global time at ``global_time``."""
        return abs(self.local_time(global_time) - global_time)

    def resynchronize(self, global_time: int) -> None:
        """Snap the offset so the local reading equals global time now.

        Models the effect of a clock-synchronization round (e.g. the FTA
        algorithm TTP runs each cluster cycle): accumulated offset is
        cancelled, the rate error remains.
        """
        skew = round(global_time * self.drift_ppm / PPM)
        self.offset_ns = -skew

    def __repr__(self) -> str:
        return (f"<DriftingClock drift={self.drift_ppm}ppm "
                f"offset={self.offset_ns}ns>")


def precision(clocks: Iterable[DriftingClock], resync_interval: int) -> int:
    """Worst-case pairwise clock deviation over one resync interval.

    With resynchronization every ``resync_interval`` ns, each clock drifts at
    most ``|ppm| * interval / 1e6`` between rounds; the cluster precision is
    the maximum pairwise sum, bounded here by twice the largest drift.  TDMA
    slot guard times must exceed this value for slot isolation to hold.
    """
    drifts = [abs(c.drift_ppm) for c in clocks]
    if not drifts:
        return 0
    worst = max(drifts)
    return round(2 * worst * resync_interval / PPM) + 1
