"""Fault campaigns: deterministic sweeps over fault matrices.

A *campaign* runs the same scenario once per cell of a
(kind × target × onset × duration) matrix, injecting exactly one fault
per run, and measures what Section 4 of the paper demands from an
integrated architecture: was the fault **detected** (and how fast), was
the damage **contained** to the faulty element's region, and did the
system **recover** after the fault window closed?

The runner owns none of the scenario: a user-supplied factory builds a
fresh world per cell (fresh simulator, stacks, error manager …), so
cells are independent and bit-for-bit reproducible.  The report is a
plain data structure consumable by :mod:`repro.analysis.system_report`.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.faults.model import Fault
from repro.faults.monitor import containment_violations
from repro.sim.trace import summarize

#: Trace categories counted as *detection* of an injected fault.  E2E
#: receiver error verdicts, watchdog expiry, OS budget enforcement and
#: COM deadline monitoring are the paper's detector inventory.
DETECTION_CATEGORIES = (
    "e2e.crc_error",
    "e2e.wrong_sequence",
    "e2e.repeated",
    "e2e.timeout",
    "wdg.violation",
    "task.budget_overrun",
    "com.timeout",
)


@dataclass(frozen=True)
class CampaignCell:
    """One point of the fault matrix."""

    kind: str
    target: str
    onset: int
    duration: Optional[int] = None
    params: dict = field(default_factory=dict, hash=False)

    def fault(self) -> Fault:
        """A fresh Fault instance for this cell's injection."""
        return Fault(self.kind, self.target, self.onset, self.duration,
                     dict(self.params))

    @property
    def label(self) -> str:
        return f"{self.kind}@{self.target}+{self.onset}"

    @property
    def end(self) -> Optional[int]:
        if self.duration is None:
            return None
        return self.onset + self.duration


def grid(kinds: Iterable[str], targets: Iterable[str],
         onsets: Iterable[int], durations: Iterable[Optional[int]],
         params: Optional[dict] = None,
         supported: Optional[Callable[[str, str], bool]] = None
         ) -> list[CampaignCell]:
    """Cartesian fault matrix; ``supported(kind, target)`` prunes cells
    the scenario cannot inject (e.g. CRASH on a COM signal)."""
    cells = []
    for kind, target, onset, duration in itertools.product(
            kinds, targets, onsets, durations):
        if supported is not None and not supported(kind, target):
            continue
        cells.append(CampaignCell(kind, target, onset, duration,
                                  dict(params or {})))
    return cells


@dataclass
class CellResult:
    """Measured outcome of one campaign cell."""

    cell: CampaignCell
    detected: bool
    detection_time: Optional[int]
    detection_latency: Optional[int]
    detection_source: Optional[str]
    confirmed_dtcs: list[int]
    degraded: bool
    contained: bool
    escaped_damage: int
    recovered: bool
    recovery_time: Optional[int]
    recovery_latency: Optional[int]
    errors: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    #: DAQ sample rows when a measurement service rode along
    #: (``--daq``); excluded from :meth:`to_dict` so campaign digests
    #: are unchanged by sampling — the rows carry their own digest
    #: (:meth:`CampaignReport.measurement_digest`).
    daq_rows: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """Flat row for tables/CSV (extra metrics inlined)."""
        row = {
            "kind": self.cell.kind,
            "target": self.cell.target,
            "onset": self.cell.onset,
            "duration": self.cell.duration,
            "detected": self.detected,
            "detection_latency": self.detection_latency,
            "detection_source": self.detection_source,
            "dtcs": list(self.confirmed_dtcs),
            "degraded": self.degraded,
            "contained": self.contained,
            "escaped_damage": self.escaped_damage,
            "recovered": self.recovered,
            "recovery_latency": self.recovery_latency,
        }
        row.update(self.extra)
        return row


@dataclass
class CampaignReport:
    """All cell results of one campaign plus summary accessors."""

    results: list[CellResult]
    horizon: int

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.results]

    @property
    def cells(self) -> int:
        return len(self.results)

    @property
    def detection_rate(self) -> Optional[float]:
        if not self.results:
            return None
        return sum(r.detected for r in self.results) / len(self.results)

    @property
    def containment_rate(self) -> Optional[float]:
        if not self.results:
            return None
        return sum(r.contained for r in self.results) / len(self.results)

    @property
    def recovery_rate(self) -> Optional[float]:
        """Share of *recoverable* cells (finite fault window) that
        healed back to nominal before the horizon."""
        finite = [r for r in self.results if r.cell.duration is not None]
        if not finite:
            return None
        return sum(r.recovered for r in finite) / len(finite)

    def detection_latencies(self) -> list[int]:
        return [r.detection_latency for r in self.results
                if r.detection_latency is not None]

    def recovery_latencies(self) -> list[int]:
        return [r.recovery_latency for r in self.results
                if r.recovery_latency is not None]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form of the *sorted* result
        rows — identical for any executor (serial, parallel, resumed)
        that ran the same cells to the same horizon."""
        rows = sorted(self.to_dicts(),
                      key=lambda row: (row["kind"], row["target"],
                                       row["onset"],
                                       -1 if row["duration"] is None
                                       else row["duration"]))
        canonical = json.dumps({"horizon": self.horizon, "cells": rows},
                               sort_keys=True, separators=(",", ":"),
                               default=repr)
        return hashlib.sha256(canonical.encode()).hexdigest()

    @property
    def daq_sample_count(self) -> int:
        return sum(len(r.daq_rows) for r in self.results)

    def measurement_digest(self) -> str:
        """Canonical digest of the DAQ rows collected alongside the
        campaign (``--daq``), keyed and sorted by cell label — the same
        ordering discipline as :meth:`digest`, so it is byte-identical
        across ``--jobs`` levels and ``--resume``."""
        from repro.meas.service import samples_digest

        ordered = sorted(self.results,
                         key=lambda r: (r.cell.kind, r.cell.target,
                                        r.cell.onset,
                                        -1 if r.cell.duration is None
                                        else r.cell.duration))
        return samples_digest([[r.cell.label, r.daq_rows]
                               for r in ordered])

    def summary(self) -> dict:
        """Aggregate verdicts (the report's one-look row)."""
        return {
            "cells": self.cells,
            "detection_rate": self.detection_rate,
            "containment_rate": self.containment_rate,
            "recovery_rate": self.recovery_rate,
            "detection_latency": summarize(self.detection_latencies()),
            "recovery_latency": summarize(self.recovery_latencies()),
            "undetected": [r.cell.label for r in self.results
                           if not r.detected],
            "escaped": [r.cell.label for r in self.results
                        if not r.contained],
        }


class CampaignWorld:
    """Base class for campaign scenarios (duck typing suffices).

    A factory passed to :func:`run_campaign` must return an object per
    cell exposing:

    * ``sim`` — a fresh :class:`~repro.sim.kernel.Simulator`;
    * ``trace`` — the shared :class:`~repro.sim.trace.Trace` all
      subsystems of the scenario log into;
    * ``injector`` — a :class:`~repro.faults.injector.FaultInjector`;
    * ``adapter_for(cell)`` — the fault adapter to inject through;
    * optionally ``errors`` (ErrorManager), ``modes`` (ModeMachine),
      ``allowed_region(cell)`` (containment region, default
      ``{cell.target}``) and ``metrics()`` (extra per-cell readings
      merged into the result row).
    """

    errors = None
    modes = None

    def adapter_for(self, cell: CampaignCell):
        raise NotImplementedError

    def allowed_region(self, cell: CampaignCell) -> set[str]:
        """Trace subjects allowed to show damage for this cell."""
        return {cell.target}

    def detection_categories(self, cell: CampaignCell) -> tuple:
        """Trace categories that count as *detecting* this cell's fault.

        The default is the full :data:`DETECTION_CATEGORIES` tuple;
        worlds whose faults are detected by mechanism-specific evidence
        (a guardian block, a slot-loss record) narrow it per cell.
        """
        return DETECTION_CATEGORIES

    def metrics(self) -> dict:
        """Scenario-specific readings appended to the cell's row."""
        return {}


def _make_world(factory: Callable[..., CampaignWorld],
                seed: Optional[int]) -> CampaignWorld:
    """Build a fresh world, passing ``seed`` to factories that take one.

    Stochastic scenarios declare a ``seed`` parameter (or ``**kwargs``)
    and receive the cell's spawn-derived seed; deterministic worlds
    like :class:`ReferenceWorld` are simply called with no arguments.
    """
    if seed is None:
        return factory()
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return factory()
    if "seed" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()):
        return factory(seed=seed)
    return factory()


def run_cell(factory: Callable[..., CampaignWorld], cell: CampaignCell,
             horizon: int, seed: Optional[int] = None,
             daq_period: Optional[int] = None) -> CellResult:
    """Run one cell: fresh world, one fault, measure, tear down.

    ``daq_period`` (ns, optional) attaches a generic measurement
    service (:func:`repro.meas.service.attach_world`) and samples the
    world cyclically; the rows land in ``result.daq_rows`` without
    touching the cell's trace or digest."""
    with obs.span("campaign.cell", category="campaign", kind=cell.kind,
                  target=cell.target, onset=cell.onset):
        world = _make_world(factory, seed)
        if cell.end is not None and cell.end >= horizon:
            raise ConfigurationError(
                f"cell {cell.label}: fault window must close before the "
                f"horizon {horizon} to measure recovery")
        adapter = world.adapter_for(cell)
        world.injector.inject(adapter, cell.fault())
        service = None
        if daq_period is not None:
            from repro.meas.service import attach_world, default_daq

            service = attach_world(world, node=f"MEAS:{cell.label}")
            service.connect()
            service.start_daq(default_daq(service.registry, daq_period))
        world.sim.run_until(horizon)
        result = _evaluate(world, cell, horizon)
        if service is not None:
            service.detach()
            result.daq_rows = service.sample_rows()
    if obs.enabled():
        obs.count("campaign.cells")
        obs.count(f"campaign.detected_by.{result.detection_source}"
                  if result.detected else "campaign.undetected")
        if result.detection_latency is not None:
            obs.observe("campaign.detection_latency_ns",
                        result.detection_latency)
        if result.recovery_latency is not None:
            obs.observe("campaign.recovery_latency_ns",
                        result.recovery_latency)
        # DEM events were already DLT-logged live by the ErrorManager;
        # harvest the remaining BSW categories (watchdog, recovery,
        # mode, E2E, COM) from the cell's trace without double-counting.
        obs.harvest_trace(
            (r for r in world.trace if not r.category.startswith("dem.")))
    return result


def _cell_worker(factory, horizon: int, cell: CampaignCell,
                 seed: int) -> CellResult:
    """Plan worker (module-level, hence picklable): one cell per call."""
    return run_cell(factory, cell, horizon, seed)


def _daq_cell_worker(factory, horizon: int, daq_period: int,
                     cell: CampaignCell, seed: int) -> CellResult:
    """Plan worker for ``--daq`` campaigns (separate label, so plain
    and DAQ checkpoint journals never mix result shapes)."""
    return run_cell(factory, cell, horizon, seed, daq_period)


def run_campaign(factory: Callable[..., CampaignWorld],
                 cells: Iterable[CampaignCell],
                 horizon: int, jobs: int = 1, base_seed: int = 0,
                 checkpoint=None, resume: bool = False, retries: int = 1,
                 progress=None,
                 interrupt_after: Optional[int] = None,
                 daq_period: Optional[int] = None) -> CampaignReport:
    """Run every cell through a fresh world.

    Cells are executed through :mod:`repro.exec`: sharded one cell per
    chunk, seeded from ``(base_seed, cell_index)``, and merged back in
    plan order — so ``jobs=1`` and ``jobs=N`` yield reports with the
    same :meth:`CampaignReport.digest`.  ``checkpoint``/``resume``
    journal per-cell results to a JSONL file and skip completed cells
    on restart; ``interrupt_after`` aborts after that many completions
    (testing hook for the resume path).
    """
    from repro.exec import Plan, execute

    cells = tuple(cells)
    if daq_period is not None:
        plan = Plan(f"campaign-daq:horizon={horizon}"
                    f":period={daq_period}",
                    functools.partial(_daq_cell_worker, factory, horizon,
                                      daq_period),
                    cells, base_seed=base_seed)
    else:
        plan = Plan(f"campaign:horizon={horizon}",
                    functools.partial(_cell_worker, factory, horizon),
                    cells, base_seed=base_seed)
    outcome = execute(plan, jobs=jobs, retries=retries,
                      checkpoint=checkpoint, resume=resume,
                      progress=progress, interrupt_after=interrupt_after)
    outcome.raise_on_failure()
    return CampaignReport(outcome.results, horizon)


def _evaluate(world: CampaignWorld, cell: CampaignCell,
              horizon: int) -> CellResult:
    trace = world.trace
    detection_time = None
    detection_source = None
    categories = getattr(world, "detection_categories",
                         lambda c: DETECTION_CATEGORIES)(cell)
    for category in categories:
        for record in trace.records(category):
            if record.time < cell.onset:
                continue
            if detection_time is None or record.time < detection_time:
                detection_time = record.time
                detection_source = record.category
            break  # records are time-ordered per category
    detected = detection_time is not None

    errors_snapshot = {}
    confirmed_dtcs: list[int] = []
    if world.errors is not None:
        errors_snapshot = world.errors.snapshot()
        confirmed_dtcs = world.errors.stored_dtcs()

    nominal = None
    degraded = False
    if world.modes is not None:
        nominal = world.modes.history[0][1]
        degraded = any(mode != nominal
                       for _, mode in world.modes.history[1:])

    region = world.allowed_region(cell)
    escaped = containment_violations(trace, region, since=cell.onset)

    # Recovery: after the fault window closes, every confirmed error
    # must heal and the mode machine must return to nominal.
    recovery_time = None
    recovered = False
    if cell.end is not None:
        healed_clean = world.errors is None or not [
            e for e in world.errors.confirmed_events()]
        mode_nominal = world.modes is None \
            or world.modes.current == nominal
        recovered = healed_clean and mode_nominal
        if recovered:
            candidates = [r.time for r in trace.records("dem.healed")
                          if r.time >= cell.end]
            candidates += [r.time for r in
                           trace.records("recovery.deescalate")
                           if r.time >= cell.end]
            if world.modes is not None:
                candidates += [t for t, mode in world.modes.history
                               if t >= cell.end and mode == nominal]
            if candidates:
                recovery_time = max(candidates)

    return CellResult(
        cell=cell,
        detected=detected,
        detection_time=detection_time,
        detection_latency=(detection_time - cell.onset
                           if detected else None),
        detection_source=detection_source,
        confirmed_dtcs=confirmed_dtcs,
        degraded=degraded,
        contained=not escaped,
        escaped_damage=len(escaped),
        recovered=recovered,
        recovery_time=recovery_time,
        recovery_latency=(recovery_time - cell.end
                          if recovery_time is not None else None),
        errors=errors_snapshot,
        extra=world.metrics(),
    )


# ---------------------------------------------------------------------------
# Reference scenario: a protected speed link on CAN with full recovery
# ---------------------------------------------------------------------------
#: DTCs the reference world stores.
DTC_SPEED_E2E = 0x4A01
DTC_PRODUCER_ALIVE = 0x4A02

#: Stuck-at value the reference corruption cells inject (outside the
#: producer's plausible 0..200 km/h range).
CORRUPT_VALUE = 0xFFFF


class ReferenceWorld(CampaignWorld):
    """Two-ECU CAN scenario wiring the whole protection/recovery stack.

    ECU A runs a periodic ``producer`` task (10 ms) writing a 16-bit
    ``speed`` signal into an E2E-protected PDU; ECU B consumes it.  A
    watchdog supervises the producer, an E2E receiver checks the link,
    both feed a debouncing error manager, and a recovery orchestrator
    escalates confirmed errors through substitution → limp mode →
    partition restart, healing back after the fault clears.  One world
    instance is one cell's universe.
    """

    PERIOD = 10_000_000          # 10 ms producer/pdu period
    E2E_TIMEOUT = 30_000_000     # 30 ms reception supervision
    WDG_WINDOW = 25_000_000      # 25 ms alive supervision window
    HOLD = 20_000_000            # escalation / heal hysteresis hold

    def __init__(self):
        from repro.bsw import (ErrorEvent, ErrorManager, ModeMachine,
                               RecoveryOrchestrator, RecoveryPolicy,
                               WatchdogManager)
        from repro.com import (CanComAdapter, ComStack, E2eProfile,
                               PERIODIC, SignalSpec, e2e_protected_pdu,
                               protect_link)
        from repro.network import CanBus, CanFrameSpec
        from repro.faults.injector import FaultInjector
        from repro.osek import EcuKernel, FixedPriorityScheduler, TaskSpec
        from repro.sim import Simulator, Trace

        self.sim = Simulator()
        self.trace = Trace()
        self.injector = FaultInjector(self.sim, self.trace)
        self.bus = CanBus(self.sim, 500_000, trace=self.trace)
        self.idiot_ctrl = self.bus.attach("idiot")

        # --- ECU A: producer task + protected tx stack ----------------
        self.kernel = EcuKernel(self.sim, FixedPriorityScheduler(),
                                trace=self.trace, name="EcuA")
        spec = SignalSpec("speed", 16, timeout=self.E2E_TIMEOUT)
        profile = E2eProfile(0x2A5A, timeout=self.E2E_TIMEOUT)
        self.tx = ComStack(
            self.sim,
            CanComAdapter(self.bus.attach("A"),
                          {"P": CanFrameSpec("P", 0x100)}),
            "A", trace=self.trace)
        self.tx.add_tx_pdu(e2e_protected_pdu("P", 8, [spec], profile),
                           mode=PERIODIC, period=self.PERIOD)
        self.kmh = 0

        def produce(job):
            self.kmh = (self.kmh + 1) % 200
            self.tx.write_signal("speed", self.kmh)

        self.producer = self.kernel.add_task(
            TaskSpec("producer", wcet=1_000_000, period=self.PERIOD,
                     budget=2_000_000, priority=5),
            on_complete=produce)
        self.watchdog = WatchdogManager(self.sim, trace=self.trace,
                                        name="WdgA")
        self.watchdog.supervise_task(self.kernel, "producer",
                                     window=self.WDG_WINDOW)

        # --- ECU B: protected rx stack + app-level consumption --------
        self.rx = ComStack(self.sim,
                           CanComAdapter(self.bus.attach("B"), {}),
                           "B", trace=self.trace)
        self.rx.add_rx_pdu(e2e_protected_pdu(
            "P", 8, [SignalSpec("speed", 16, timeout=self.E2E_TIMEOUT)],
            profile))
        self.receiver = protect_link(self.tx, self.rx, "P", profile)
        self.deliveries: list[tuple[int, int]] = []
        self.rx.on_signal(
            "speed",
            lambda value: self.deliveries.append((self.sim.now, value)))

        # --- Error handling, modes, recovery --------------------------
        self.errors = ErrorManager("SYS", trace=self.trace,
                                   now=lambda: self.sim.now)
        self.errors.register(ErrorEvent("speed_e2e", DTC_SPEED_E2E,
                                        threshold=2))
        self.errors.register(ErrorEvent("producer_alive",
                                        DTC_PRODUCER_ALIVE,
                                        threshold=2, fail_step=2))
        self.modes = ModeMachine("vehicle", ["nominal", "limp", "safe"],
                                 "nominal", trace=self.trace)
        self.modes.bind_clock(lambda: self.sim.now)
        self.modes.allow_chain("nominal", "limp", "safe")
        self.modes.allow_chain("safe", "limp", "nominal")
        self.recovery = RecoveryOrchestrator(
            self.sim, self.errors, modes=self.modes,
            watchdog=self.watchdog, com=self.rx, trace=self.trace)
        self.recovery.add_policy(RecoveryPolicy(
            "speed_e2e", signal="speed", degraded_mode="limp",
            escalate_hold=self.HOLD, heal_hold=self.HOLD))
        self.recovery.add_policy(RecoveryPolicy(
            "producer_alive", degraded_mode="limp",
            restart_entity="producer",
            escalate_hold=self.HOLD, heal_hold=self.HOLD))
        self.recovery.bind_e2e(self.receiver, "speed_e2e",
                               signal="speed")
        self.recovery.bind_watchdog({"producer": "producer_alive"},
                                    poll=self.WDG_WINDOW)

    # ------------------------------------------------------------------
    def adapter_for(self, cell: CampaignCell):
        from repro.faults.injector import (CanNodeAdapter,
                                           ComSignalAdapter, TaskAdapter)
        from repro.faults.model import BABBLING

        if cell.target == "speed":
            return ComSignalAdapter(self.rx, "speed")
        if cell.target == "producer":
            return TaskAdapter(self.kernel, self.producer)
        if cell.target == "idiot" and cell.kind == BABBLING:
            return CanNodeAdapter(self.sim, self.idiot_ctrl,
                                  flood_period=150_000)
        raise ConfigurationError(
            f"reference world cannot inject {cell.kind} on "
            f"{cell.target!r}")

    def allowed_region(self, cell: CampaignCell) -> set[str]:
        # The producer's region includes its own frame and signal: a
        # producer fault may legitimately starve them.
        if cell.target == "producer":
            return {"producer", "P", "speed"}
        return {cell.target, "P"}

    def metrics(self) -> dict:
        undetected = sum(1 for _, value in self.deliveries
                         if value == CORRUPT_VALUE)
        return {
            "app_deliveries": len(self.deliveries),
            "undetected_corrupted": undetected,
            "e2e_errors": self.receiver.error_count,
            "substituted": self.rx.substituted_signals(),
        }


def reference_cells(onset: int = 50_000_000,
                    duration: int = 100_000_000) -> list[CampaignCell]:
    """The reference matrix: all five fault kinds, one target each."""
    from repro.faults.model import (BABBLING, CORRUPTION, CRASH, OMISSION,
                                    TIMING_OVERRUN)
    return [
        CampaignCell(CORRUPTION, "speed", onset, duration,
                     {"value": CORRUPT_VALUE}),
        CampaignCell(OMISSION, "speed", onset, duration),
        CampaignCell(BABBLING, "idiot", onset, duration),
        CampaignCell(CRASH, "producer", onset, duration),
        CampaignCell(TIMING_OVERRUN, "producer", onset, duration),
    ]
