"""Containment monitors: did a fault stay inside its region?

A *fault containment region* (FCR) is a set of trace subjects belonging
to the faulty element.  :func:`containment_violations` scans a trace for
damage (deadline misses, COM timeouts, collisions) attributed to subjects
*outside* the region — exactly the paper's error-containment criterion.
:func:`compare_runs` supports the stronger differential form: a victim's
observable timing must be identical with and without the fault.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import FaultContainmentViolation
from repro.sim.trace import Trace

#: Trace categories that indicate damage to the subject.
DAMAGE_CATEGORIES = (
    "task.deadline_miss",
    "task.budget_overrun",
    "com.timeout",
    "ttp.collision",
    "ttp.membership_drop",
    "flexray.slot_lost",
)


def containment_violations(trace: Trace, region: Iterable[str],
                           since: int = 0,
                           categories: Iterable[str] = DAMAGE_CATEGORIES
                           ) -> list:
    """Damage records outside the fault containment region.

    ``region`` subjects are matched exactly or as dotted prefixes, so a
    region of ``{"N2"}`` also owns ``"N2.state"``.
    """
    region = set(region)

    def in_region(subject: str) -> bool:
        return any(subject == r or subject.startswith(r + ".")
                   for r in region)

    violations = []
    for category in categories:
        for record in trace.records(category):
            if record.time < since:
                continue
            if not in_region(record.subject):
                violations.append(record)
    return violations


def assert_contained(trace: Trace, region: Iterable[str],
                     since: int = 0) -> None:
    """Raise :class:`FaultContainmentViolation` when damage escaped."""
    violations = containment_violations(trace, region, since)
    if violations:
        first = violations[0]
        raise FaultContainmentViolation(
            f"{len(violations)} damage record(s) outside region "
            f"{sorted(region)}; first: {first.category} on "
            f"{first.subject} at t={first.time}")


def compare_runs(build_and_run: Callable[[bool], list],
                 ) -> tuple[list, list]:
    """Run a scenario twice — baseline and faulted.

    ``build_and_run(faulted)`` must construct a *fresh* simulation,
    run it, and return the victim's observable metric series (e.g.
    reception times or response times).  Returns (baseline, faulted).
    """
    return build_and_run(False), build_and_run(True)


def is_isolated(baseline: list, faulted: list) -> bool:
    """Strong isolation: the victim's series is bit-for-bit identical."""
    return baseline == faulted


def degradation(baseline: list, faulted: list) -> Optional[float]:
    """Relative worst-case degradation of a latency series
    (``max_f / max_b - 1``); None when either series is empty."""
    if not baseline or not faulted:
        return None
    return max(faulted) / max(baseline) - 1.0
