"""Fault injection: adapters apply fault kinds to concrete subsystems.

An adapter knows how to switch one fault kind on and off for one target
(a TTP node, an OS task, a CAN controller, an IP core).  The
:class:`FaultInjector` schedules activation/deactivation on the simulator
and keeps the fault log the containment monitors read.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.faults.model import (BABBLING, CORRUPTION, CRASH, DELAY, Fault,
                                OMISSION, TIMING_OVERRUN)
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace


class FaultAdapter:
    """Base adapter: subclasses implement apply/revert per fault kind."""

    #: fault kinds this adapter supports.
    supports: tuple = ()

    def __init__(self, target_name: str):
        self.target_name = target_name

    def apply(self, fault: Fault) -> None:
        """Switch the fault on (subclass responsibility)."""
        raise NotImplementedError

    def revert(self, fault: Fault) -> None:
        """Switch the fault off (subclass responsibility)."""
        raise NotImplementedError

    def check(self, fault: Fault) -> None:
        """Reject fault kinds this adapter does not support."""
        if fault.kind not in self.supports:
            raise ConfigurationError(
                f"adapter for {self.target_name} does not support "
                f"{fault.kind!r} (supports {self.supports})")


class TtpNodeAdapter(FaultAdapter):
    """Faults on a TTP cluster node."""

    supports = (CRASH, BABBLING)

    def __init__(self, node):
        super().__init__(node.name)
        self.node = node

    def apply(self, fault: Fault) -> None:
        """Activate the fault on the TTP node."""
        if fault.kind == CRASH:
            self.node.crash()
        else:
            self.node.start_babbling()

    def revert(self, fault: Fault) -> None:
        """Deactivate the fault on the TTP node."""
        if fault.kind == CRASH:
            self.node.recover()
        else:
            self.node.stop_babbling()


class TaskAdapter(FaultAdapter):
    """Faults on an OS task: execution-time overruns and crashes
    (crash = activations stop producing work: modelled by forcing a
    1-tick execution that performs no output via the overrun hook is not
    faithful, so crash instead suppresses activations)."""

    supports = (TIMING_OVERRUN, CRASH)

    def __init__(self, kernel, task):
        super().__init__(task.name)
        self.kernel = kernel
        self.task = task
        # Healthy values are captured once, on the *first* overlapping
        # apply of each kind, so stacked fault windows reverted in any
        # order always restore the original behaviour.
        self._saved_execution_time = None
        self._overrun_depth = 0
        self._saved_max_activations = None
        self._crash_depth = 0

    def apply(self, fault: Fault) -> None:
        """Activate the overrun or crash behaviour on the task."""
        if fault.kind == TIMING_OVERRUN:
            factor = fault.params.get("factor", 10.0)
            base = self.task.spec.wcet
            if self._overrun_depth == 0:
                self._saved_execution_time = self.task.execution_time
            self._overrun_depth += 1
            self.task.execution_time = lambda: max(1, round(base * factor))
        else:  # CRASH: drop all future activations
            if self._crash_depth == 0:
                self._saved_max_activations = self.task.spec.max_activations
            self._crash_depth += 1
            self.task.spec.max_activations = 0

    def revert(self, fault: Fault) -> None:
        """Restore the task's healthy behaviour."""
        if fault.kind == TIMING_OVERRUN:
            self._overrun_depth = max(0, self._overrun_depth - 1)
            if self._overrun_depth == 0:
                self.task.execution_time = self._saved_execution_time
                self._saved_execution_time = None
        else:
            self._crash_depth = max(0, self._crash_depth - 1)
            if self._crash_depth == 0:
                self.task.spec.max_activations = self._saved_max_activations
                self._saved_max_activations = None


class CanNodeAdapter(FaultAdapter):
    """Faults on a CAN controller: babbling idiot (floods the bus with a
    top-priority frame) and crash (bus-off)."""

    supports = (BABBLING, CRASH)

    def __init__(self, sim: Simulator, controller, flood_period: int,
                 flood_id: int = 0):
        super().__init__(controller.node)
        self.sim = sim
        self.controller = controller
        self.flood_period = flood_period
        self.flood_id = flood_id
        self._flood_handle = None

    def apply(self, fault: Fault) -> None:
        """Start flooding (babbling) or go bus-off (crash)."""
        if fault.kind == CRASH:
            self.controller.set_bus_off(True)
            return
        from repro.network.can import CanFrameSpec
        spec = CanFrameSpec(f"babble.{self.target_name}", self.flood_id,
                            dlc=8)

        def flood():
            self.controller.send(spec, payload=0)
            self._flood_handle = self.sim.schedule(self.flood_period, flood)

        self._flood_handle = self.sim.schedule(0, flood)

    def revert(self, fault: Fault) -> None:
        """Stop the fault; babbling reverts flush the backlog."""
        if fault.kind == CRASH:
            self.controller.set_bus_off(False)
            return
        if self._flood_handle is not None:
            self._flood_handle.cancel()
            self._flood_handle = None
        # Fault end models a controller reset: drop the babble backlog.
        self.controller.flush()


class IpCoreAdapter(FaultAdapter):
    """Faults on an MPSoC IP core."""

    supports = (BABBLING,)

    def __init__(self, core, victim, interval: int):
        super().__init__(core.name)
        self.core = core
        self.victim = victim
        self.interval = interval

    def apply(self, fault: Fault) -> None:
        """Start the core's babbling flood."""
        self.core.start_babbling(self.victim, self.interval)

    def revert(self, fault: Fault) -> None:
        """Stop the core's babbling flood."""
        self.core.stop_babbling()


class ComSignalAdapter(FaultAdapter):
    """Faults on a COM signal path: omission (drop every reception) and
    corruption (overwrite received values).

    The adapter registers a *filter* in the ComStack's rx-filter
    registry rather than capturing ``_on_pdu`` itself: several adapters
    on the same stack stack cleanly, installs are idempotent, and
    reverting one adapter never leaves another holding a stale chain.
    """

    supports = (OMISSION, CORRUPTION)

    def __init__(self, com_stack, signal_name: str):
        super().__init__(f"{com_stack.node}:{signal_name}")
        self.com = com_stack
        self.signal_name = signal_name
        self._active_fault = None

    def apply(self, fault: Fault) -> None:
        """Interpose on the COM rx path (omission/corruption)."""
        self._active_fault = fault
        self.com.add_rx_filter(self._filter)

    def revert(self, fault: Fault) -> None:
        """Stop filtering; the interposer stays installed but passive."""
        self._active_fault = None

    def uninstall(self) -> None:
        """Remove the interposer from the stack entirely."""
        self._active_fault = None
        self.com.remove_rx_filter(self._filter)

    def _filter(self, pdu_name: str, payload: int) -> Optional[int]:
        fault = self._active_fault
        if fault is None:
            return payload
        ipdu = self.com._rx_pdus.get(pdu_name)
        if ipdu is None or self.signal_name not in ipdu.signal_names():
            return payload
        if fault.kind == OMISSION:
            return None  # drop the whole PDU carrying the signal
        mapping = ipdu.mapping_of(self.signal_name)
        stuck = fault.params.get("value", mapping.spec.max_value)
        mask = ((1 << mapping.spec.width_bits) - 1) << mapping.start_bit
        return (payload & ~mask) | (stuck << mapping.start_bit)


class ComDelayAdapter(FaultAdapter):
    """Delay faults on a COM rx path: every PDU carrying the signal is
    withheld and redelivered ``params["delay"]`` later.

    Redelivery calls ``_on_pdu`` directly — the post-filter entry point —
    so the delayed copy is not run through the rx-filter registry again
    (which would re-capture it and delay forever).
    """

    supports = (DELAY,)

    def __init__(self, sim: Simulator, com_stack, signal_name: str):
        super().__init__(f"{com_stack.node}:{signal_name}")
        self.sim = sim
        self.com = com_stack
        self.signal_name = signal_name
        self._active_fault = None
        self._installed = False

    def apply(self, fault: Fault) -> None:
        """Start withholding receptions of the signal's PDU."""
        self._active_fault = fault
        if not self._installed:
            self.com.add_rx_filter(self._filter)
            self._installed = True

    def revert(self, fault: Fault) -> None:
        """Stop delaying new receptions (in-flight ones still arrive)."""
        self._active_fault = None

    def _filter(self, pdu_name: str, payload: int) -> Optional[int]:
        fault = self._active_fault
        if fault is None:
            return payload
        ipdu = self.com._rx_pdus.get(pdu_name)
        if ipdu is None or self.signal_name not in ipdu.signal_names():
            return payload
        delay = fault.params.get("delay", 0)
        self.sim.schedule(delay, lambda: self.com._on_pdu(pdu_name, payload))
        return None


class CanBusErrorAdapter(FaultAdapter):
    """Error bursts on the CAN medium: while active, every transmission
    attempt of one frame is destroyed by an error frame (the controller
    retransmits automatically, so the fault manifests as latency, not
    silent loss)."""

    supports = (CORRUPTION,)

    def __init__(self, bus, frame_name: str):
        super().__init__(f"{bus.name}:{frame_name}")
        self.bus = bus
        self.frame_name = frame_name
        self._saved_model = None

    def apply(self, fault: Fault) -> None:
        """Install the targeted error model (chaining any existing one)."""
        self._saved_model = self.bus.error_model
        saved = self._saved_model

        def error_model(spec, msg):
            if spec.name == self.frame_name:
                return True
            return saved is not None and saved(spec, msg)

        self.bus.error_model = error_model

    def revert(self, fault: Fault) -> None:
        """Restore the bus's previous error model."""
        self.bus.error_model = self._saved_model
        self._saved_model = None


class FlexRaySlotAdapter(FaultAdapter):
    """Slot corruption on a FlexRay bus: while active, the static slot
    carrying one frame is corrupted every cycle (the bus logs
    ``flexray.slot_lost`` and drops the frame)."""

    supports = (OMISSION,)

    def __init__(self, bus, frame_name: str):
        super().__init__(f"flexray:{frame_name}")
        self.bus = bus
        self.frame_name = frame_name
        self._saved_model = None

    def apply(self, fault: Fault) -> None:
        """Install the targeted slot-fault model (chaining any existing
        one)."""
        self._saved_model = self.bus.fault_model
        saved = self._saved_model

        def fault_model(assignment, cycle):
            if assignment.frame_name == self.frame_name:
                return True
            return saved is not None and saved(assignment, cycle)

        self.bus.fault_model = fault_model

    def revert(self, fault: Fault) -> None:
        """Restore the bus's previous slot-fault model."""
        self.bus.fault_model = self._saved_model
        self._saved_model = None


class GuardedCanNodeAdapter(FaultAdapter):
    """Babbling idiot behind a bus guardian: the flood loop asks the
    guardian for permission before every send, so an untimely
    transmission attempt is *blocked at the physical layer* instead of
    reaching the bus.  Each blocked attempt is logged as a
    ``guardian.blocked`` trace record (the containment evidence the
    resilience oracle checks for)."""

    supports = (BABBLING,)

    def __init__(self, sim: Simulator, controller, guardian,
                 flood_period: int, trace: Trace, flood_id: int = 0):
        super().__init__(controller.node)
        self.sim = sim
        self.controller = controller
        self.guardian = guardian
        self.flood_period = flood_period
        self.trace = trace
        self.flood_id = flood_id
        self._flood_handle = None

    def apply(self, fault: Fault) -> None:
        """Start the guarded flood loop."""
        from repro.network.can import CanFrameSpec
        spec = CanFrameSpec(f"babble.{self.target_name}", self.flood_id,
                            dlc=8)

        def flood():
            if self.guardian.permit(self.sim.now):
                self.controller.send(spec, payload=0)
            else:
                self.trace.log(self.sim.now, "guardian.blocked",
                               self.target_name, frame=spec.name)
            self._flood_handle = self.sim.schedule(self.flood_period, flood)

        self._flood_handle = self.sim.schedule(0, flood)

    def revert(self, fault: Fault) -> None:
        """Stop flooding and flush whatever the guardian let through."""
        if self._flood_handle is not None:
            self._flood_handle.cancel()
            self._flood_handle = None
        self.controller.flush()


class FaultInjector:
    """Schedules faults and keeps the injection log."""

    def __init__(self, sim: Simulator, trace: Optional[Trace] = None):
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.faults: list[Fault] = []

    def inject(self, adapter: FaultAdapter, fault: Fault) -> Fault:
        """Schedule a fault's activation (and deactivation) window.

        The window is validated against the simulator clock: a fault
        whose deactivation would fire at or before its activation
        (zero/negative duration, or a window already entirely in the
        past) is rejected instead of silently scheduling a deactivate
        that never follows an active phase.
        """
        adapter.check(fault)
        if fault.duration is not None:
            if fault.duration <= 0:
                raise ConfigurationError(
                    f"fault on {fault.target}: duration must be > 0, "
                    f"got {fault.duration}")
            if fault.end < fault.start:
                raise ConfigurationError(
                    f"fault on {fault.target}: end {fault.end} before "
                    f"start {fault.start}")
            if fault.end <= self.sim.now:
                raise ConfigurationError(
                    f"fault on {fault.target}: window "
                    f"[{fault.start}, {fault.end}) already past at "
                    f"t={self.sim.now}")
        self.faults.append(fault)

        def activate():
            fault.active = True
            adapter.apply(fault)
            self.trace.log(self.sim.now, "fault.activate", fault.target,
                           kind=fault.kind)

        self.sim.schedule_at(max(self.sim.now, fault.start), activate)
        if fault.duration is not None:
            def deactivate():
                fault.active = False
                adapter.revert(fault)
                self.trace.log(self.sim.now, "fault.deactivate",
                               fault.target, kind=fault.kind)

            self.sim.schedule_at(max(self.sim.now, fault.end), deactivate)
        return fault

    def active_faults(self) -> list[Fault]:
        """Faults currently switched on."""
        return [fault for fault in self.faults if fault.active]

    def __repr__(self) -> str:
        return f"<FaultInjector faults={len(self.faults)}>"
