"""Fault injection and containment monitoring (paper Section 4)."""

from repro.faults.injector import (CanNodeAdapter, ComSignalAdapter,
                                   FaultAdapter, FaultInjector,
                                   IpCoreAdapter, TaskAdapter,
                                   TtpNodeAdapter)
from repro.faults.model import (BABBLING, CORRUPTION, CRASH, FAULT_KINDS,
                                Fault, OMISSION, TIMING_OVERRUN)
from repro.faults.monitor import (DAMAGE_CATEGORIES, assert_contained,
                                  compare_runs, containment_violations,
                                  degradation, is_isolated)

__all__ = [
    "CanNodeAdapter", "ComSignalAdapter", "FaultAdapter", "FaultInjector",
    "IpCoreAdapter", "TaskAdapter", "TtpNodeAdapter",
    "BABBLING", "CORRUPTION", "CRASH", "FAULT_KINDS", "Fault", "OMISSION",
    "TIMING_OVERRUN",
    "DAMAGE_CATEGORIES", "assert_contained", "compare_runs",
    "containment_violations", "degradation", "is_isolated",
]
