"""Fault injection and containment monitoring (paper Section 4)."""

from repro.faults.campaign import (CampaignCell, CampaignReport,
                                   CampaignWorld, CellResult,
                                   DETECTION_CATEGORIES, ReferenceWorld,
                                   grid, reference_cells, run_campaign,
                                   run_cell)
from repro.faults.injector import (CanNodeAdapter, ComSignalAdapter,
                                   FaultAdapter, FaultInjector,
                                   IpCoreAdapter, TaskAdapter,
                                   TtpNodeAdapter)
from repro.faults.model import (BABBLING, CORRUPTION, CRASH, FAULT_KINDS,
                                Fault, OMISSION, TIMING_OVERRUN)
from repro.faults.monitor import (DAMAGE_CATEGORIES, assert_contained,
                                  compare_runs, containment_violations,
                                  degradation, is_isolated)

__all__ = [
    "CampaignCell", "CampaignReport", "CampaignWorld", "CellResult",
    "DETECTION_CATEGORIES", "ReferenceWorld", "grid", "reference_cells",
    "run_campaign", "run_cell",
    "CanNodeAdapter", "ComSignalAdapter", "FaultAdapter", "FaultInjector",
    "IpCoreAdapter", "TaskAdapter", "TtpNodeAdapter",
    "BABBLING", "CORRUPTION", "CRASH", "FAULT_KINDS", "Fault", "OMISSION",
    "TIMING_OVERRUN",
    "DAMAGE_CATEGORIES", "assert_contained", "compare_runs",
    "containment_violations", "degradation", "is_isolated",
]
