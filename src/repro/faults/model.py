"""Fault vocabulary.

The paper's Section 4 is about *fault containment*: a fault in one
component (hardware or software) must not disturb others.  The kinds
modelled here cover the failure modes the paper and its references name:

* ``CRASH`` — fail-silent: the element stops producing output;
* ``BABBLING`` — babbling idiot: the element transmits continuously,
  including outside its rights;
* ``TIMING_OVERRUN`` — software exceeds its execution-time budget;
* ``OMISSION`` — sporadic message loss;
* ``CORRUPTION`` — delivered values are wrong (detected by range checks
  or CRC at the consumer);
* ``DELAY`` — messages arrive, but late (detected by deadline/timeout
  supervision rather than value checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

CRASH = "crash"
BABBLING = "babbling"
TIMING_OVERRUN = "timing_overrun"
OMISSION = "omission"
CORRUPTION = "corruption"
DELAY = "delay"

FAULT_KINDS = (CRASH, BABBLING, TIMING_OVERRUN, OMISSION, CORRUPTION,
               DELAY)


@dataclass
class Fault:
    """One injected fault: what, where, when, for how long."""

    kind: str
    target: str
    start: int
    duration: Optional[int] = None  # None = permanent
    params: dict = field(default_factory=dict)
    active: bool = False

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; use one of "
                f"{FAULT_KINDS}")
        if self.start < 0:
            raise ConfigurationError("fault start must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("fault duration must be > 0")

    @property
    def end(self) -> Optional[int]:
        """Absolute deactivation time (None = permanent)."""
        if self.duration is None:
            return None
        return self.start + self.duration

    def __repr__(self) -> str:
        window = (f"[{self.start}, {self.end})" if self.end is not None
                  else f"[{self.start}, inf)")
        return f"<Fault {self.kind} on {self.target} {window}>"
