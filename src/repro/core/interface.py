"""Port interfaces: sender-receiver and client-server.

These are the "functional interfaces … published in function catalogues"
of the paper's Section 2: a supplier publishes the interface without
disclosing the component's internals, and the integrator checks structural
compatibility at connection time.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.core.types import DataType


class SenderReceiverInterface:
    """Data-oriented interface: named elements, each with a type.

    Elements listed in ``queued`` use *event* semantics: every sent
    value is delivered exactly once through a receiver-side FIFO
    (``ctx.receive``), instead of the default *last-is-best* state
    semantics (``ctx.read``).  Queuedness is part of the interface, so
    both sides agree on it by construction.
    """

    kind = "sender-receiver"

    def __init__(self, name: str, elements: dict[str, DataType],
                 queued: Optional[set] = None):
        if not elements:
            raise ConfigurationError(
                f"interface {name}: needs at least one element")
        self.name = name
        self.elements = dict(elements)
        self.queued = frozenset(queued or ())
        unknown = self.queued - set(self.elements)
        if unknown:
            raise ConfigurationError(
                f"interface {name}: queued elements {sorted(unknown)} "
                f"are not declared")

    def is_queued(self, element: str) -> bool:
        """Whether an element uses queued (event) semantics."""
        return element in self.queued

    def compatible_with(self, other) -> bool:
        """Structural compatibility: same element names with compatible
        types and identical queuedness (interface *names* may differ
        across catalogues)."""
        if not isinstance(other, SenderReceiverInterface):
            return False
        if set(self.elements) != set(other.elements):
            return False
        if self.queued != other.queued:
            return False
        return all(self.elements[k].compatible_with(other.elements[k])
                   for k in self.elements)

    def __repr__(self) -> str:
        return f"<SRInterface {self.name} {sorted(self.elements)}>"


class Operation:
    """One operation of a client-server interface."""

    def __init__(self, name: str, args: Optional[dict[str, DataType]] = None,
                 returns: Optional[DataType] = None):
        self.name = name
        self.args = dict(args or {})
        self.returns = returns

    def compatible_with(self, other: "Operation") -> bool:
        """Structural compatibility: same args and return typing."""
        if set(self.args) != set(other.args):
            return False
        if not all(self.args[k].compatible_with(other.args[k])
                   for k in self.args):
            return False
        if (self.returns is None) != (other.returns is None):
            return False
        if self.returns is not None and not self.returns.compatible_with(
                other.returns):
            return False
        return True

    def __repr__(self) -> str:
        ret = self.returns.name if self.returns else "void"
        return f"<Operation {self.name}({sorted(self.args)}) -> {ret}>"


class ClientServerInterface:
    """Operation-oriented interface."""

    kind = "client-server"

    def __init__(self, name: str, operations: dict[str, Operation]):
        if not operations:
            raise ConfigurationError(
                f"interface {name}: needs at least one operation")
        for op_name, operation in operations.items():
            if op_name != operation.name:
                raise ConfigurationError(
                    f"interface {name}: key {op_name!r} != operation "
                    f"name {operation.name!r}")
        self.name = name
        self.operations = dict(operations)

    def compatible_with(self, other) -> bool:
        """Structural compatibility: same operations, pairwise compatible."""
        if not isinstance(other, ClientServerInterface):
            return False
        if set(self.operations) != set(other.operations):
            return False
        return all(self.operations[k].compatible_with(other.operations[k])
                   for k in self.operations)

    def __repr__(self) -> str:
        return f"<CSInterface {self.name} {sorted(self.operations)}>"
