"""Transferability conformance checking: VFB vs deployment.

The RTE's contract is that application behaviour designed against the
VFB transfers unchanged to any deployment ("the RTE is the run-time
implementation of the VFB", Section 2).  :func:`check_transferability`
mechanizes the check: build the application twice from factories (fresh
instances, so per-instance state cannot leak between the two runs), run
the VFB reference and the deployed system to the same horizon, and
compare the observed port values.

Factories are required rather than instances because component state
dicts are shared between a composition and its flattened/deployed form —
reusing one composition object for both runs would contaminate the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.composition import Composition
from repro.core.vfb import VfbSimulation
from repro.sim.kernel import Simulator


@dataclass
class ConformanceReport:
    """Outcome of a VFB-vs-deployment comparison."""

    ok: bool
    observed: int = 0
    mismatches: list[dict] = field(default_factory=list)
    vfb_values: dict = field(default_factory=dict)
    deployed_values: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_transferability(
        app_factory: Callable[[], Composition],
        system_factory: Callable[[Composition], "SystemModel"],
        horizon: int,
        observe: list[tuple[str, str, str]],
        settle: int = 0) -> ConformanceReport:
    """Run the application on the VFB and deployed; compare buffers.

    ``observe`` lists ``(instance, port, element)`` buffers to compare.
    ``settle`` grants the deployment extra time after the horizon so
    in-flight frames and pending activations can drain (the VFB is
    instantaneous; a deployment is not) — pick it larger than the
    worst end-to-end latency but smaller than the producers' periods,
    so no *new* values are produced during settling.
    """
    vfb_sim = Simulator()
    vfb = VfbSimulation(vfb_sim, app_factory())
    vfb.start()
    vfb_sim.run_until(horizon)

    deployed_sim = Simulator()
    runtime = system_factory(app_factory()).build(deployed_sim)
    deployed_sim.run_until(horizon + settle)

    report = ConformanceReport(ok=True, observed=len(observe))
    for instance, port, element in observe:
        vfb_value = vfb.value_of(instance, port, element)
        deployed_value = runtime.value_of(instance, port, element)
        key = f"{instance}.{port}.{element}"
        report.vfb_values[key] = vfb_value
        report.deployed_values[key] = deployed_value
        if vfb_value != deployed_value:
            report.ok = False
            report.mismatches.append({
                "buffer": key,
                "vfb": vfb_value,
                "deployed": deployed_value,
            })
    return report
