"""Application data types.

A :class:`DataType` is a named, width-bounded unsigned integer type — the
subset that maps 1:1 onto COM signals, which keeps the VFB-to-network path
lossless.  Physical interpretation (scale/offset/unit) is carried as
metadata for documentation and contract predicates.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class DataType:
    """An unsigned integer application type of ``width_bits`` bits."""

    def __init__(self, name: str, width_bits: int, initial: int = 0,
                 scale: float = 1.0, offset: float = 0.0, unit: str = ""):
        if width_bits <= 0 or width_bits > 64:
            raise ConfigurationError(
                f"type {name}: width must be 1..64 bits")
        self.name = name
        self.width_bits = width_bits
        self.scale = scale
        self.offset = offset
        self.unit = unit
        self.initial = initial
        self.validate(initial)

    @property
    def max_value(self) -> int:
        """Largest raw value the type's width can carry."""
        return (1 << self.width_bits) - 1

    def validate(self, value: int) -> int:
        """Check ``value`` fits the type; returns it for chaining."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ConfigurationError(
                f"type {self.name}: expected int, got {value!r}")
        if not 0 <= value <= self.max_value:
            raise ConfigurationError(
                f"type {self.name}: {value} outside 0..{self.max_value}")
        return value

    def to_physical(self, raw: int) -> float:
        """Raw-to-physical conversion (``raw * scale + offset``)."""
        return raw * self.scale + self.offset

    def from_physical(self, physical: float) -> int:
        """Physical-to-raw conversion, validated against the width."""
        return self.validate(round((physical - self.offset) / self.scale))

    def compatible_with(self, other: "DataType") -> bool:
        """Structural compatibility: same width (name/unit are
        documentation)."""
        return self.width_bits == other.width_bits

    def __repr__(self) -> str:
        return f"<DataType {self.name}:{self.width_bits}b>"


BOOL = DataType("boolean", 1)
UINT8 = DataType("uint8", 8)
UINT16 = DataType("uint16", 16)
UINT32 = DataType("uint32", 32)
