"""System models: composition + ECUs + mapping + bus.

A :class:`SystemModel` is the integrator's view: the flattened component
network, the ECU inventory, the instance-to-ECU mapping and the bus
configuration.  :meth:`SystemModel.validate` performs the "prior to
implementation system configuration checks" the paper calls for (Section
2, limitation 2); :meth:`SystemModel.build` generates the RTE and returns
a runnable :class:`~repro.core.rte.SystemRuntime`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.core.composition import Composition
from repro.core.ecu import EcuSpec
from repro.core.interface import (ClientServerInterface,
                                  SenderReceiverInterface)

SUPPORTED_BUSES = ("can", "flexray", "tte", None)


class SystemModel:
    """A deployable system description."""

    def __init__(self, name: str):
        self.name = name
        self.ecus: dict[str, EcuSpec] = {}
        self.root: Optional[Composition] = None
        self.mapping: dict[str, str] = {}
        #: per-domain bus configuration: domain -> (kind, params).
        self.domain_buses: dict[str, tuple[Optional[str], dict]] = {}
        self.can_ids: dict[str, int] = {}
        self.gateway_delay: int = 100_000

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_ecu(self, name: str, scheduler_factory=None,
                budget_enforcement: str = "kill",
                domain: str = "default") -> EcuSpec:
        """Declare an ECU (optionally with scheduler, protection, domain)."""
        if name in self.ecus:
            raise ConfigurationError(f"duplicate ECU {name!r}")
        ecu = EcuSpec(name, scheduler_factory, budget_enforcement, domain)
        self.ecus[name] = ecu
        return ecu

    def set_root(self, composition: Composition) -> None:
        """Set the composition this system deploys."""
        self.root = composition

    def map(self, instance_name: str, ecu_name: str) -> None:
        """Map a flattened instance name onto an ECU."""
        self.mapping[instance_name] = ecu_name

    def map_all(self, ecu_name: str) -> None:
        """Map every instance onto one ECU (integrated single-box)."""
        if self.root is None:
            raise ConfigurationError("set_root before map_all")
        instances, __ = self.root.flatten()
        for instance in instances:
            self.mapping[instance.name] = ecu_name

    def configure_bus(self, kind: Optional[str], **params) -> None:
        """Configure the bus of the ``default`` domain (the common
        single-bus case)."""
        self.configure_domain_bus("default", kind, **params)

    def configure_domain_bus(self, domain: str, kind: Optional[str],
                             **params) -> None:
        """Configure one domain's bus.  Cross-domain traffic is routed
        through an auto-generated central gateway (CAN domains only)."""
        if kind not in SUPPORTED_BUSES:
            raise ConfigurationError(
                f"unsupported bus kind {kind!r}; pick from "
                f"{SUPPORTED_BUSES}")
        self.domain_buses[domain] = (kind, params)

    def set_gateway_delay(self, delay: int) -> None:
        """Processing delay of the auto-generated central gateway."""
        if delay < 0:
            raise ConfigurationError("gateway delay must be >= 0")
        self.gateway_delay = delay

    # -- backward-compatible single-bus accessors ----------------------
    @property
    def bus_kind(self) -> Optional[str]:
        """Bus kind of the default domain (single-bus convenience)."""
        kind, __ = self.domain_buses.get("default", (None, {}))
        return kind

    @property
    def bus_params(self) -> dict:
        """Bus parameters of the default domain."""
        __, params = self.domain_buses.get("default", (None, {}))
        return params

    def set_can_id(self, pdu_name: str, can_id: int) -> None:
        """Pin the CAN identifier of a generated PDU."""
        self.can_ids[pdu_name] = can_id

    # ------------------------------------------------------------------
    # Static checks
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Configuration checks; returns human-readable issues (empty =
        consistent).  ``build`` refuses to proceed on a non-empty list."""
        issues: list[str] = []
        if self.root is None:
            return ["no root composition set"]
        instances, connectors = self.root.flatten()
        by_name = {i.name: i for i in instances}
        for instance in instances:
            ecu = self.mapping.get(instance.name)
            if ecu is None:
                issues.append(f"instance {instance.name!r} is not mapped "
                              f"to any ECU")
            elif ecu not in self.ecus:
                issues.append(f"instance {instance.name!r} mapped to "
                              f"unknown ECU {ecu!r}")
        for name in self.mapping:
            if name not in by_name:
                issues.append(f"mapping references unknown instance "
                              f"{name!r}")
        for connector in connectors:
            src_ecu = self.mapping.get(connector.source.instance)
            dst_ecu = self.mapping.get(connector.target.instance)
            if src_ecu is None or dst_ecu is None or src_ecu == dst_ecu:
                continue
            if src_ecu not in self.ecus or dst_ecu not in self.ecus:
                continue
            src = by_name[connector.source.instance]
            port = src.port(connector.source.port)
            if isinstance(port.interface, ClientServerInterface):
                for op in port.interface.operations.values():
                    if op.returns is not None:
                        issues.append(
                            f"connector {connector.source} -> "
                            f"{connector.target}: remote client-server "
                            f"operations with return values are not "
                            f"supported; operation {op.name!r} returns "
                            f"{op.returns.name}")
            issues.extend(self._check_domains(connector, src_ecu,
                                              dst_ecu))
        issues.extend(self._check_pdu_sizes(instances, connectors))
        return issues

    def _domain_kind(self, domain: str) -> Optional[str]:
        kind, __ = self.domain_buses.get(domain, (None, {}))
        return kind

    def _check_domains(self, connector, src_ecu: str,
                       dst_ecu: str) -> list[str]:
        issues = []
        src_domain = self.ecus[src_ecu].domain
        dst_domain = self.ecus[dst_ecu].domain
        for domain in {src_domain, dst_domain}:
            if self._domain_kind(domain) is None:
                issues.append(
                    f"connector {connector.source} -> {connector.target} "
                    f"needs a bus in domain {domain!r} but none is "
                    f"configured")
        if src_domain != dst_domain:
            kinds = {self._domain_kind(src_domain),
                     self._domain_kind(dst_domain)}
            if kinds - {None} and kinds != {"can"}:
                issues.append(
                    f"connector {connector.source} -> {connector.target} "
                    f"crosses domains {src_domain!r} -> {dst_domain!r}; "
                    f"auto-gatewaying only supports CAN domains "
                    f"(got {sorted(k for k in kinds if k)})")
        return issues

    def _check_pdu_sizes(self, instances, connectors) -> list[str]:
        issues = []
        by_name = {i.name: i for i in instances}
        seen_ports = set()
        for connector in connectors:
            src_ecu = self.mapping.get(connector.source.instance)
            dst_ecu = self.mapping.get(connector.target.instance)
            if src_ecu is None or dst_ecu is None or src_ecu == dst_ecu:
                continue
            if src_ecu not in self.ecus:
                continue
            domain = self.ecus[src_ecu].domain
            if self._domain_kind(domain) != "can":
                continue
            key = (connector.source.instance, connector.source.port)
            if key in seen_ports:
                continue
            seen_ports.add(key)
            src = by_name[connector.source.instance]
            port = src.port(connector.source.port)
            if not isinstance(port.interface, SenderReceiverInterface):
                continue
            bits = sum(t.width_bits + 1  # +1 update bit per element
                       for t in port.interface.elements.values())
            if bits > 64:
                issues.append(
                    f"port {connector.source} needs {bits} bits with "
                    f"update bits; exceeds one 8-byte CAN frame — split "
                    f"the interface")
        return issues

    def build(self, sim, trace=None):
        """Generate the RTE and instantiate the platform on ``sim``."""
        from repro.core.rte import RteBuilder
        issues = self.validate()
        if issues:
            raise ConfigurationError(
                "system configuration checks failed:\n  "
                + "\n  ".join(issues))
        return RteBuilder(self).build(sim, trace)

    def __repr__(self) -> str:
        return (f"<SystemModel {self.name} ecus={sorted(self.ecus)} "
                f"bus={self.bus_kind}>")
