"""AUTOSAR-like component model: SWCs, VFB, RTE, system configuration."""

from repro.core.component import ComponentInstance, SwComponent
from repro.core.composition import (Composition, CompositionInstance,
                                    Connector, DelegationPort, Endpoint)
from repro.core.conformance import (ConformanceReport,
                                    check_transferability)
from repro.core.ecu import EcuSpec
from repro.core.interface import (ClientServerInterface, Operation,
                                  SenderReceiverInterface)
from repro.core.port import PROVIDED, Port, REQUIRED
from repro.core.rte import RteBuilder, RteContext, SystemRuntime
from repro.core.runnable import (DataReceivedEvent, InitEvent,
                                 OperationInvokedEvent, Runnable,
                                 TimingEvent)
from repro.core.system import SystemModel
from repro.core.types import BOOL, DataType, UINT8, UINT16, UINT32
from repro.core.vfb import VfbContext, VfbSimulation

__all__ = [
    "ComponentInstance", "SwComponent",
    "Composition", "CompositionInstance", "Connector", "DelegationPort",
    "Endpoint",
    "ConformanceReport", "check_transferability",
    "EcuSpec",
    "ClientServerInterface", "Operation", "SenderReceiverInterface",
    "PROVIDED", "Port", "REQUIRED",
    "RteBuilder", "RteContext", "SystemRuntime",
    "DataReceivedEvent", "InitEvent", "OperationInvokedEvent", "Runnable",
    "TimingEvent",
    "SystemModel",
    "BOOL", "DataType", "UINT8", "UINT16", "UINT32",
    "VfbContext", "VfbSimulation",
]
