"""RTE generation: deploying a component network onto ECUs and a bus.

The builder turns a validated :class:`~repro.core.system.SystemModel` into
a running platform:

* every runnable becomes an OS task on its instance's ECU (TimingEvent →
  periodic task, DataReceivedEvent / OperationInvokedEvent / InitEvent →
  sporadic task), with rate-monotonic default priorities;
* sender-receiver connectors become direct buffer writes when both ends
  share an ECU, and COM signals packed into I-PDUs (with update bits, sent
  in direct mode) when they cross ECUs;
* client-server connectors are synchronous inline calls within an ECU and
  argument-carrying request frames across ECUs (void operations only —
  checked by ``SystemModel.validate``).

Execution follows implicit (buffered) communication semantics: a task
snapshots its instance's inputs when it *starts* and commits its outputs
when it *completes* — so a runnable's observable I/O happens at the
points timing analysis assumes.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import CompositionError, ConfigurationError
from repro.com import (CanComAdapter, ComStack, DIRECT, FlexRayComAdapter,
                       SignalSpec, TRIGGERED, TteComAdapter,
                       pack_sequentially)
from repro.core.component import ComponentInstance
from repro.core.composition import Endpoint
from repro.core.interface import (ClientServerInterface,
                                  SenderReceiverInterface)
from repro.core.runnable import (DataReceivedEvent, InitEvent,
                                 OperationInvokedEvent, TimingEvent)
from repro.network import (CanBus, CanFrameSpec, FlexRayBus, FlexRayConfig,
                           StaticSlotAssignment, TtEthernetSwitch,
                           TtFrameSpec, ethernet_frame_time)
from repro.osek import EcuKernel, TaskSpec
from repro.sim.trace import Trace
from repro.units import us

#: Default priority for sporadic (event-activated) tasks: above periodic
#: rate-monotonic levels, so data-driven chains progress promptly.
SPORADIC_PRIORITY = 1000
#: Queue depth for event-activated tasks.
SPORADIC_QUEUE = 16
#: FIFO depth of queued sender-receiver elements (matches the VFB).
QUEUE_LENGTH = 16

FIRST_CAN_ID = 0x100


def assign_rm_priorities(explicit: dict[str, int],
                         plan: list) -> dict[str, int]:
    """Priority assignment shared by the RTE builder and the
    prior-to-implementation timing report: explicit overrides win,
    periodic runnables get rate-monotonic levels, event-activated
    runnables run at :data:`SPORADIC_PRIORITY`.

    ``plan`` holds ``(instance_name, runnable)`` pairs.
    """
    periodic = []
    priorities = {}
    for instance_name, runnable in plan:
        name = f"{instance_name}.{runnable.name}"
        if name in explicit:
            priorities[name] = explicit[name]
        elif isinstance(runnable.trigger, TimingEvent):
            periodic.append((runnable.trigger.period, name))
        else:
            priorities[name] = SPORADIC_PRIORITY
    periodic.sort()  # shortest period first -> highest priority
    level = len(periodic)
    for __, name in periodic:
        priorities[name] = level
        level -= 1
    return priorities


class RteContext:
    """``ctx`` handed to runnables on a deployed system."""

    def __init__(self, runtime: "SystemRuntime", ecu: "_EcuRuntime",
                 instance: ComponentInstance):
        self._runtime = runtime
        self._ecu = ecu
        self._instance = instance
        self._snapshot: Optional[dict] = None

    @property
    def now(self) -> int:
        """Current virtual time (ns)."""
        return self._runtime.sim.now

    @property
    def state(self) -> dict:
        """The owning instance's private state dict."""
        return self._instance.state

    def read(self, port: str, element: str) -> int:
        """Read a sender-receiver element (snapshot during a job)."""
        key = (self._instance.name, port, element)
        if key in self._ecu.queues:
            raise ConfigurationError(
                f"{self._instance.name}.{port}.{element} is queued; use "
                f"ctx.receive() instead of ctx.read()")
        if key not in self._ecu.buffers:
            raise ConfigurationError(
                f"{self._instance.name}.{port}.{element} is not a "
                f"sender-receiver element")
        if self._snapshot is not None and key in self._snapshot:
            return self._snapshot[key]
        return self._ecu.buffers[key]

    def receive(self, port: str, element: str):
        """Pop the oldest value from a *queued* element's FIFO (None
        when empty).  Consumption is live (event semantics), not
        snapshotted."""
        key = (self._instance.name, port, element)
        queue = self._ecu.queues.get(key)
        if queue is None:
            raise ConfigurationError(
                f"{self._instance.name}.{port}.{element} is not a queued "
                f"element of a required port")
        return queue.popleft() if queue else None

    def write(self, port: str, element: str, value: int) -> None:
        """Write a provided element (delivered locally and via COM)."""
        self._runtime._commit_write(self._instance, port, element, value)

    def call(self, port: str, operation: str, **args):
        """Invoke a client-server operation (sync local, async remote)."""
        return self._runtime._call(self._instance, port, operation, args)


class _EcuRuntime:
    """Runtime state of one deployed ECU."""

    def __init__(self, spec, kernel: EcuKernel):
        self.spec = spec
        self.kernel = kernel
        self.com: Optional[ComStack] = None
        self.buffers: dict[tuple[str, str, str], int] = {}
        #: FIFOs of queued elements on required ports.
        self.queues: dict[tuple[str, str, str], deque] = {}
        self.instances: dict[str, ComponentInstance] = {}
        self.contexts: dict[str, RteContext] = {}
        #: (instance, port, element) -> tasks to activate on reception.
        self.data_tasks: dict[tuple[str, str, str], list] = {}
        #: server task name -> queue of pending call kwargs.
        self.call_queues: dict[str, deque] = {}


class SystemRuntime:
    """A deployed, running system (returned by ``SystemModel.build``)."""

    def __init__(self, system, sim, trace: Trace):
        self.system = system
        self.sim = sim
        self.trace = trace
        self.ecus: dict[str, _EcuRuntime] = {}
        self.bus = None
        #: per-domain buses (multi-domain deployments).
        self.buses: dict[str, object] = {}
        #: auto-generated central gateway, if cross-domain routes exist.
        self.gateway = None
        #: (src_instance, port, element) -> same-ECU delivery targets.
        self._local_routes: dict[tuple, list[tuple]] = {}
        #: (src_instance, port, element) -> COM signal name (if remote).
        self._com_tx: dict[tuple, str] = {}
        #: client endpoint -> server endpoint for client-server connectors.
        self._cs_routes: dict[Endpoint, Endpoint] = {}
        #: client endpoint -> remote-call pdu name.
        self._cs_pdus: dict[tuple, str] = {}
        self._instance_ecu: dict[str, str] = {}
        self.queue_overflows = 0

    # ------------------------------------------------------------------
    # Public helpers
    # ------------------------------------------------------------------
    @property
    def kernels(self) -> dict[str, EcuKernel]:
        """Per-ECU kernels by ECU name."""
        return {name: ecu.kernel for name, ecu in self.ecus.items()}

    def ecu_of(self, instance_name: str) -> _EcuRuntime:
        """Runtime state of the ECU hosting an instance."""
        return self.ecus[self._instance_ecu[instance_name]]

    def value_of(self, instance: str, port: str, element: str) -> int:
        """Current buffer value of a sender-receiver element."""
        return self.ecu_of(instance).buffers[(instance, port, element)]

    def queue_depth(self, instance: str, port: str, element: str) -> int:
        """Pending entries of a queued element's FIFO."""
        return len(self.ecu_of(instance).queues[(instance, port,
                                                 element)])

    def response_times(self, task_name: str) -> list[int]:
        """Observed response times of a deployed task."""
        return [r.data["response"]
                for r in self.trace.records("task.complete", task_name)]

    def deadline_misses(self, task_name: Optional[str] = None) -> int:
        """Count of deadline-miss records (optionally for one task)."""
        return len(self.trace.records("task.deadline_miss", task_name))

    # ------------------------------------------------------------------
    # Data flow
    # ------------------------------------------------------------------
    def _commit_write(self, instance: ComponentInstance, port_name: str,
                      element: str, value: int) -> None:
        port = instance.port(port_name)
        if not (port.is_provided
                and isinstance(port.interface, SenderReceiverInterface)):
            raise ConfigurationError(
                f"{instance.name}.{port_name} is not a provided "
                f"sender-receiver port")
        dtype = port.interface.elements.get(element)
        if dtype is None:
            raise ConfigurationError(
                f"{instance.name}.{port_name} has no element {element!r}")
        dtype.validate(value)
        key = (instance.name, port_name, element)
        source_ecu = self.ecu_of(instance.name)
        if not port.interface.is_queued(element):
            source_ecu.buffers[key] = value
        self.trace.log(self.sim.now, "rte.write",
                       f"{instance.name}.{port_name}.{element}", value=value)
        for ecu_name, target_instance, target_port in \
                self._local_routes.get(key, []):
            self._deliver(self.ecus[ecu_name], target_instance, target_port,
                          element, value)
        signal_name = self._com_tx.get(key)
        if signal_name is not None:
            source_ecu.com.write_signal(signal_name, value)

    def _deliver(self, ecu: _EcuRuntime, instance: str, port: str,
                 element: str, value: int) -> None:
        key = (instance, port, element)
        queue = ecu.queues.get(key)
        if queue is not None:
            if len(queue) >= QUEUE_LENGTH:
                self.queue_overflows += 1
                self.trace.log(self.sim.now, "rte.queue_overflow",
                               f"{instance}.{port}.{element}")
            else:
                queue.append(value)
        else:
            ecu.buffers[key] = value
        for task in ecu.data_tasks.get(key, []):
            ecu.kernel.activate(task)

    def _on_com_signal(self, ecu: _EcuRuntime, targets: list[tuple],
                       element: str, value: int) -> None:
        for instance, port in targets:
            self._deliver(ecu, instance, port, element, value)

    # ------------------------------------------------------------------
    # Client-server
    # ------------------------------------------------------------------
    def _call(self, instance: ComponentInstance, port_name: str,
              operation: str, args: dict):
        port = instance.port(port_name)
        if not (port.is_required
                and isinstance(port.interface, ClientServerInterface)):
            raise ConfigurationError(
                f"{instance.name}.{port_name} is not a client port")
        op = port.interface.operations.get(operation)
        if op is None:
            raise ConfigurationError(
                f"{instance.name}.{port_name} has no operation "
                f"{operation!r}")
        if set(args) != set(op.args):
            raise ConfigurationError(
                f"call {operation}: expected args {sorted(op.args)}, got "
                f"{sorted(args)}")
        for arg_name, value in args.items():
            op.args[arg_name].validate(value)
        client = Endpoint(instance.name, port_name)
        server = self._cs_routes.get(client)
        if server is None:
            raise CompositionError(f"{client} is not connected to a server")
        client_ecu = self._instance_ecu[instance.name]
        server_ecu = self._instance_ecu[server.instance]
        if client_ecu == server_ecu:
            return self._call_local(server, operation, op, args)
        return self._call_remote(client, operation, args)

    def _call_local(self, server: Endpoint, operation: str, op, args: dict):
        ecu = self.ecus[self._instance_ecu[server.instance]]
        server_instance = ecu.instances[server.instance]
        runnable = server_instance.component.server_runnable(server.port,
                                                             operation)
        if runnable is None:
            raise CompositionError(
                f"server {server.instance} declares no runnable for "
                f"{server.port}.{operation}")
        self.trace.log(self.sim.now, "rte.call_local",
                       f"{server.instance}.{server.port}.{operation}")
        result = runnable.function(ecu.contexts[server.instance], **args)
        if op.returns is not None:
            op.returns.validate(result)
        return result

    def _call_remote(self, client: Endpoint, operation: str,
                     args: dict) -> None:
        pdu_name = self._cs_pdus[(client.instance, client.port, operation)]
        ecu = self.ecus[self._instance_ecu[client.instance]]
        for arg_name, value in args.items():
            ecu.com.write_signal(f"{pdu_name}.{arg_name}", value)
        ecu.com.write_signal(f"{pdu_name}.fire", 1)
        self.trace.log(self.sim.now, "rte.call_remote",
                       f"{client}.{operation}")
        ecu.com.send_pdu(pdu_name)

    def __repr__(self) -> str:
        return f"<SystemRuntime {self.system.name} ecus={sorted(self.ecus)}>"


class RteBuilder:
    """Generates the platform for one system model."""

    def __init__(self, system):
        self.system = system

    # ------------------------------------------------------------------
    def build(self, sim, trace: Optional[Trace] = None) -> SystemRuntime:
        """Generate kernels, COM, buses and tasks; returns the runtime."""
        trace = trace if trace is not None else Trace()
        runtime = SystemRuntime(self.system, sim, trace)
        instances, connectors = self.system.root.flatten()
        by_name = {i.name: i for i in instances}
        runtime._instance_ecu = dict(self.system.mapping)

        for name, spec in self.system.ecus.items():
            kernel = EcuKernel(sim, spec.scheduler_factory(), trace=trace,
                               name=name,
                               budget_enforcement=spec.budget_enforcement)
            runtime.ecus[name] = _EcuRuntime(spec, kernel)
        for instance in instances:
            ecu = runtime.ecus[self.system.mapping[instance.name]]
            ecu.instances[instance.name] = instance
            ecu.contexts[instance.name] = RteContext(runtime, ecu, instance)
            self._init_buffers(ecu, instance)

        sr_cross, cs_cross = self._route_connectors(runtime, by_name,
                                                    connectors)
        self._build_bus(sim, runtime, trace, by_name, sr_cross, cs_cross)
        self._build_tasks(runtime, instances)
        return runtime

    def _init_buffers(self, ecu: _EcuRuntime,
                      instance: ComponentInstance) -> None:
        for port_name, port in instance.ports.items():
            if isinstance(port.interface, SenderReceiverInterface):
                for element, dtype in port.interface.elements.items():
                    key = (instance.name, port_name, element)
                    if port.interface.is_queued(element):
                        if port.is_required:
                            ecu.queues[key] = deque()
                    else:
                        ecu.buffers[key] = dtype.initial

    # ------------------------------------------------------------------
    def _route_connectors(self, runtime, by_name, connectors):
        """Fill routing tables; return the cross-ECU S/R and C/S work."""
        sr_cross: dict[tuple, list] = {}
        cs_cross: list = []
        mapping = self.system.mapping
        for connector in connectors:
            src = by_name[connector.source.instance]
            port = src.port(connector.source.port)
            src_ecu = mapping[connector.source.instance]
            dst_ecu = mapping[connector.target.instance]
            if isinstance(port.interface, SenderReceiverInterface):
                for element in port.interface.elements:
                    key = (connector.source.instance, connector.source.port,
                           element)
                    if dst_ecu == src_ecu:
                        runtime._local_routes.setdefault(key, []).append(
                            (dst_ecu, connector.target.instance,
                             connector.target.port))
                    else:
                        sr_cross.setdefault(key, []).append(
                            (dst_ecu, connector.target.instance,
                             connector.target.port))
            else:
                runtime._cs_routes[connector.target] = connector.source
                if dst_ecu != src_ecu:
                    cs_cross.append((connector, port.interface))
        return sr_cross, cs_cross

    # ------------------------------------------------------------------
    def _build_bus(self, sim, runtime, trace, by_name, sr_cross, cs_cross):
        if not sr_cross and not cs_cross:
            return
        # --- group S/R elements into one PDU per source port ------------
        pdu_signals: dict[tuple, list[SignalSpec]] = {}
        signal_targets: dict[str, list] = {}
        for (instance, port, element), targets in sorted(sr_cross.items()):
            signal_name = f"{instance}.{port}.{element}"
            dtype = by_name[instance].port(port).interface.elements[element]
            spec = SignalSpec(signal_name, dtype.width_bits,
                              initial=dtype.initial, transfer=TRIGGERED)
            pdu_signals.setdefault((instance, port), []).append(spec)
            signal_targets[signal_name] = targets
            runtime._com_tx[(instance, port, element)] = signal_name
        # --- client-server request PDUs ---------------------------------
        cs_plan = []
        for connector, interface in cs_cross:
            # Connector direction is provided -> required, so for
            # client-server the source is the server, the target the client.
            server_end, client_end = connector.source, connector.target
            for op_name, op in sorted(interface.operations.items()):
                pdu_name = (f"cs.{client_end.instance}.{client_end.port}"
                            f".{op_name}")
                specs = [SignalSpec(f"{pdu_name}.{arg}", t.width_bits)
                         for arg, t in sorted(op.args.items())]
                specs.append(SignalSpec(f"{pdu_name}.fire", 1))
                cs_plan.append((pdu_name, specs, client_end, server_end,
                                op_name, op))
                runtime._cs_pdus[(client_end.instance, client_end.port,
                                  op_name)] = pdu_name

        pdus = {}
        for (instance, port), specs in sorted(pdu_signals.items()):
            name = f"{instance}.{port}"
            size = (sum(s.width_bits + 1 for s in specs) + 7) // 8
            pdus[name] = (pack_sequentially(name, size, specs,
                                            with_update_bits=True),
                          self.system.mapping[instance])
        for pdu_name, specs, client_end, __, __, __ in cs_plan:
            size = (sum(s.width_bits for s in specs) + 7) // 8
            pdus[pdu_name] = (pack_sequentially(pdu_name, size, specs),
                              self.system.mapping[client_end.instance])

        # rx registration plan: S/R targets + C/S servers (needed before
        # bus construction so cross-domain gateway routes can be derived).
        rx_needed: dict[str, set[str]] = {}
        for signal_name, targets in signal_targets.items():
            instance, port, element = signal_name.rsplit(".", 2)
            pdu_name = f"{instance}.{port}"
            for ecu_name, __, __ in targets:
                rx_needed.setdefault(ecu_name, set()).add(pdu_name)
        for pdu_name, specs, client_end, server_end, op_name, op in cs_plan:
            server_ecu = self.system.mapping[server_end.instance]
            rx_needed.setdefault(server_ecu, set()).add(pdu_name)

        adapters = self._make_bus_and_adapters(sim, runtime, trace, pdus,
                                               rx_needed)

        # --- wire COM stacks --------------------------------------------
        for ecu_name, ecu in runtime.ecus.items():
            if ecu_name in adapters:
                ecu.com = ComStack(sim, adapters[ecu_name], ecu_name,
                                   trace)
        for pdu_name, (ipdu, src_ecu) in sorted(pdus.items()):
            runtime.ecus[src_ecu].com.add_tx_pdu(ipdu, mode=DIRECT)
        for ecu_name, pdu_names in sorted(rx_needed.items()):
            for pdu_name in sorted(pdu_names):
                runtime.ecus[ecu_name].com.add_rx_pdu(pdus[pdu_name][0])
        # per-signal rx callbacks
        for signal_name, targets in sorted(signal_targets.items()):
            element = signal_name.rsplit(".", 1)[1]
            per_ecu: dict[str, list] = {}
            for ecu_name, t_instance, t_port in targets:
                per_ecu.setdefault(ecu_name, []).append((t_instance, t_port))
            for ecu_name, local_targets in per_ecu.items():
                ecu = runtime.ecus[ecu_name]
                ecu.com.on_signal(
                    signal_name,
                    lambda value, e=ecu, ts=local_targets, el=element:
                    runtime._on_com_signal(e, ts, el, value))
        # remote call dispatch
        for pdu_name, specs, client_end, server_end, op_name, op in cs_plan:
            server_ecu = runtime.ecus[self.system.mapping[
                server_end.instance]]
            task_name = self._server_task_name(runtime, server_end, op_name)
            arg_names = sorted(op.args)
            server_ecu.com.on_signal(
                f"{pdu_name}.fire",
                lambda value, e=server_ecu, tn=task_name, pn=pdu_name,
                an=arg_names:
                self._enqueue_remote_call(e, tn, pn, an))

    def _server_task_name(self, runtime, server_end, op_name) -> str:
        ecu = runtime.ecus[self.system.mapping[server_end.instance]]
        instance = ecu.instances[server_end.instance]
        runnable = instance.component.server_runnable(server_end.port,
                                                      op_name)
        if runnable is None:
            raise ConfigurationError(
                f"server {server_end.instance} declares no runnable for "
                f"{server_end.port}.{op_name}")
        return f"{server_end.instance}.{runnable.name}"

    def _enqueue_remote_call(self, ecu: _EcuRuntime, task_name: str,
                             pdu_name: str, arg_names: list[str]) -> None:
        kwargs = {arg: ecu.com.read_signal(f"{pdu_name}.{arg}")
                  for arg in arg_names}
        ecu.call_queues.setdefault(task_name, deque()).append(kwargs)
        ecu.kernel.activate(ecu.kernel.tasks[task_name])

    def _make_bus_and_adapters(self, sim, runtime, trace, pdus,
                               rx_needed):
        """Build one bus per configured domain, adapters per ECU, and —
        for PDUs whose receivers live in other (CAN) domains — a central
        gateway with the required routes."""
        domain_of = {name: spec.domain
                     for name, spec in self.system.ecus.items()}
        domains = sorted({domain_of[name] for name in runtime.ecus})
        # --- allocate CAN ids globally (stable across domains) ----------
        frame_spec_of: dict[str, CanFrameSpec] = {}
        next_id = FIRST_CAN_ID
        used = set(self.system.can_ids.values())
        for pdu_name, (ipdu, src_ecu) in sorted(pdus.items()):
            can_id = self.system.can_ids.get(pdu_name)
            if can_id is None:
                while next_id in used:
                    next_id += 1
                can_id = next_id
                used.add(can_id)
            frame_spec_of[pdu_name] = CanFrameSpec(
                pdu_name, can_id, dlc=min(8, ipdu.size_bytes))

        adapters: dict[str, object] = {}
        can_buses: dict[str, CanBus] = {}
        for domain in domains:
            kind, params = self.system.domain_buses.get(domain,
                                                        (None, {}))
            members = [name for name in sorted(runtime.ecus)
                       if domain_of[name] == domain]
            domain_pdus = {name: value for name, value in pdus.items()
                           if domain_of[value[1]] == domain}
            if kind is None:
                if domain_pdus:
                    raise ConfigurationError(
                        f"domain {domain!r} has bus traffic but no bus")
                continue
            if kind == "can":
                bus = CanBus(sim, params.get("bitrate_bps", 500_000),
                             trace=trace, name=f"CAN:{domain}")
                can_buses[domain] = bus
                runtime.buses[domain] = bus
                for ecu_name in members:
                    specs = {pdu_name: frame_spec_of[pdu_name]
                             for pdu_name, (__, src_ecu)
                             in domain_pdus.items() if src_ecu == ecu_name}
                    adapters[ecu_name] = CanComAdapter(
                        bus.attach(ecu_name), specs)
            elif kind == "tte":
                tte_params = dict(params)
                tt_period = tte_params.pop("tt_period", us(5_000))
                switch = TtEthernetSwitch(
                    sim,
                    bitrate_bps=tte_params.pop("bitrate_bps",
                                               100_000_000),
                    switch_delay=tte_params.pop("switch_delay", us(2)),
                    trace=trace, name=f"TTE:{domain}")
                runtime.buses[domain] = switch
                for ecu_name in members:
                    switch.attach(ecu_name)
                slot = ethernet_frame_time(64, switch.bitrate_bps) * 2
                if len(domain_pdus) * slot > tt_period:
                    raise ConfigurationError(
                        f"domain {domain!r}: {len(domain_pdus)} TT "
                        f"streams do not fit a {tt_period} ns period")
                tx_of: dict[str, set] = {name: set() for name in members}
                rx_of: dict[str, set] = {name: set() for name in members}
                for index, (pdu_name, (ipdu, src_ecu)) in enumerate(
                        sorted(domain_pdus.items())):
                    receivers = sorted(
                        ecu for ecu, pdu_names in rx_needed.items()
                        if pdu_name in pdu_names and ecu != src_ecu)
                    if not receivers:
                        continue
                    switch.schedule_tt(TtFrameSpec(
                        pdu_name, src_ecu, receivers,
                        offset=index * slot, period=tt_period,
                        size_bytes=max(46, ipdu.size_bytes)))
                    tx_of[src_ecu].add(pdu_name)
                    for receiver in receivers:
                        rx_of[receiver].add(pdu_name)
                for ecu_name in members:
                    adapters[ecu_name] = TteComAdapter(
                        switch, ecu_name, tx_of[ecu_name],
                        rx_of[ecu_name])
                switch.start()
            else:  # flexray
                fr_params = dict(params)
                slot_length = fr_params.pop("slot_length", us(100))
                n_slots = fr_params.pop("n_static_slots",
                                        max(2, len(domain_pdus)))
                if n_slots < len(domain_pdus):
                    raise ConfigurationError(
                        f"domain {domain!r}: FlexRay needs >= "
                        f"{len(domain_pdus)} static slots, configured "
                        f"{n_slots}")
                config = FlexRayConfig(slot_length=slot_length,
                                       n_static_slots=n_slots,
                                       **fr_params)
                bus = FlexRayBus(sim, config, trace=trace,
                                 name=f"FR:{domain}")
                runtime.buses[domain] = bus
                controllers = {name: bus.attach(name) for name in members}
                slot_maps: dict[str, dict] = {name: {} for name in members}
                for slot, (pdu_name, (__, src_ecu)) in enumerate(
                        sorted(domain_pdus.items()), start=1):
                    bus.assign_slot(StaticSlotAssignment(slot, src_ecu,
                                                         pdu_name))
                    slot_maps[src_ecu][pdu_name] = slot
                for ecu_name in members:
                    adapters[ecu_name] = FlexRayComAdapter(
                        controllers[ecu_name], slot_maps[ecu_name])
                bus.start()

        self._build_gateway(sim, runtime, trace, pdus, rx_needed,
                            domain_of, can_buses, frame_spec_of)
        if len(runtime.buses) == 1:
            runtime.bus = next(iter(runtime.buses.values()))
        return adapters

    def _build_gateway(self, sim, runtime, trace, pdus, rx_needed,
                       domain_of, can_buses, frame_spec_of):
        """Route cross-domain PDUs through one central gateway."""
        routes: dict[str, tuple[str, set]] = {}
        for ecu_name, pdu_names in rx_needed.items():
            for pdu_name in pdu_names:
                src_domain = domain_of[pdus[pdu_name][1]]
                dst_domain = domain_of[ecu_name]
                if dst_domain == src_domain:
                    continue
                route = routes.setdefault(pdu_name, (src_domain, set()))
                route[1].add(dst_domain)
        if not routes:
            return
        from repro.bsw.gateway import MultiCanGateway
        needed_domains = set()
        for pdu_name, (src_domain, destinations) in routes.items():
            needed_domains.add(src_domain)
            needed_domains |= destinations
        missing = needed_domains - set(can_buses)
        if missing:
            raise ConfigurationError(
                f"cross-domain routing needs CAN buses in domains "
                f"{sorted(missing)}")
        gateway = MultiCanGateway(
            sim, "CGW", {d: can_buses[d] for d in sorted(needed_domains)},
            processing_delay=self.system.gateway_delay, trace=trace)
        runtime.gateway = gateway
        for pdu_name, (src_domain, destinations) in sorted(routes.items()):
            gateway.route(pdu_name, src_domain,
                          {d: frame_spec_of[pdu_name]
                           for d in sorted(destinations)})

    # ------------------------------------------------------------------
    def _build_tasks(self, runtime: SystemRuntime, instances) -> None:
        for ecu_name, ecu in runtime.ecus.items():
            plan = []
            for instance in ecu.instances.values():
                for runnable in instance.component.runnables:
                    plan.append((instance, runnable))
            priorities = self._assign_priorities(ecu, plan)
            for instance, runnable in plan:
                self._add_task(runtime, ecu, instance, runnable,
                               priorities[f"{instance.name}.{runnable.name}"])

    def _assign_priorities(self, ecu: _EcuRuntime, plan) -> dict[str, int]:
        return assign_rm_priorities(
            ecu.spec.priorities,
            [(instance.name, runnable) for instance, runnable in plan])

    def _add_task(self, runtime, ecu: _EcuRuntime, instance, runnable,
                  priority: int) -> None:
        task_name = f"{instance.name}.{runnable.name}"
        trigger = runnable.trigger
        context = ecu.contexts[instance.name]
        is_server = isinstance(trigger, OperationInvokedEvent)

        def on_start(job):
            context._snapshot = {
                key: value for key, value in ecu.buffers.items()
                if key[0] == instance.name}

        def on_complete(job):
            try:
                if is_server:
                    queue = ecu.call_queues.get(task_name)
                    kwargs = queue.popleft() if queue else {}
                    runnable.function(context, **kwargs)
                else:
                    runnable.function(context)
            finally:
                context._snapshot = None

        spec_kwargs = dict(
            wcet=runnable.wcet,
            priority=priority,
            partition=ecu.spec.partitions.get(task_name),
            budget=ecu.spec.budgets.get(task_name),
        )
        if isinstance(trigger, TimingEvent):
            spec = TaskSpec(task_name, period=trigger.period,
                            offset=trigger.offset, **spec_kwargs)
            ecu.kernel.add_task(spec, on_start=on_start,
                                on_complete=on_complete)
            return
        spec = TaskSpec(task_name, max_activations=SPORADIC_QUEUE,
                        **spec_kwargs)
        task = ecu.kernel.add_task(spec, on_start=on_start,
                                   on_complete=on_complete)
        if isinstance(trigger, DataReceivedEvent):
            key = (instance.name, trigger.port, trigger.element)
            ecu.data_tasks.setdefault(key, []).append(task)
        elif isinstance(trigger, InitEvent):
            runtime.sim.schedule(0, lambda: ecu.kernel.activate(task))
