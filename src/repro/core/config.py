"""AUTOSAR configuration classes: pre-compile, link-time, post-build.

The paper's Section 2 lists the "extended configuration concept" as one of
AUTOSAR's innovations: every configuration parameter belongs to a
*configuration class* that fixes the last moment its value may change.
:class:`ConfigurationSet` models the lifecycle: parameters are declared
with a class and a validator; ``compile()`` freezes pre-compile
parameters, ``link()`` freezes link-time parameters, and post-build
parameters stay writable (they model reflashable calibration /
post-build-selectable variants).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.errors import ConfigurationError

PRE_COMPILE = "pre-compile"
LINK_TIME = "link-time"
POST_BUILD = "post-build"

_CLASSES = (PRE_COMPILE, LINK_TIME, POST_BUILD)
_STAGES = ("editing", "compiled", "linked")


class ConfigParameter:
    """One configuration parameter."""

    def __init__(self, name: str, value, config_class: str,
                 validator: Optional[Callable[[object], bool]] = None,
                 description: str = ""):
        if config_class not in _CLASSES:
            raise ConfigurationError(
                f"parameter {name}: unknown configuration class "
                f"{config_class!r} (use one of {_CLASSES})")
        self.name = name
        self.config_class = config_class
        self.validator = validator
        self.description = description
        self.value = None
        self._set(value)

    def _set(self, value) -> None:
        if self.validator is not None and not self.validator(value):
            raise ConfigurationError(
                f"parameter {self.name}: value {value!r} rejected by "
                f"validator")
        self.value = value

    def __repr__(self) -> str:
        return (f"<ConfigParameter {self.name}={self.value!r} "
                f"[{self.config_class}]>")


class ConfigurationSet:
    """A container of parameters with build-stage freeze semantics.

    ``set()``, ``compile()`` and ``link()`` are serialized by a lock so
    concurrent post-build writers (the measurement service runs tool
    threads against a live system) observe atomic check-then-assign:
    a validator-rejected or class-refused write leaves the prior value
    intact, and a write can never slip past a stage transition."""

    def __init__(self, name: str):
        self.name = name
        self._params: dict[str, ConfigParameter] = {}
        self.stage = "editing"
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks don't pickle; workers get a fresh one
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def declare(self, name: str, value, config_class: str,
                validator: Optional[Callable] = None,
                description: str = "") -> ConfigParameter:
        """Declare a parameter.  Only possible before ``compile()``."""
        if self.stage != "editing":
            raise ConfigurationError(
                f"{self.name}: cannot declare parameters after compile()")
        if name in self._params:
            raise ConfigurationError(
                f"{self.name}: duplicate parameter {name!r}")
        param = ConfigParameter(name, value, config_class, validator,
                                description)
        self._params[name] = param
        return param

    def get(self, name: str):
        """Current value of a parameter."""
        return self._param(name).value

    def set(self, name: str, value) -> None:
        """Change a parameter, enforcing its configuration class against
        the current build stage.  Atomic: the class check and the
        validated assignment happen under the set's lock, so a refused
        or rejected write never clobbers a concurrent accepted one."""
        param = self._param(name)
        with self._lock:
            if (param.config_class == PRE_COMPILE
                    and self.stage != "editing"):
                raise ConfigurationError(
                    f"{self.name}: {name} is pre-compile; frozen after "
                    f"compile()")
            if param.config_class == LINK_TIME and self.stage == "linked":
                raise ConfigurationError(
                    f"{self.name}: {name} is link-time; frozen after "
                    f"link()")
            param._set(value)

    def compile(self) -> None:
        """Enter the compiled stage (pre-compile parameters freeze)."""
        with self._lock:
            if self.stage != "editing":
                raise ConfigurationError(f"{self.name}: already compiled")
            self.stage = "compiled"

    def link(self) -> None:
        """Enter the linked stage (link-time parameters freeze too)."""
        with self._lock:
            if self.stage != "compiled":
                raise ConfigurationError(
                    f"{self.name}: link() requires the compiled stage")
            self.stage = "linked"

    def parameters(self, config_class: Optional[str] = None
                   ) -> list[ConfigParameter]:
        """All parameters, optionally filtered by configuration class."""
        params = list(self._params.values())
        if config_class is not None:
            params = [p for p in params if p.config_class == config_class]
        return params

    def snapshot(self) -> dict:
        """Plain dict of parameter values (for export / diffing)."""
        return {name: param.value for name, param in self._params.items()}

    def _param(self, name: str) -> ConfigParameter:
        param = self._params.get(name)
        if param is None:
            raise ConfigurationError(
                f"{self.name}: unknown parameter {name!r}")
        return param

    def __repr__(self) -> str:
        return (f"<ConfigurationSet {self.name} stage={self.stage} "
                f"params={len(self._params)}>")
