"""Software component types and instances.

An :class:`SwComponent` is a component *type*: ports, runnables, and an
optional rich contract (attached by :mod:`repro.contracts`).  Types are
instantiated into :class:`ComponentInstance` prototypes that carry
per-instance state and live inside compositions or systems — the same
type can appear many times (e.g. one wheel-speed SWC per corner).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CompositionError, ConfigurationError
from repro.core.interface import (ClientServerInterface,
                                  SenderReceiverInterface)
from repro.core.port import PROVIDED, Port, REQUIRED
from repro.core.runnable import (DataReceivedEvent, OperationInvokedEvent,
                                 Runnable)


class SwComponent:
    """An atomic software component type."""

    def __init__(self, name: str):
        self.name = name
        self.ports: dict[str, Port] = {}
        self.runnables: list[Runnable] = []
        self.contract = None  # attached by repro.contracts.rich_component

    # ------------------------------------------------------------------
    # Construction API
    # ------------------------------------------------------------------
    def provide(self, name: str, interface) -> Port:
        """Add a provided port (data sender / operation server)."""
        return self._add_port(name, interface, PROVIDED)

    def require(self, name: str, interface) -> Port:
        """Add a required port (data receiver / operation client)."""
        return self._add_port(name, interface, REQUIRED)

    def _add_port(self, name: str, interface, direction: str) -> Port:
        if name in self.ports:
            raise ConfigurationError(
                f"component {self.name}: duplicate port {name!r}")
        port = Port(name, interface, direction)
        self.ports[name] = port
        return port

    def runnable(self, name: str, trigger, function: Callable,
                 wcet: int = 1_000, writes=None) -> Runnable:
        """Add a runnable; trigger and declared write accesses are
        validated against the ports."""
        if any(r.name == name for r in self.runnables):
            raise ConfigurationError(
                f"component {self.name}: duplicate runnable {name!r}")
        self._check_trigger(name, trigger)
        runnable = Runnable(name, trigger, function, wcet, writes)
        for port_name, element in runnable.writes:
            port = self.ports.get(port_name)
            if (port is None or not port.is_provided
                    or not isinstance(port.interface,
                                      SenderReceiverInterface)
                    or element not in port.interface.elements):
                raise ConfigurationError(
                    f"runnable {name}: declared write "
                    f"{port_name}.{element} does not match a provided "
                    f"sender-receiver element")
        self.runnables.append(runnable)
        return runnable

    def writer_of(self, port_name: str, element: str):
        """The runnable declared (or inferred) to write an element.

        Inference: with a single runnable on the component, it is assumed
        to write every provided element.  Returns None when no writer can
        be established — the timing report flags that as missing
        template data.
        """
        for runnable in self.runnables:
            if (port_name, element) in runnable.writes:
                return runnable
        if len(self.runnables) == 1:
            return self.runnables[0]
        return None

    def _check_trigger(self, runnable_name: str, trigger) -> None:
        if isinstance(trigger, DataReceivedEvent):
            port = self.ports.get(trigger.port)
            if port is None or not port.is_required:
                raise ConfigurationError(
                    f"runnable {runnable_name}: DataReceivedEvent needs an "
                    f"R-port, {trigger.port!r} is not one")
            if not isinstance(port.interface, SenderReceiverInterface) \
                    or trigger.element not in port.interface.elements:
                raise ConfigurationError(
                    f"runnable {runnable_name}: port {trigger.port!r} has "
                    f"no element {trigger.element!r}")
        elif isinstance(trigger, OperationInvokedEvent):
            port = self.ports.get(trigger.port)
            if port is None or not port.is_provided:
                raise ConfigurationError(
                    f"runnable {runnable_name}: OperationInvokedEvent needs "
                    f"a P-port, {trigger.port!r} is not one")
            if not isinstance(port.interface, ClientServerInterface) \
                    or trigger.operation not in port.interface.operations:
                raise ConfigurationError(
                    f"runnable {runnable_name}: port {trigger.port!r} has "
                    f"no operation {trigger.operation!r}")

    # ------------------------------------------------------------------
    def server_runnable(self, port_name: str, operation: str
                        ) -> Optional[Runnable]:
        """The runnable handling an operation invocation, if declared."""
        for runnable in self.runnables:
            trigger = runnable.trigger
            if (isinstance(trigger, OperationInvokedEvent)
                    and trigger.port == port_name
                    and trigger.operation == operation):
                return runnable
        return None

    def instantiate(self, instance_name: str) -> "ComponentInstance":
        """Create a named instance (prototype) of this component type."""
        return ComponentInstance(instance_name, self)

    def __repr__(self) -> str:
        return (f"<SwComponent {self.name} ports={sorted(self.ports)} "
                f"runnables={len(self.runnables)}>")


class ComponentInstance:
    """One occurrence of a component type in a composition or system."""

    def __init__(self, name: str, component: SwComponent):
        self.name = name
        self.component = component
        self.state: dict = {}

    @property
    def ports(self) -> dict[str, Port]:
        """The component type's port table (shared, read-only use)."""
        return self.component.ports

    def port(self, name: str) -> Port:
        """Look up a port by name (CompositionError when absent)."""
        port = self.component.ports.get(name)
        if port is None:
            raise CompositionError(
                f"instance {self.name}: component {self.component.name} "
                f"has no port {name!r}")
        return port

    def __repr__(self) -> str:
        return f"<ComponentInstance {self.name}:{self.component.name}>"
