"""Compositions: wiring component instances, with hierarchy.

A :class:`Composition` holds instances (of atomic components or nested
compositions) and :class:`Connector` objects between their ports.  A
composition can expose *delegation ports* that forward to an inner
instance's port, so sub-system suppliers can publish a composition under
the same port/interface discipline as an atomic component.

:func:`Composition.flatten` resolves the hierarchy into the flat instance
and connector lists that the VFB and RTE operate on; connector validation
is the static interface-compatibility check of the paper's Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import CompositionError
from repro.core.component import ComponentInstance
from repro.core.interface import SenderReceiverInterface
from repro.core.port import Port


@dataclass(frozen=True)
class Endpoint:
    """(instance name, port name) — one end of a connector."""

    instance: str
    port: str

    def __str__(self) -> str:
        return f"{self.instance}.{self.port}"


@dataclass(frozen=True)
class Connector:
    """A directed connector: provided endpoint -> required endpoint."""

    source: Endpoint
    target: Endpoint


@dataclass(frozen=True)
class DelegationPort:
    """A composition-level port forwarding to an inner port."""

    name: str
    inner: Endpoint
    direction: str


class Composition:
    """A (possibly nested) assembly of component instances."""

    def __init__(self, name: str):
        self.name = name
        self.instances: dict[str, Union[ComponentInstance,
                                        "CompositionInstance"]] = {}
        self.connectors: list[Connector] = []
        self.delegations: dict[str, DelegationPort] = {}

    # ------------------------------------------------------------------
    def add(self, instance) -> None:
        """Add a component instance or a nested composition instance."""
        if instance.name in self.instances:
            raise CompositionError(
                f"composition {self.name}: duplicate instance "
                f"{instance.name!r}")
        self.instances[instance.name] = instance

    def connect(self, src_instance: str, src_port: str,
                dst_instance: str, dst_port: str) -> Connector:
        """Connect a provided port to a required port, with validation."""
        source = Endpoint(src_instance, src_port)
        target = Endpoint(dst_instance, dst_port)
        sport = self._resolve_port(source)
        tport = self._resolve_port(target)
        if not sport.is_provided:
            raise CompositionError(
                f"composition {self.name}: {source} is not a provided port")
        if not tport.is_required:
            raise CompositionError(
                f"composition {self.name}: {target} is not a required port")
        if not sport.interface.compatible_with(tport.interface):
            raise CompositionError(
                f"composition {self.name}: incompatible interfaces on "
                f"{source} ({sport.interface.name}) -> {target} "
                f"({tport.interface.name})")
        if isinstance(tport.interface, SenderReceiverInterface):
            for existing in self.connectors:
                if existing.target == target:
                    raise CompositionError(
                        f"composition {self.name}: {target} already has a "
                        f"writer ({existing.source}); sender-receiver "
                        f"targets accept a single source")
        connector = Connector(source, target)
        self.connectors.append(connector)
        return connector

    def delegate(self, name: str, inner_instance: str,
                 inner_port: str) -> DelegationPort:
        """Expose an inner instance's port at this composition's boundary."""
        if name in self.delegations:
            raise CompositionError(
                f"composition {self.name}: duplicate delegation {name!r}")
        endpoint = Endpoint(inner_instance, inner_port)
        port = self._resolve_port(endpoint)
        delegation = DelegationPort(name, endpoint, port.direction)
        self.delegations[name] = delegation
        return delegation

    def instantiate(self, instance_name: str) -> "CompositionInstance":
        """Create a named instance of this composition for nesting."""
        return CompositionInstance(instance_name, self)

    # ------------------------------------------------------------------
    def _resolve_port(self, endpoint: Endpoint) -> Port:
        instance = self.instances.get(endpoint.instance)
        if instance is None:
            raise CompositionError(
                f"composition {self.name}: unknown instance "
                f"{endpoint.instance!r}")
        if isinstance(instance, CompositionInstance):
            delegation = instance.composition.delegations.get(endpoint.port)
            if delegation is None:
                raise CompositionError(
                    f"composition {self.name}: nested composition "
                    f"{endpoint.instance!r} exposes no port "
                    f"{endpoint.port!r}")
            return instance.composition._resolve_port(delegation.inner)
        return instance.port(endpoint.port)

    def flatten(self, prefix: str = "") -> tuple[list[ComponentInstance],
                                                 list[Connector]]:
        """Resolve hierarchy: atomic instances with dotted names plus
        connectors whose delegation endpoints are rewritten to atomic
        ports."""
        instances: list[ComponentInstance] = []
        connectors: list[Connector] = []
        for name, instance in self.instances.items():
            full = f"{prefix}{name}"
            if isinstance(instance, CompositionInstance):
                inner_instances, inner_connectors = \
                    instance.composition.flatten(prefix=f"{full}.")
                instances.extend(inner_instances)
                connectors.extend(inner_connectors)
            else:
                flat = ComponentInstance(full, instance.component)
                flat.state = instance.state
                instances.append(flat)
        for connector in self.connectors:
            source = self._flatten_endpoint(connector.source, prefix)
            target = self._flatten_endpoint(connector.target, prefix)
            connectors.append(Connector(source, target))
        return instances, connectors

    def _flatten_endpoint(self, endpoint: Endpoint, prefix: str) -> Endpoint:
        instance = self.instances[endpoint.instance]
        full = f"{prefix}{endpoint.instance}"
        if isinstance(instance, CompositionInstance):
            delegation = instance.composition.delegations[endpoint.port]
            return instance.composition._flatten_endpoint(
                delegation.inner, prefix=f"{full}.")
        return Endpoint(full, endpoint.port)

    def __repr__(self) -> str:
        return (f"<Composition {self.name} instances={len(self.instances)} "
                f"connectors={len(self.connectors)}>")


class CompositionInstance:
    """One occurrence of a composition inside a parent composition."""

    def __init__(self, name: str, composition: Composition):
        self.name = name
        self.composition = composition

    def __repr__(self) -> str:
        return f"<CompositionInstance {self.name}:{self.composition.name}>"
