"""ECU descriptors for system models.

An :class:`EcuSpec` captures what the deployment needs to know about one
electronic control unit: a name, the scheduling policy its OS runs, and
per-task overrides.  The actual kernel is created at build time by the RTE
generator, so one system model can be rebuilt against several scheduling
policies — exactly the comparison experiments E1/E2 perform.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.osek.scheduler import FixedPriorityScheduler, Scheduler


class EcuSpec:
    """Deployment-time description of one ECU.

    ``scheduler_factory`` returns a fresh :class:`Scheduler` per build
    (schedulers are stateful).  Defaults to preemptive fixed priority.
    """

    def __init__(self, name: str,
                 scheduler_factory: Optional[Callable[[], Scheduler]] = None,
                 budget_enforcement: str = "kill",
                 domain: str = "default"):
        if not name:
            raise ConfigurationError("ECU needs a non-empty name")
        self.name = name
        self.scheduler_factory = (scheduler_factory if scheduler_factory
                                  is not None else FixedPriorityScheduler)
        self.budget_enforcement = budget_enforcement
        #: bus domain this ECU hangs on; cross-domain traffic is routed
        #: through an auto-generated central gateway.
        self.domain = domain
        #: task-name -> priority overrides (task names are
        #: "<instance>.<runnable>"); tasks without an override get a
        #: rate-monotonic priority at build time.
        self.priorities: dict[str, int] = {}
        #: task-name -> partition (for TDMA / server schedulers).
        self.partitions: dict[str, str] = {}
        #: task-name -> enforced execution budget (timing protection).
        self.budgets: dict[str, int] = {}

    def set_priority(self, task_name: str, priority: int) -> None:
        """Override the deployed priority of a task (instance.runnable)."""
        self.priorities[task_name] = priority

    def set_partition(self, task_name: str, partition: str) -> None:
        """Assign a task to a TDMA/server partition."""
        self.partitions[task_name] = partition

    def set_budget(self, task_name: str, budget: int) -> None:
        """Set a task's enforced execution budget (timing protection)."""
        if budget <= 0:
            raise ConfigurationError(
                f"ECU {self.name}: budget for {task_name} must be > 0")
        self.budgets[task_name] = budget

    def __repr__(self) -> str:
        return f"<EcuSpec {self.name}>"
