"""Runnables and RTE events.

A runnable is the schedulable unit of a component's behaviour.  Its
``function`` receives an :class:`RteContext`-like object (``ctx``) with
``read``/``write``/``call``/``state`` — the same code runs on the VFB and
on a deployed RTE, which is the transferability property the RTE exists
to provide.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError


class TimingEvent:
    """Periodic activation."""

    def __init__(self, period: int, offset: int = 0):
        if period <= 0:
            raise ConfigurationError("TimingEvent period must be > 0")
        if offset < 0:
            raise ConfigurationError("TimingEvent offset must be >= 0")
        self.period = period
        self.offset = offset

    def __repr__(self) -> str:
        return f"<TimingEvent period={self.period}>"


class DataReceivedEvent:
    """Activation on reception of a data element on an R-port."""

    def __init__(self, port: str, element: str):
        self.port = port
        self.element = element

    def __repr__(self) -> str:
        return f"<DataReceivedEvent {self.port}.{self.element}>"


class OperationInvokedEvent:
    """Activation by a client calling an operation on a P-port."""

    def __init__(self, port: str, operation: str):
        self.port = port
        self.operation = operation

    def __repr__(self) -> str:
        return f"<OperationInvokedEvent {self.port}.{self.operation}>"


class InitEvent:
    """One-shot activation at system start."""

    def __repr__(self) -> str:
        return "<InitEvent>"


class Runnable:
    """A named behaviour entry point with its activation trigger.

    ``wcet`` is the execution budget the runnable's task gets when
    deployed (ignored on the VFB, which abstracts from time).

    ``writes`` optionally declares the ``(port, element)`` pairs the
    runnable's code writes — the data-access metadata the paper's
    Section 2 says must be added to the AUTOSAR templates so "system
    generators" can run timing checks *before* implementation.  The
    declaration is advisory for execution but load-bearing for
    :func:`repro.analysis.system_report.timing_report`, which uses it to
    derive cause-effect chains.
    """

    def __init__(self, name: str, trigger, function: Callable,
                 wcet: int = 1_000,
                 writes: Optional[list] = None):
        if wcet <= 0:
            raise ConfigurationError(f"runnable {name}: wcet must be > 0")
        self.name = name
        self.trigger = trigger
        self.function = function
        self.wcet = wcet
        self.writes = [tuple(w) for w in (writes or [])]

    def __repr__(self) -> str:
        return f"<Runnable {self.name} trigger={self.trigger!r}>"
