"""Virtual Functional Bus: deployment-independent execution.

"From an abstract point of view the RTE is the run-time implementation of
the Virtual Functional Bus on a specific ECU" (paper, Section 2).  The VFB
is therefore the reference semantics: components communicate instantly,
with no ECUs, buses or scheduling.  Running an application here validates
its *functional* wiring; deploying the identical component code through
:mod:`repro.core.rte` adds the platform timing.

Semantics: runnable executions are atomic and instantaneous in virtual
time; a write on a provided sender-receiver port immediately updates all
connected receiver buffers and activates their ``DataReceivedEvent``
runnables; a client-server call synchronously invokes the server runnable.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import CompositionError, ConfigurationError
from repro.core.component import ComponentInstance
from repro.core.composition import Composition, Endpoint
from repro.core.interface import (ClientServerInterface,
                                  SenderReceiverInterface)
from repro.core.runnable import (DataReceivedEvent, InitEvent,
                                 OperationInvokedEvent, Runnable,
                                 TimingEvent)
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

#: FIFO depth of queued sender-receiver elements; overflowing sends are
#: discarded and counted (AUTOSAR's queued-communication overflow rule).
QUEUE_LENGTH = 16


class VfbContext:
    """The ``ctx`` object handed to runnable functions on the VFB."""

    def __init__(self, vfb: "VfbSimulation", instance: ComponentInstance):
        self._vfb = vfb
        self._instance = instance

    @property
    def now(self) -> int:
        """Current virtual time (ns)."""
        return self._vfb.sim.now

    @property
    def state(self) -> dict:
        """The owning instance's private state dict."""
        return self._instance.state

    def read(self, port: str, element: str) -> int:
        """Current value of a sender-receiver element (R-port: last
        received; P-port: last written)."""
        return self._vfb._read(self._instance, port, element)

    def write(self, port: str, element: str, value: int) -> None:
        """Write a provided element; delivery is immediate."""
        self._vfb._write(self._instance, port, element, value)

    def receive(self, port: str, element: str):
        """Pop the oldest value from a *queued* element's FIFO (None
        when the queue is empty)."""
        return self._vfb._receive(self._instance, port, element)

    def call(self, port: str, operation: str, **args):
        """Invoke an operation through a required client-server port."""
        return self._vfb._call(self._instance, port, operation, args)


class VfbSimulation:
    """Executes a composition directly on the event kernel."""

    def __init__(self, sim: Simulator, composition: Composition,
                 trace: Optional[Trace] = None):
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        instances, connectors = composition.flatten()
        self.instances: dict[str, ComponentInstance] = {
            i.name: i for i in instances}
        self.connectors = connectors
        self._buffers: dict[tuple[str, str, str], int] = {}
        self._queues: dict[tuple[str, str, str], deque] = {}
        self.queue_overflows = 0
        self._sr_routes: dict[Endpoint, list[Endpoint]] = {}
        self._cs_routes: dict[Endpoint, Endpoint] = {}
        self._data_triggers: dict[tuple[str, str, str], list[tuple]] = {}
        self._contexts = {name: VfbContext(self, inst)
                          for name, inst in self.instances.items()}
        self._build_tables()
        self.runnable_executions = 0

    # ------------------------------------------------------------------
    def _build_tables(self) -> None:
        for name, instance in self.instances.items():
            for port_name, port in instance.ports.items():
                if isinstance(port.interface, SenderReceiverInterface):
                    for element, dtype in port.interface.elements.items():
                        key = (name, port_name, element)
                        if port.interface.is_queued(element):
                            if port.is_required:
                                self._queues[key] = deque()
                        else:
                            self._buffers[key] = dtype.initial
            for runnable in instance.component.runnables:
                trigger = runnable.trigger
                if isinstance(trigger, DataReceivedEvent):
                    key = (name, trigger.port, trigger.element)
                    self._data_triggers.setdefault(key, []).append(
                        (instance, runnable))
        for connector in self.connectors:
            sport = self.instances[connector.source.instance].port(
                connector.source.port)
            if isinstance(sport.interface, SenderReceiverInterface):
                self._sr_routes.setdefault(connector.source, []).append(
                    connector.target)
            else:
                self._cs_routes[connector.target] = connector.source

    def start(self) -> None:
        """Schedule Init and Timing runnables; call before running the
        simulator."""
        for name, instance in self.instances.items():
            for runnable in instance.component.runnables:
                trigger = runnable.trigger
                if isinstance(trigger, InitEvent):
                    self.sim.schedule(
                        0, lambda i=instance, r=runnable: self._execute(i, r))
                elif isinstance(trigger, TimingEvent):
                    self._schedule_timing(instance, runnable, trigger)

    def _schedule_timing(self, instance, runnable, trigger) -> None:
        def fire():
            self._execute(instance, runnable)
            self.sim.schedule(trigger.period, fire)

        self.sim.schedule(trigger.offset, fire)

    # ------------------------------------------------------------------
    def _execute(self, instance: ComponentInstance,
                 runnable: Runnable) -> None:
        self.runnable_executions += 1
        self.trace.log(self.sim.now, "vfb.runnable",
                       f"{instance.name}.{runnable.name}")
        runnable.function(self._contexts[instance.name])

    def _read(self, instance, port_name: str, element: str) -> int:
        port = instance.port(port_name)
        if not isinstance(port.interface, SenderReceiverInterface):
            raise ConfigurationError(
                f"{instance.name}.{port_name} is not a sender-receiver port")
        if element not in port.interface.elements:
            raise ConfigurationError(
                f"{instance.name}.{port_name} has no element {element!r}")
        if port.interface.is_queued(element):
            raise ConfigurationError(
                f"{instance.name}.{port_name}.{element} is queued; use "
                f"ctx.receive() instead of ctx.read()")
        return self._buffers[(instance.name, port_name, element)]

    def _receive(self, instance, port_name: str, element: str):
        port = instance.port(port_name)
        if not (isinstance(port.interface, SenderReceiverInterface)
                and port.interface.is_queued(element)):
            raise ConfigurationError(
                f"{instance.name}.{port_name}.{element} is not a queued "
                f"element")
        if not port.is_required:
            raise ConfigurationError(
                f"{instance.name}.{port_name}: only receivers consume "
                f"queued data")
        queue = self._queues[(instance.name, port_name, element)]
        return queue.popleft() if queue else None

    def _write(self, instance, port_name: str, element: str,
               value: int) -> None:
        port = instance.port(port_name)
        if not port.is_provided:
            raise ConfigurationError(
                f"{instance.name}.{port_name}: cannot write a required port")
        if not isinstance(port.interface, SenderReceiverInterface):
            raise ConfigurationError(
                f"{instance.name}.{port_name} is not a sender-receiver port")
        dtype = port.interface.elements.get(element)
        if dtype is None:
            raise ConfigurationError(
                f"{instance.name}.{port_name} has no element {element!r}")
        dtype.validate(value)
        queued = port.interface.is_queued(element)
        if not queued:
            self._buffers[(instance.name, port_name, element)] = value
        source = Endpoint(instance.name, port_name)
        self.trace.log(self.sim.now, "vfb.write",
                       f"{source}.{element}", value=value)
        for target in self._sr_routes.get(source, []):
            key = (target.instance, target.port, element)
            if queued:
                queue = self._queues[key]
                if len(queue) >= QUEUE_LENGTH:
                    self.queue_overflows += 1
                    self.trace.log(self.sim.now, "vfb.queue_overflow",
                                   f"{target}.{element}")
                else:
                    queue.append(value)
            else:
                self._buffers[key] = value
            for receiver, runnable in self._data_triggers.get(key, []):
                self._execute(receiver, runnable)

    def _call(self, instance, port_name: str, operation: str, args: dict):
        port = instance.port(port_name)
        if not (port.is_required
                and isinstance(port.interface, ClientServerInterface)):
            raise ConfigurationError(
                f"{instance.name}.{port_name} is not a client port")
        op = port.interface.operations.get(operation)
        if op is None:
            raise ConfigurationError(
                f"{instance.name}.{port_name} has no operation "
                f"{operation!r}")
        if set(args) != set(op.args):
            raise ConfigurationError(
                f"call {operation}: expected args {sorted(op.args)}, "
                f"got {sorted(args)}")
        for arg_name, value in args.items():
            op.args[arg_name].validate(value)
        client = Endpoint(instance.name, port_name)
        server_end = self._cs_routes.get(client)
        if server_end is None:
            raise CompositionError(
                f"{client} is not connected to any server")
        server = self.instances[server_end.instance]
        runnable = server.component.server_runnable(server_end.port,
                                                    operation)
        if runnable is None:
            raise CompositionError(
                f"server {server.name} declares no runnable for "
                f"{server_end.port}.{operation}")
        self.runnable_executions += 1
        self.trace.log(self.sim.now, "vfb.call",
                       f"{client} -> {server_end}.{operation}")
        result = runnable.function(self._contexts[server.name], **args)
        if op.returns is not None:
            op.returns.validate(result)
        return result

    # ------------------------------------------------------------------
    def value_of(self, instance: str, port: str, element: str) -> int:
        """Inspect a port buffer (testing/monitoring)."""
        return self._buffers[(instance, port, element)]

    def queue_depth(self, instance: str, port: str, element: str) -> int:
        """Pending entries of a queued element's FIFO."""
        return len(self._queues[(instance, port, element)])

    def __repr__(self) -> str:
        return f"<VfbSimulation instances={len(self.instances)}>"
